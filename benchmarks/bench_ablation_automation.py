"""§III-D ablation — AutoIt automation vs manual testing.

Paper: manual testing measured 3.3% lower TLP (PowerDirector) and 2.4%
lower GPU utilization (VLC) than AutoIt automation — small enough that
automation "does not significantly distort the results".  We reproduce
the comparison with the scripted vs human-jitter input drivers.
"""

from repro.automation import AUTOIT, MANUAL
from repro.harness import run_app
from repro.metrics import relative_difference_pct
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_comparison():
    rows = {}
    for app in ("powerdirector", "vlc"):
        auto = run_app(app, duration_us=DURATION, iterations=3,
                       driver_mode=AUTOIT)
        manual = run_app(app, duration_us=DURATION, iterations=3,
                         driver_mode=MANUAL)
        rows[app] = (auto, manual)
    return rows


def test_ablation_automation_vs_manual(experiment, report):
    rows = experiment(run_comparison)
    table = []
    for app, (auto, manual) in rows.items():
        table.append((
            app,
            f"{auto.tlp.mean:5.2f}", f"{manual.tlp.mean:5.2f}",
            f"{relative_difference_pct(manual.tlp.mean, auto.tlp.mean):+5.1f}%",
            f"{auto.gpu_util.mean:5.2f}", f"{manual.gpu_util.mean:5.2f}",
        ))
    report("ablation_automation", format_table(
        ("App", "TLP auto", "TLP manual", "ΔTLP", "GPU auto",
         "GPU manual"), table,
        title="Ablation: AutoIt automation vs manual testing (§III-D)"))

    auto_pd, manual_pd = rows["powerdirector"]
    tlp_delta = abs(relative_difference_pct(manual_pd.tlp.mean,
                                            auto_pd.tlp.mean))
    assert tlp_delta < 8.0  # paper: 3.3%

    auto_vlc, manual_vlc = rows["vlc"]
    gpu_delta = abs(relative_difference_pct(manual_vlc.gpu_util.mean,
                                            auto_vlc.gpu_util.mean))
    assert gpu_delta < 8.0  # paper: 2.4%
