"""Design-choice ablations called out in DESIGN.md §6.

* **SMT dispatch policy** — spreading threads across idle physical
  cores first (Windows-like) vs packing SMT siblings early ("fill"):
  packing loses throughput for FU-bound work at partial load.
* **Scheduler quantum** — the TLP metric should be robust to the
  time-slice length (it measures *who runs*, not *how often we
  switch*).
* **GPU service-time scaling** — utilization on a weaker device
  follows the CUDA-cores x clock ratio for compute packets.
"""

import pytest

from repro.apps.transcoding import HandBrake, WinXVideoConverter
from repro.harness import run_app_once
from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.reporting import format_table
from repro.sim import MS, SECOND

DURATION = 25 * SECOND


def run_ablations():
    out = {}
    # Dispatch policy: 6 threads on 12 LCPUs is where spreading counts.
    machine = paper_machine()
    for policy in ("spread", "fill"):
        run = run_app_once(
            HandBrake(), machine=machine.with_logical_cpus(12),
            duration_us=DURATION, seed=5, dispatch_policy=policy)
        out[("policy", policy)] = run.outputs["frames"]
    # Quantum sensitivity of the TLP metric.
    for quantum in (5 * MS, 15 * MS, 30 * MS):
        run = run_app_once(HandBrake(), duration_us=DURATION, seed=5,
                           quantum=quantum)
        out[("quantum", quantum)] = run.tlp.tlp
    # GPU service scaling: WinX utilization ratio across devices.
    for gpu in (GTX_1080_TI, GTX_680):
        run = run_app_once(WinXVideoConverter(),
                           machine=paper_machine().with_gpu(gpu),
                           duration_us=DURATION, seed=5)
        out[("gpu", gpu.name)] = run.gpu_util.utilization_pct
    return out


def test_design_ablations(experiment, report):
    out = experiment(run_ablations)
    rows = [(str(k), f"{v:.2f}") for k, v in out.items()]
    report("ablation_design", format_table(
        ("Knob", "Value"), rows, title="Design-choice ablations"))

    # Dispatch policy matters little at full subscription (HandBrake
    # fills every logical CPU), sanity: both complete work.
    assert out[("policy", "spread")] > 0
    assert out[("policy", "fill")] > 0
    assert out[("policy", "spread")] >= out[("policy", "fill")] * 0.95

    # TLP is robust to the scheduling quantum (within a few percent).
    tlps = [out[("quantum", q)] for q in (5 * MS, 15 * MS, 30 * MS)]
    assert max(tlps) - min(tlps) < 0.8

    # Utilization ratio tracks the raw-rate ratio of the devices
    # (compute part scales; the NVENC part is fixed-function, so the
    # measured ratio sits between 1 and the full raw-rate ratio).
    ratio = out[("gpu", GTX_680.name)] / out[("gpu", GTX_1080_TI.name)]
    raw = GTX_1080_TI.raw_rate / GTX_680.raw_rate
    assert 1.5 < ratio <= raw + 0.5


def test_dispatch_policy_at_partial_load(experiment, report):
    """With 6 busy encode workers on 12 logical CPUs, packing SMT
    siblings early ("fill") hurts FU-bound throughput compared to
    spreading across idle physical cores first."""

    def run_pair():
        frames = {}
        for policy in ("spread", "fill"):
            run = run_app_once(
                HandBrake(workers=6), duration_us=DURATION, seed=5,
                dispatch_policy=policy)
            frames[policy] = run.outputs["frames"]
        return frames

    frames = experiment(run_pair)
    report("ablation_dispatch_partial", format_table(
        ("Policy", "Frames"), list(frames.items()),
        title="Dispatch policy at partial load (6 workers, 12 LCPUs)"))
    assert frames["spread"] > frames["fill"]
