"""§V-C.2 ablation — why SMT hurts the transcoders (VTune substitute).

Paper (Intel VTune on HandBrake): enabling SMT *decreases* LLC misses
and main-memory wait time (siblings fetch data for each other) but
*increases* the L1-bound stall fraction from 5.3% to 10.7% (contention
for in-core resources), and the net effect is a lower transcode rate.
"""

import pytest

from repro.apps.transcoding import HandBrake
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 30 * SECOND


def run_comparison():
    results = {}
    for smt in (True, False):
        machine = paper_machine().with_smt(smt).with_logical_cpus(
            12 if smt else 6)
        results[smt] = run_app_once(HandBrake(), machine=machine,
                                    duration_us=DURATION, seed=5)
    return results


def test_ablation_smt_memory_counters(experiment, report):
    results = experiment(run_comparison)
    rows = []
    for smt, run in results.items():
        counters = run.memory_counters
        rows.append((
            "SMT on" if smt else "SMT off",
            f"{run.outputs['frames'] / (DURATION / SECOND):5.1f}",
            f"{counters.llc_misses_per_ms:7.1f}",
            f"{counters.l1_stall_pct:5.2f}%",
            f"{counters.mem_wait_us / 1000:8.1f}",
        ))
    report("ablation_smt_memory", format_table(
        ("Config", "Rate FPS", "LLC miss/ms", "L1 stall", "Mem wait ms"),
        rows, title="Ablation: SMT effect on the memory hierarchy "
                    "(HandBrake, 6 physical cores)"))

    smt_on, smt_off = results[True], results[False]
    on_c, off_c = smt_on.memory_counters, smt_off.memory_counters

    # SMT reduces LLC misses per unit work (shared-data prefetching).
    assert on_c.llc_misses_per_ms < off_c.llc_misses_per_ms

    # ...but raises L1-bound stalls toward the paper's 5.3% -> 10.7%.
    assert off_c.l1_stall_pct == pytest.approx(5.3, abs=0.5)
    assert on_c.l1_stall_pct == pytest.approx(10.7, abs=1.0)

    # Net effect: the transcode rate drops with SMT enabled.
    assert smt_off.outputs["frames"] >= smt_on.outputs["frames"]
