"""Perf — campaign-scale DSE: simulate once per signature, score many.

Runs a full design-space campaign (1000 generated configs x 3 apps by
default) through :func:`repro.analysis.dse.run_campaign` and measures
configs-scored/s, then measures the *naive* rate — fully re-simulating
a seeded sample of grid points, the way a partition-less sweep would
score every point — and records the speedup to ``BENCH_dse.json``.

Honesty conventions (matching ``bench_hotpath``):

* The naive baseline is measured, not modelled: real simulations of a
  random sample of the same grid, same duration, same seed, then
  extrapolated linearly (simulation cost per point is flat across the
  grid because every config runs the same apps for the same simulated
  window).
* The campaign's own equivalence check (sampled full re-simulations
  vs analytic scores) must pass before any throughput number is
  reported — a fast path that drifts from ground truth fails here.
* ``REPRO_BENCH_QUICK=1`` shrinks the grid for CI smoke runs; the
  committed artifact is only updated by the full run.  The >=10x
  speedup gate is asserted on the full grid where the partition has
  real leverage; the quick grid asserts a >=2x floor.
"""

import json
import os
import pathlib
import random
import time

from repro.analysis.dse import run_campaign
from repro.harness.executor import execute_spec, make_spec
from repro.hardware.catalog import generate_machines
from repro.metrics.kernels import numpy_available
from repro.sim import SECOND

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
APPS = ("excel", "handbrake") if QUICK else \
    ("handbrake", "premiere", "excel")
CONFIGS = 100 if QUICK else 1000
EQ_SAMPLES = 4 if QUICK else 8
NAIVE_SAMPLE = 6 if QUICK else 12
DURATION_US = SECOND // 5
SEED = 2019
CHUNK = 4
MIN_SPEEDUP = 2.0 if QUICK else 10.0

BENCH_JSON = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_dse.json")


def run_measurement():
    machines = generate_machines(CONFIGS, seed=SEED)

    t0 = time.perf_counter()
    result = run_campaign(APPS, machines, duration_us=DURATION_US,
                          seed=SEED, chunk=CHUNK,
                          equivalence_samples=EQ_SAMPLES)
    campaign_wall = time.perf_counter() - t0

    # The naive baseline: re-simulate a seeded sample of grid points
    # end to end, exactly as a partition-less sweep would for all of
    # them.
    rng = random.Random(f"bench-dse-naive:{SEED}")
    points = rng.sample([(app, i) for app in APPS
                         for i in range(CONFIGS)], NAIVE_SAMPLE)
    t0 = time.perf_counter()
    for app, index in points:
        execute_spec(make_spec(app, machine=machines[index],
                               duration_us=DURATION_US, seed=SEED,
                               streaming=True))
    naive_wall = time.perf_counter() - t0
    return result, campaign_wall, naive_wall


def test_dse(experiment, report):
    result, campaign_wall, naive_wall = experiment(run_measurement)

    stats = result.stats
    eq = result.equivalence
    # Correctness gates come before any throughput claim.
    assert stats.failed_runs == 0, result.failures
    assert eq is not None and eq.ok, eq
    assert stats.analytic_fraction >= 0.8, stats

    campaign_rate = stats.grid_points / campaign_wall
    naive_rate = NAIVE_SAMPLE / naive_wall
    naive_wall_full = stats.grid_points / naive_rate
    speedup = campaign_rate / naive_rate

    payload = {
        "benchmark": "dse",
        "quick": QUICK,
        "apps": list(APPS),
        "configs": CONFIGS,
        "grid_points": stats.grid_points,
        "duration_us": DURATION_US,
        "seed": SEED,
        "chunk": CHUNK,
        "numpy": numpy_available(),
        "stats": stats.to_payload(),
        "equivalence": eq.to_payload(),
        "campaign_wall_s": round(campaign_wall, 3),
        "configs_scored_per_s": int(campaign_rate),
        "naive_sample_points": NAIVE_SAMPLE,
        "naive_sample_wall_s": round(naive_wall, 3),
        "naive_configs_per_s": round(naive_rate, 2),
        "naive_wall_s_extrapolated": round(naive_wall_full, 1),
        "speedup_vs_naive": round(speedup, 1),
        "frontier_points": {app: len(frontier) for app, frontier
                            in result.frontiers.items()},
    }
    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    lines = [
        "Perf — campaign-scale design-space exploration",
        "",
        f"grid          : {CONFIGS} configs x {len(APPS)} apps = "
        f"{stats.grid_points} points"
        + ("  [quick]" if QUICK else ""),
        f"partition     : {stats.signatures} trace-changing signatures"
        f" -> {stats.base_runs} base + {stats.equivalence_runs} "
        f"equivalence runs",
        f"analytic      : {stats.analytic_fraction:.1%} of the grid "
        f"scored without simulating",
        f"equivalence   : ok ({eq.samples} samples, TLP exact, "
        f"max rel err {eq.max_rel_err:.1e} vs rtol {eq.rtol:g})",
        f"campaign      : {campaign_wall:7.2f} s wall, "
        f"{campaign_rate:10,.0f} configs/s",
        f"naive         : {naive_rate:10.2f} configs/s measured on "
        f"{NAIVE_SAMPLE} sampled full re-simulations "
        f"(~{naive_wall_full:,.0f} s for the whole grid)",
        f"speedup       : {speedup:5.1f}x configs-scored/s vs "
        f"re-simulate-everything",
    ]
    report("perf_dse", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP:g}x configs-scored/s over the naive "
        f"baseline, got {speedup:.1f}x")
