"""Extension — §VII's first suggestion, quantified.

"Applications exhibiting complementary TLP characteristics can be
scheduled to execute concurrently to achieve best utilization of the
processor. For example, HandBrake exhibits high TLP with short periods
of TLP drop. The OS could schedule another task during troughs."

We (a) score offline complementarity from solo instantaneous-TLP
series, and (b) actually co-run HandBrake with Photoshop on one
machine and measure the utilization gain and per-app slowdown.
"""

import pytest

from repro.analysis import complementarity, coscheduling_gain, trough_headroom
from repro.apps import create_app
from repro.harness import run_app_once
from repro.metrics import instantaneous_tlp
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 30 * SECOND


def run_experiment():
    # Offline: HandBrake's troughs and Photoshop's fit into them.
    hb = run_app_once(create_app("handbrake"), duration_us=DURATION,
                      seed=2, keep_trace=True)
    ps = run_app_once(create_app("photoshop"), duration_us=DURATION,
                      seed=2, keep_trace=True)
    hb_series = instantaneous_tlp(hb.cpu_table, 12,
                                  processes=hb.process_names,
                                  step_us=250_000)
    ps_series = instantaneous_tlp(ps.cpu_table, 12,
                                  processes=ps.process_names,
                                  step_us=250_000)
    offline = {
        "hb_trough_share": trough_headroom(hb.cpu_table, 12,
                                           processes=hb.process_names),
        "fit_ps_into_hb": complementarity(hb_series, ps_series, 12),
    }
    # Online: actually run them together.
    online = coscheduling_gain(lambda: create_app("handbrake"),
                               lambda: create_app("photoshop"),
                               duration_us=DURATION, seed=2)
    return offline, online


def test_coscheduling_complementary_apps(experiment, report):
    offline, online = experiment(run_experiment)
    rows = [
        ("HandBrake trough share", f"{offline['hb_trough_share']:.2f}"),
        ("Photoshop demand fitting HB troughs",
         f"{offline['fit_ps_into_hb']:.2f}"),
        ("Solo busy CPUs (HB / PS)",
         f"{online.solo_busy_a:.2f} / {online.solo_busy_b:.2f}"),
        ("Co-run combined busy CPUs", f"{online.together_busy:.2f}"),
        ("Utilization gain vs best solo",
         f"{online.utilization_gain:.2f}x"),
        ("TLP retained (HB / PS)",
         f"{online.slowdown_a:.2f} / {online.slowdown_b:.2f}"),
    ]
    report("ext_coscheduling", format_table(
        ("Quantity", "Value"), rows,
        title="Extension: complementary-TLP co-scheduling (§VII)"))

    # HandBrake leaves real troughs...
    assert offline["hb_trough_share"] > 0.05
    # ...and co-running lifts whole-machine utilization.
    assert online.utilization_gain > 1.05
    assert online.together_busy > max(online.solo_busy_a,
                                      online.solo_busy_b)
    # Fairness is traded off: both apps lose some TLP when sharing.
    assert 0.3 < online.slowdown_a < 1.02
    assert 0.3 < online.slowdown_b < 1.02
    # Combined TLP approaches the machine width.
    assert online.combined_tlp == pytest.approx(12, abs=2.5)
