"""Extension — activity-based energy comparison.

§V-E cites Microsoft's browser measurement: "Edge claims to have the
best power efficiency, with Chrome and Firefox consuming 36% and 53%
more power respectively" — consistent with Edge's lower TLP and GPU
utilization.  With the energy model attached to the scheduler we can
make that comparison (and an SMT energy check) inside the simulation.
"""

import pytest

from repro.apps import create_app
from repro.apps.transcoding import HandBrake
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_energy():
    results = {}
    for browser in ("chrome", "firefox", "edge"):
        run = run_app_once(create_app(browser, test="multi-tab"),
                           duration_us=DURATION, seed=4)
        results[browser] = run.energy
    # SMT energy-to-solution for a fixed amount of transcoding work.
    for smt in (True, False):
        machine = paper_machine().with_smt(smt).with_logical_cpus(
            12 if smt else 6)
        run = run_app_once(HandBrake(total_frames=400), machine=machine,
                           duration_us=60 * SECOND, seed=4)
        results[f"handbrake-smt-{smt}"] = (
            run.energy, run.outputs["completed_at_us"])
    return results


def test_browser_energy_ordering(experiment, report):
    results = experiment(run_energy)
    rows = []
    for browser in ("edge", "chrome", "firefox"):
        energy = results[browser]
        rows.append((browser, f"{energy.cpu_active_j:7.1f}",
                     f"{energy.gpu_active_j:7.1f}",
                     f"{energy.average_power_w:6.1f}"))
    report("ext_energy", format_table(
        ("Browser", "CPU active J", "GPU active J", "Avg W"), rows,
        title="Extension: browsing energy (active app attribution)"))

    edge = results["edge"].cpu_active_j + results["edge"].gpu_active_j
    chrome = results["chrome"].cpu_active_j + results["chrome"].gpu_active_j
    firefox = (results["firefox"].cpu_active_j
               + results["firefox"].gpu_active_j)
    # Edge is the most frugal; Firefox the hungriest (§V-E ordering).
    assert edge < chrome < firefox
    # The gaps are material (paper cites +36% / +53%).
    assert chrome / edge > 1.1
    assert firefox / edge > 1.25

    # SMT energy-to-solution: SMT-off finishes the same 400 frames
    # sooner and does not pay the contention-stretched runtime.
    smt_energy, smt_time = results["handbrake-smt-True"]
    nosmt_energy, nosmt_time = results["handbrake-smt-False"]
    assert nosmt_time <= smt_time
