"""Extension — re-simulate Blake et al.'s 2010 testbed.

Runs era-2010 application models (3D games, Office 2007, software
decoders, HandBrake 0.9, single-process Firefox 3.5...) on the 2010
machine (8C/16T Xeon, GTX 285) and validates against the digitized
2010 dataset the comparison figures use.  Also reproduces the paper's
historical claim that in 2010 *single-tab* browsing had higher TLP
than multi-tab (garbage collection on navigation) — the reversal of
the 2018 result.
"""

import pytest

from repro.apps.era2010 import ERA2010_REFERENCE, ERA2010_REGISTRY, Firefox35
from repro.harness import run_app_once
from repro.hardware import machine_2010
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_era():
    machine = machine_2010()
    results = {}
    for name, cls in ERA2010_REGISTRY.items():
        run = run_app_once(cls(), machine=machine, duration_us=DURATION,
                           seed=3)
        results[name] = (run.tlp.tlp, run.gpu_util.utilization_pct)
    results["firefox-35-single"] = tuple(
        (lambda r: (r.tlp.tlp, r.gpu_util.utilization_pct))(
            run_app_once(Firefox35(test="single-tab"), machine=machine,
                         duration_us=DURATION, seed=3)))
    return results


def test_era2010_testbed(experiment, report):
    results = experiment(run_era)
    rows = []
    for name, (tlp, gpu) in results.items():
        ref = ERA2010_REFERENCE.get(name)
        rows.append((name, f"{tlp:5.2f}", f"{ref[0]:4.1f}" if ref else "-",
                     f"{gpu:6.2f}", f"{ref[1]:5.1f}" if ref else "-"))
    report("ext_era2010", format_table(
        ("App (2010)", "TLP", "Blake", "GPU%", "Blake"), rows,
        title="Extension: simulated 2010 testbed vs Blake et al. data"))

    for name, (ref_tlp, ref_gpu) in ERA2010_REFERENCE.items():
        tlp, gpu = results[name]
        assert tlp == pytest.approx(ref_tlp, abs=max(0.4, ref_tlp * 0.2)), name
        assert gpu == pytest.approx(ref_gpu, abs=max(2.0, ref_gpu * 0.25)), name

    # 2010's browsing reversal: single-tab TLP > multi-tab (GC on nav).
    multi = results["firefox-35"][0]
    single = results["firefox-35-single"][0]
    assert single > multi

    # The era average TLP sat near 2 — the paper's "2-3 cores were
    # still more than sufficient for most applications".
    era_avg = sum(tlp for name, (tlp, _g) in results.items()
                  if name in ERA2010_REFERENCE) / len(ERA2010_REFERENCE)
    assert era_avg < 2.6
