"""Extension — §VII's second suggestion: offload background work.

"If the user is editing an image in Photoshop and transcoding videos
in background, the transcoding task can be offloaded to the GPU when
Photoshop is using the CPU."

We co-run Photoshop with a background transcode two ways — pure-CPU
(HandBrake) vs GPU-assisted (WinX with CUDA/NVENC) — and compare
foreground responsiveness and background progress.
"""

import pytest

from repro.apps import create_app
from repro.harness import run_colocated
from repro.metrics import response_summary
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_pair():
    results = {}
    for background in ("handbrake", "winx"):
        run = run_colocated([create_app("photoshop"),
                             create_app(background)],
                            duration_us=DURATION, seed=2)
        latency = response_summary(run.marks["photoshop"])
        results[background] = {
            "frames": run.outputs[background]["frames"],
            "ps_latency_ms": latency.mean / 1000.0,
            "ps_tlp": run.per_app_tlp["photoshop"].tlp,
            "bg_gpu": run.per_app_gpu[background].utilization_pct,
        }
    return results


def test_background_transcode_prefers_gpu(experiment, report):
    results = experiment(run_pair)
    rows = [
        (name,
         data["frames"],
         f"{data['ps_latency_ms']:8.1f}",
         f"{data['ps_tlp']:5.2f}",
         f"{data['bg_gpu']:5.1f}")
        for name, data in results.items()
    ]
    report("ext_gpu_offload", format_table(
        ("Background transcoder", "Frames done", "PS latency ms",
         "PS TLP", "BG GPU%"), rows,
        title="Extension: Photoshop foreground + background transcode "
              "(§VII: offload the background task to the GPU)"))

    cpu_path = results["handbrake"]
    gpu_path = results["winx"]
    # The GPU-assisted transcoder makes more progress under contention...
    assert gpu_path["frames"] > cpu_path["frames"] * 1.1
    # ...while keeping Photoshop at least as responsive.
    assert gpu_path["ps_latency_ms"] <= cpu_path["ps_latency_ms"] * 1.1
    # And it actually used the GPU.
    assert gpu_path["bg_gpu"] > 5 * max(0.1, cpu_path["bg_gpu"])
