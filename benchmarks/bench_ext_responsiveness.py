"""Extension — interactive responsiveness vs core count.

Flautner et al. (the 2000 predecessor) observed that even when TLP
stayed below 2, "a second processor improved the responsiveness of
interactive applications".  We measure input->response latency (from
the trace marks every UI interaction emits) for interactive 2018
applications at 1/2/4 logical CPUs and check that the second CPU is
where the big win is.
"""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import response_summary, tail_latency
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND
APPS = ("excel", "word", "photoshop")


def run_latencies():
    results = {}
    for name in APPS:
        for cores in (1, 2, 4):
            machine = paper_machine().with_smt(False).with_logical_cpus(
                cores) if cores <= 6 else paper_machine()
            run = run_app_once(create_app(name), machine=machine,
                               duration_us=DURATION, seed=6)
            summary = response_summary(run.marks)
            results[(name, cores)] = (
                summary.mean / 1000.0,                   # ms
                tail_latency(run.marks, 0.95) / 1000.0,  # ms
            )
    return results


def test_responsiveness_improves_with_second_cpu(experiment, report):
    results = experiment(run_latencies)
    rows = [(name, cores, f"{mean_ms:8.1f}", f"{p95_ms:8.1f}")
            for (name, cores), (mean_ms, p95_ms) in sorted(results.items())]
    report("ext_responsiveness", format_table(
        ("App", "LCPUs", "Mean latency ms", "p95 ms"), rows,
        title="Extension: interactive response latency vs core count"))

    for name in APPS:
        one = results[(name, 1)][0]
        two = results[(name, 2)][0]
        four = results[(name, 4)][0]
        # A second CPU helps every interactive app, and more never hurts.
        assert two < one, name
        assert four <= two, name

    # For the serial office interactions, the second CPU is the big
    # step and further cores show diminishing returns (Flautner'00);
    # Photoshop's parallel renders keep scaling past two.
    for name in ("excel", "word"):
        one = results[(name, 1)][0]
        two = results[(name, 2)][0]
        four = results[(name, 4)][0]
        assert (one - two) >= (two - four) - 1.0, name

    # Photoshop's render-bound responses gain the most in absolute terms.
    ps_gain = results[("photoshop", 1)][0] - results[("photoshop", 4)][0]
    excel_gain = results[("excel", 1)][0] - results[("excel", 4)][0]
    assert ps_gain > excel_gain
