"""Extension — §VII's third suggestion: speculation during idle time.

"Idle time and time periods of low activity can be utilized to predict
future user tasks and perform them speculatively. ... when a Photoshop
user selects a blur filter, the system can speculate the next task to
be blur filter rendering and the core can start fetching off-chip data
locally, while the user is specifying filter configurations."

We run Photoshop with and without speculative prefetch and compare the
render response latency, the wasted-work count, and energy.
"""

import pytest

from repro.apps.image_authoring import Photoshop
from repro.harness import run_app_once
from repro.metrics import pair_marks
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 60 * SECOND


def render_latencies(run):
    values = [l.latency_us for l in pair_marks(run.marks)
              if l.label == "enter"]
    return sum(values) / len(values)


def run_pair():
    results = {}
    for speculative in (False, True):
        runs = [run_app_once(Photoshop(speculative=speculative),
                             duration_us=DURATION, seed=seed)
                for seed in (1, 2, 3)]
        results[speculative] = {
            "latency_ms": sum(render_latencies(r) for r in runs)
            / len(runs) / 1000.0,
            "wasted": sum(r.outputs["speculations_wasted"] for r in runs),
            "energy_j": sum(r.energy.cpu_active_j for r in runs) / len(runs),
            "tlp": sum(r.tlp.tlp for r in runs) / len(runs),
        }
    return results


def test_speculative_prefetch(experiment, report):
    results = experiment(run_pair)
    rows = [
        ("off" if not key else "on",
         f"{data['latency_ms']:8.0f}",
         data["wasted"],
         f"{data['energy_j']:7.0f}",
         f"{data['tlp']:5.2f}")
        for key, data in results.items()
    ]
    report("ext_speculation", format_table(
        ("Speculation", "Render latency ms", "Wasted (3 runs)",
         "CPU energy J", "TLP"), rows,
        title="Extension: speculative filter prefetch in Photoshop "
              "(§VII)"))

    baseline, speculative = results[False], results[True]
    # Speculation shortens the render-critical serial phase...
    assert speculative["latency_ms"] < baseline["latency_ms"] * 0.97
    # ...at the risk of wasted work (mispredictions do occur)...
    assert speculative["wasted"] >= 1
    assert baseline["wasted"] == 0
    # ...while the steady-state metrics stay calibrated.
    assert speculative["tlp"] == pytest.approx(baseline["tlp"], abs=0.8)
    assert speculative["energy_j"] == pytest.approx(
        baseline["energy_j"], rel=0.12)
