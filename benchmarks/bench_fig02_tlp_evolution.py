"""Fig. 2 — TLP of desktop applications: 2000 vs 2010 vs 2018.

2018 bars come from live simulated runs; 2000/2010 bars are the
digitized prior-work datasets.  Asserts the paper's reading: most
lineages show comparable or higher TLP in 2018, media playback and
video authoring dip slightly, HandBrake keeps climbing, and VR gaming
roughly doubles the TLP of traditional 3D gaming.
"""

import pytest

from repro.data import FIG2_LINEAGES
from repro.harness import run_app_once
from repro.reporting import fig2_series, render_fig2
from repro.sim import SECOND

DURATION = 40 * SECOND


def measure_2018():
    keys = {source for _c, entries in FIG2_LINEAGES
            for _l, year, source in entries if year == 2018}
    return {key: run_app_once(key, duration_us=DURATION, seed=7).tlp.tlp
            for key in sorted(keys)}


def test_fig2_tlp_evolution(experiment, report):
    measured = experiment(measure_2018)
    report("fig02_tlp_evolution", render_fig2(measured))
    series = dict(fig2_series(measured))

    def by_year(category):
        years = {}
        for _label, year, value in series[category]:
            years.setdefault(year, []).append(value)
        return {y: sum(v) / len(v) for y, v in years.items()}

    # VR gaming TLP is about twice traditional 3D gaming.
    vr = by_year("VR Gaming")[2018]
    gaming_2010 = by_year("3D Gaming")[2010]
    assert vr / gaming_2010 == pytest.approx(2.0, abs=0.6)

    # HandBrake keeps increasing: 2010 -> 2018.
    transcoding = {label: value for label, _y, value
                   in series["Video Authoring & Transcoding"]}
    assert transcoding["HandBrake 1.1.0"] > transcoding["HandBrake 0.9"]

    # Image authoring: Photoshop CC far above Photoshop CS4 and 4.0.1.
    image = {label: value for label, _y, value in series["Image Authoring"]}
    assert image["Photoshop CC"] > image["Photoshop CS4"] > 0

    # Office stays flat and low across 18 years.
    office = by_year("Office")
    assert office[2000] < 2.0 and office[2018] < 2.0

    # Media playback dips slightly (paper: decrease of 0.5-1.0).
    media = by_year("Media Playback")
    assert media[2018] <= media[2010]
    assert media[2010] - media[2018] < 1.2

    # Browsers improve modestly.
    web = {label: value for label, _y, value in series["Web Browsing"]}
    assert web["Firefox v60"] >= web["Firefox 3.5"]
