"""Fig. 3 — GPU utilization: 2010 vs 2018.

Paper: every 2018 benchmark shows *lower* GPU utilization than its
2010 counterpart (the GPU grew faster than the software's appetite),
except VR gaming, which is commensurate with traditional 3D gaming.
"""

import pytest

from repro.data import FIG3_LINEAGES
from repro.harness import run_app_once
from repro.reporting import fig3_series, render_fig3
from repro.sim import SECOND

DURATION = 40 * SECOND

#: Lineage pairs (2010 label, 2018 registry key) the paper compares.
PAIRS = (
    ("Photoshop CS4", "photoshop"),
    ("Maya3D 2010", "maya"),
    ("Quicktime 7.6", "quicktime"),
    ("PowerDirector v7", "powerdirector"),
    ("HandBrake 0.9", "handbrake"),
    ("Firefox 3.5", "firefox"),
    ("AdobeReader 9.0", "acrobat"),
    ("PowerPoint 2007", "powerpoint"),
    ("Word 2007", "word"),
    ("Excel 2007", "excel"),
)


def measure_2018():
    keys = {source for _c, entries in FIG3_LINEAGES
            for _l, year, source in entries if year == 2018}
    return {key: run_app_once(
                key, duration_us=DURATION, seed=7).gpu_util.utilization_pct
            for key in sorted(keys)}


def test_fig3_gpu_evolution(experiment, report):
    measured = experiment(measure_2018)
    report("fig03_gpu_evolution", render_fig3(measured))
    from repro.data import historical_gpu

    # Every shared lineage: 2018 utilization below 2010.
    for label_2010, key_2018 in PAIRS:
        assert measured[key_2018] < historical_gpu(label_2010), label_2010

    # VR gaming is commensurate with 2010's 3D gaming (within ~15 pts).
    vr_keys = ("arizona-sunshine", "fallout4", "raw-data", "serious-sam",
               "space-pirate", "project-cars-2")
    vr_avg = sum(measured[k] for k in vr_keys) / len(vr_keys)
    gaming_2010 = sum(historical_gpu(g)
                      for g in ("Call of Duty 4", "Bioshock", "Crysis")) / 3
    assert vr_avg == pytest.approx(gaming_2010, abs=15)
