"""Fig. 4 — TLP of category leaders at 4/8/12 logical CPUs (SMT on).

Paper: EasyMiner scales linearly (one thread per logical core);
HandBrake and Photoshop scale sub-linearly; Project CARS 2 saturates;
Chrome, VLC, Excel and Cortana stay tied to ~2 because there is no
parallelism left to exploit.
"""

import pytest

from repro.apps import create_app
from repro.harness import core_scaling_sweep
from repro.reporting import render_fig4
from repro.sim import SECOND

DURATION = 30 * SECOND

APPS = ("easyminer", "handbrake", "photoshop", "project-cars-2",
        "chrome", "vlc", "excel", "cortana")


def run_sweep():
    scaling = {}
    for name in APPS:
        sweep = core_scaling_sweep(lambda n=name: create_app(n),
                                   logical_cpus=(4, 8, 12),
                                   duration_us=DURATION)
        scaling[name] = {count: result.tlp.mean
                         for count, result in sweep.items()}
    return scaling


def test_fig4_core_scaling(experiment, report):
    scaling = experiment(run_sweep)
    report("fig04_core_scaling", render_fig4(scaling))

    # EasyMiner: TLP scales linearly with the number of active cores.
    easy = scaling["easyminer"]
    for count in (4, 8, 12):
        assert easy[count] == pytest.approx(count, abs=0.4)

    # HandBrake scales but sub-linearly at the top (docs: diminishing
    # returns beyond 6 cores).
    hb = scaling["handbrake"]
    assert hb[4] < hb[8] < hb[12]
    assert hb[12] < 12 * 0.9

    # Photoshop's filter rendering scales with core count.
    ps = scaling["photoshop"]
    assert ps[4] < ps[8] < ps[12]

    # Project CARS 2 saturates: the 8->12 gain is small.
    pc = scaling["project-cars-2"]
    assert pc[12] - pc[8] < pc[8] - pc[4] + 0.6

    # Low-parallelism applications stay tied near 2 at every count.
    for name in ("chrome", "vlc", "excel", "cortana"):
        values = scaling[name]
        assert max(values.values()) < 3.2, name
        assert max(values.values()) - min(values.values()) < 1.0, name
