"""Fig. 5 — HandBrake instantaneous TLP / GPU utilization over time.

A fixed-length clip is transcoded at 4/8/12 logical CPUs.  Paper:
TLP sits at the instantaneous maximum with periodic serialization
dips; runtime shrinks roughly in proportion to the core count.
"""

import pytest

from repro.apps.transcoding import HandBrake
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import instantaneous_tlp
from repro.reporting import render_timeseries_figure
from repro.sim import SECOND

TOTAL_FRAMES = 600
WINDOW = 90 * SECOND


def run_series():
    out = {}
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        result = run_app_once(HandBrake(total_frames=TOTAL_FRAMES),
                              machine=machine, duration_us=WINDOW,
                              seed=2, keep_trace=True)
        series = instantaneous_tlp(result.cpu_table, cores,
                                   processes=result.process_names,
                                   step_us=500_000)
        out[cores] = (result, series)
    return out


def test_fig5_handbrake_over_time(experiment, report):
    results = experiment(run_series)
    text = render_timeseries_figure(
        "Fig. 5: HandBrake instantaneous TLP over time",
        {f"{cores} logical CPUs": series
         for cores, (_r, series) in results.items()})
    report("fig05_handbrake_time", text)

    completion = {cores: r.outputs["completed_at_us"]
                  for cores, (r, _s) in results.items()}
    # Runtime decreases with core count, roughly in proportion.
    assert completion[4] > completion[8] > completion[12]
    assert completion[4] / completion[12] == pytest.approx(3.0, abs=1.0)

    for cores, (result, series) in results.items():
        # Only the transcoding window counts (after completion only the
        # idle preview thread remains).
        windows = int(result.outputs["completed_at_us"] // series.step_us)
        busy = [v for v in series.values[:windows] if v > 0.5]
        # Instantaneous TLP is mostly at the maximum...
        assert series.maximum() == pytest.approx(cores, abs=0.7)
        at_max = sum(1 for v in busy if v > cores * 0.8)
        assert at_max / len(busy) > 0.55, cores
        # ...with periodic dips from serialization.
        assert any(v < cores * 0.7 for v in busy), cores
