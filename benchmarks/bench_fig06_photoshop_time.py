"""Fig. 6 — Photoshop instantaneous TLP over time at 4/8/12 LCPUs.

Paper: filter rendering scales linearly with core count (reaching the
instantaneous maximum of 12 with all cores enabled) while user-input
processing shows no scalability; the runtime is bottlenecked by user
response time, so it shrinks sub-linearly (Amdahl).
"""

import pytest

from repro.apps.image_authoring import Photoshop
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import instantaneous_tlp
from repro.reporting import render_timeseries_figure
from repro.sim import SECOND

WINDOW = 50 * SECOND


def run_series():
    out = {}
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        result = run_app_once(Photoshop(), machine=machine,
                              duration_us=WINDOW, seed=2, keep_trace=True)
        series = instantaneous_tlp(result.cpu_table, cores,
                                   processes=result.process_names,
                                   step_us=500_000)
        out[cores] = (result, series)
    return out


def test_fig6_photoshop_over_time(experiment, report):
    results = experiment(run_series)
    report("fig06_photoshop_time", render_timeseries_figure(
        "Fig. 6: Photoshop instantaneous TLP over time",
        {f"{cores} logical CPUs": series
         for cores, (_r, series) in results.items()}))

    for cores, (result, series) in results.items():
        # Filter rendering reaches the machine maximum at every width.
        assert result.tlp.max_instantaneous == cores
        # User-interaction windows stay near 1 regardless of cores.
        low_activity = [v for v in series.values if 0.05 < v < 2.0]
        assert low_activity, cores

    # On the full machine the renders are short and idle (waiting on
    # user inputs) dominates; with fewer cores the same filter work
    # fills more of the window, so idle shrinks monotonically.
    idle = {cores: r.tlp.idle_fraction
            for cores, (r, _s) in results.items()}
    assert idle[12] > 0.2
    assert idle[4] <= idle[8] <= idle[12]

    # Average TLP grows with core count, sub-linearly.
    tlps = {cores: r.tlp.tlp for cores, (r, _s) in results.items()}
    assert tlps[4] < tlps[8] < tlps[12]
    assert tlps[12] / tlps[4] < 3.0  # Amdahl: far from linear
