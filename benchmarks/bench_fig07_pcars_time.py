"""Fig. 7 — Project CARS 2 (Rift) instantaneous TLP at 4/8/12 LCPUs.

Paper: moderate scalability; at 4 logical cores the Rift's ASW clamps
the frame rate to 45 FPS, with a matching reduction in TLP and GPU
utilization.
"""

import pytest

from repro.apps.vr_gaming import ProjectCars2
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import instantaneous_tlp
from repro.reporting import render_timeseries_figure
from repro.sim import SECOND

WINDOW = 30 * SECOND


def run_series():
    out = {}
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        result = run_app_once(ProjectCars2(headset="rift"), machine=machine,
                              duration_us=WINDOW, seed=2, keep_trace=True)
        series = instantaneous_tlp(result.cpu_table, cores,
                                   processes=result.process_names,
                                   step_us=500_000)
        out[cores] = (result, series)
    return out


def test_fig7_project_cars_over_time(experiment, report):
    results = experiment(run_series)
    report("fig07_pcars_time", render_timeseries_figure(
        "Fig. 7: Project CARS 2 (Rift) instantaneous TLP over time",
        {f"{cores} logical CPUs": series
         for cores, (_r, series) in results.items()}))

    fps = {cores: r.outputs["real_frames"] / (WINDOW / SECOND)
           for cores, (r, _s) in results.items()}
    # ASW clamp at 4 logical cores, full rate at 8 and 12.
    assert fps[4] < 65
    assert results[4][0].outputs.get("asw_engaged", 0) >= 1
    assert fps[8] == pytest.approx(90, abs=4)
    assert fps[12] == pytest.approx(90, abs=4)

    # The clamp shows up as lower GPU utilization too.
    utils = {cores: r.gpu_util.utilization_pct
             for cores, (r, _s) in results.items()}
    assert utils[4] < utils[12] * 0.8

    # TLP bursts to high values but saturates (serialized work).
    for cores, (_r, series) in results.items():
        assert series.maximum() > 3.0
