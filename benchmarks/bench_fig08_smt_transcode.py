"""Fig. 8 — transcode rate and GPU utilization: 2-6 cores, SMT, GPUs.

Paper: (a) SMT *decreases* the transcode rate of both HandBrake and
WinX (functional-unit contention beats the cache-sharing benefit);
WinX rates are identical on the GTX 680 and 1080 Ti (NVENC is
fixed-function).  (b) HandBrake's GPU utilization stays below 1%
everywhere; WinX shows much higher utilization on the mid-end GTX 680
than on the 1080 Ti.
"""

from repro.apps.transcoding import HandBrake, WinXVideoConverter
from repro.harness import smt_sweep
from repro.hardware import GTX_1080_TI, GTX_680
from repro.reporting import render_fig8
from repro.sim import SECOND

DURATION = 30 * SECOND
CORES = (2, 4, 6)


def run_grid():
    grid = {}
    for app_name, factory in (("HB", HandBrake),
                              ("WinX", WinXVideoConverter)):
        sweep = smt_sweep(lambda f=factory: f(), physical_cores=CORES,
                          gpus=(GTX_1080_TI, GTX_680),
                          duration_us=DURATION)
        for (gpu_name, smt, cores), run in sweep.items():
            rate = run.outputs["frames"] / (DURATION / SECOND)
            grid[(app_name, gpu_name, smt, cores)] = (
                rate, run.gpu_util.utilization_pct)
    return grid


def test_fig8_smt_and_gpu_offload(experiment, report):
    grid = experiment(run_grid)
    report("fig08_smt_transcode", render_fig8(grid, physical_cores=CORES))

    for app in ("HB", "WinX"):
        for gpu in (GTX_1080_TI.name, GTX_680.name):
            for cores in CORES:
                smt_rate, _ = grid[(app, gpu, True, cores)]
                nosmt_rate, _ = grid[(app, gpu, False, cores)]
                # SMT never helps and usually hurts the encode rate.
                assert nosmt_rate >= smt_rate * 0.97, (app, gpu, cores)

    # Rates scale up with core count.
    for app in ("HB", "WinX"):
        rates = [grid[(app, GTX_1080_TI.name, True, c)][0] for c in CORES]
        assert rates[0] < rates[1] < rates[2]

    # HandBrake's GPU utilization stays below 1% in every setting.
    for (app, _gpu, _smt, _cores), (_rate, util) in grid.items():
        if app == "HB":
            assert util < 1.0

    # WinX: same transcode rate on both GPUs (NVENC fixed-function)...
    for cores in CORES:
        r1080 = grid[("WinX", GTX_1080_TI.name, True, cores)][0]
        r680 = grid[("WinX", GTX_680.name, True, cores)][0]
        assert abs(r1080 - r680) / r1080 < 0.08, cores
    # ...but far higher utilization on the mid-end GTX 680.
    for cores in CORES:
        u1080 = grid[("WinX", GTX_1080_TI.name, True, cores)][1]
        u680 = grid[("WinX", GTX_680.name, True, cores)][1]
        assert u680 > 2.0 * u1080, cores
