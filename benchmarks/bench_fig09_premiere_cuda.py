"""Fig. 9 — Premiere Pro export with and without CUDA, both GPUs.

Paper: CUDA export shows higher GPU utilization and slightly lower
TLP than non-CUDA, without a significant runtime change; utilization
is higher on the GTX 680 than on the 1080 Ti.
"""

from repro.apps.video_authoring import PremierePro
from repro.harness import run_app_once
from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.reporting import render_fig9
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_grid():
    results = {}
    for gpu in (GTX_1080_TI, GTX_680):
        machine = paper_machine().with_gpu(gpu)
        for cuda in (False, True):
            run = run_app_once(PremierePro(use_cuda=cuda), machine=machine,
                               duration_us=DURATION, seed=6)
            results[(gpu.name, cuda)] = (
                run.gpu_util.utilization_pct, run.tlp.tlp,
                run.outputs["segments_exported"])
    return results


def test_fig9_premiere_cuda(experiment, report):
    results = experiment(run_grid)
    report("fig09_premiere_cuda", render_fig9(
        {key: value[:2] for key, value in results.items()}))

    for gpu_name in (GTX_1080_TI.name, GTX_680.name):
        util_cuda, tlp_cuda, seg_cuda = results[(gpu_name, True)]
        util_plain, tlp_plain, seg_plain = results[(gpu_name, False)]
        # CUDA raises GPU utilization and slightly lowers TLP.
        assert util_cuda > util_plain
        assert tlp_cuda <= tlp_plain + 0.05
        # Runtime (export progress) does not change dramatically.
        assert abs(seg_cuda - seg_plain) <= max(2, seg_plain * 0.5)

    # The mid-end GTX 680 runs the same CUDA kernels much hotter.
    assert results[(GTX_680.name, True)][0] > \
        2.0 * results[(GTX_1080_TI.name, True)][0]
