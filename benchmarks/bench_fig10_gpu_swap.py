"""Fig. 10 — GPU utilization on the GTX 680 vs the GTX 1080 Ti.

Applications with substantial GPU use: WMP, VLC, WinX, Bitcoin Miner,
EasyMiner, Windows Ethereum Miner.  Paper: the weaker GPU shows higher
utilization for video workloads; both GPUs run near 100% for sha256d
miners (with the 680's hash rate at least 2x lower); WinEth is the
exception whose utilization is *higher on the superior GPU* because
Kepler predates mining optimization.  (VR is excluded — the 680 is
below the VR floor; PhoenixMiner does not support the 680.)
"""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.reporting import render_fig10
from repro.sim import SECOND

DURATION = 30 * SECOND
APPS = ("wmp", "vlc", "winx", "bitcoin-miner", "easyminer", "wineth")


def run_grid():
    results = {}
    for name in APPS:
        per_gpu = {}
        rates = {}
        for gpu in (GTX_680, GTX_1080_TI):
            machine = paper_machine().with_gpu(gpu)
            run = run_app_once(create_app(name), machine=machine,
                               duration_us=DURATION, seed=8)
            per_gpu[gpu.name] = run.gpu_util.utilization_pct
            if "hash_rate" in run.outputs:
                rates[gpu.name] = run.outputs["hash_rate"]
        results[name] = (per_gpu, rates)
    return results


def test_fig10_gpu_swap(experiment, report):
    results = experiment(run_grid)
    report("fig10_gpu_swap", render_fig10(
        {name: per_gpu for name, (per_gpu, _rates) in results.items()}))

    # Video workloads: notable improvement in utilization on the 680.
    for name in ("wmp", "vlc", "winx"):
        per_gpu, _ = results[name]
        assert per_gpu[GTX_680.name] > 1.7 * per_gpu[GTX_1080_TI.name], name

    # sha256d miners saturate both GPUs...
    for name in ("bitcoin-miner", "easyminer"):
        per_gpu, rates = results[name]
        assert per_gpu[GTX_680.name] > 90
        assert per_gpu[GTX_1080_TI.name] > 90
        # ...but the 680's hash rate is at least 2x lower.
        assert rates[GTX_1080_TI.name] > 2.0 * rates[GTX_680.name], name

    # WinEth: higher utilization on the superior GPU (Kepler is not
    # optimized for mining workloads).
    per_gpu, rates = results["wineth"]
    assert per_gpu[GTX_1080_TI.name] > per_gpu[GTX_680.name] + 5
    assert rates[GTX_1080_TI.name] > 2.0 * rates[GTX_680.name]

    # PhoenixMiner refuses to run on the 680, as in the paper.
    with pytest.raises(ValueError, match="does not support"):
        run_app_once(create_app("phoenixminer"),
                     machine=paper_machine().with_gpu(GTX_680),
                     duration_us=5 * SECOND)
