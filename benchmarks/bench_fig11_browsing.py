"""Fig. 11 — browser TLP and GPU utilization across the four tests.

Paper: multi-tab TLP is similar to or *higher* than single-tab (the
reverse of 2010, thanks to multi-process models and throttled-but-live
background tabs); Chrome shows the least multi/single difference and
the highest TLP on ESPN (it spawns renderer processes for the active
iframes); all browsers use more GPU on ESPN than on Wikipedia.
"""

from repro.apps import create_app
from repro.apps.browsing import TESTS
from repro.harness import run_app_once
from repro.reporting import render_fig11
from repro.sim import SECOND

DURATION = 40 * SECOND
BROWSERS = ("chrome", "firefox", "edge")


def run_grid():
    results = {}
    for browser in BROWSERS:
        for test in TESTS:
            run = run_app_once(create_app(browser, test=test),
                               duration_us=DURATION, seed=4)
            results[(browser, test)] = (
                run.tlp.tlp, run.gpu_util.utilization_pct,
                run.outputs["renderer_processes"])
    return results


def test_fig11_browsing(experiment, report):
    results = experiment(run_grid)
    report("fig11_browsing", render_fig11(
        {key: value[:2] for key, value in results.items()}))

    for browser in BROWSERS:
        multi = results[(browser, "multi-tab")][0]
        single = results[(browser, "single-tab")][0]
        espn = results[(browser, "espn")][0]
        wiki = results[(browser, "wiki")][0]
        # Multi-tab >= single-tab (the 2018 reversal of Blake et al.).
        assert multi >= single - 0.05, browser
        # Heavy active content beats static content.
        assert espn > wiki, browser
        # ESPN drives more GPU compositing than Wikipedia.
        assert (results[(browser, "espn")][1]
                > results[(browser, "wiki")][1]), browser

    # Chrome shows the least multi/single difference...
    diffs = {b: results[(b, "multi-tab")][0] - results[(b, "single-tab")][0]
             for b in BROWSERS}
    assert diffs["chrome"] <= min(diffs["firefox"], diffs["edge"]) + 0.05

    # ...and the highest TLP on ESPN, from its per-iframe processes.
    assert results[("chrome", "espn")][0] > results[("firefox", "espn")][0]
    assert results[("chrome", "espn")][0] > results[("edge", "espn")][0]
    assert results[("chrome", "espn")][2] > results[("firefox", "espn")][2]

    # Chrome creates many more processes than Firefox overall.
    assert (results[("chrome", "multi-tab")][2]
            >= 2 * results[("firefox", "multi-tab")][2])

    # Firefox compensates with the heaviest GPU use.
    for test in TESTS:
        assert (results[("firefox", test)][1]
                >= results[("chrome", test)][1]), test
