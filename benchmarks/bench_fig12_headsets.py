"""Fig. 12 — VR TLP and GPU utilization across Rift / Vive / Vive Pro.

Paper: Rift achieves the highest TLP (heavier client runtime); Vive
and Vive Pro have almost the same TLP; GPU utilization correlates with
headset resolution — Vive Pro is highest for every game *except*
Fallout 4, which is CPU-bound at the higher resolution and drops both
GPU utilization and frame rate.
"""

from repro.apps import create_app
from repro.harness import run_app_once
from repro.sim import SECOND

from repro.reporting import render_fig12

DURATION = 25 * SECOND
GAMES = ("arizona-sunshine", "fallout4", "raw-data", "serious-sam",
         "space-pirate", "project-cars-2")
HEADSETS = ("rift", "vive", "vive-pro")


def run_grid():
    results = {}
    for game in GAMES:
        for headset in HEADSETS:
            run = run_app_once(create_app(game, headset=headset),
                               duration_us=DURATION, seed=4)
            results[(game, headset)] = (
                run.tlp.tlp, run.gpu_util.utilization_pct,
                run.outputs["real_frames"] / (DURATION / SECOND))
    return results


def test_fig12_headsets(experiment, report):
    results = experiment(run_grid)
    report("fig12_headsets", render_fig12(
        {key: value[:2] for key, value in results.items()}))

    for game in GAMES:
        rift_tlp = results[(game, "rift")][0]
        vive_tlp = results[(game, "vive")][0]
        pro_tlp = results[(game, "vive-pro")][0]
        # Rift achieves the highest TLP.
        assert rift_tlp >= max(vive_tlp, pro_tlp) - 0.05, game
        # Vive and Vive Pro have almost the same TLP.
        assert abs(vive_tlp - pro_tlp) < 0.8, game

    # GPU utilization correlates with resolution (all but Fallout 4).
    for game in GAMES:
        vive_util = results[(game, "vive")][1]
        pro_util = results[(game, "vive-pro")][1]
        if game == "fallout4":
            # The exception: CPU-bound at high res, utilization drops.
            assert pro_util < vive_util - 5
            assert (results[(game, "vive-pro")][2]
                    < results[(game, "vive")][2] * 0.9)
        else:
            assert pro_util > vive_util + 3, game

    # Rift and Vive share a resolution: comparable utilization.
    for game in GAMES:
        rift_util = results[(game, "rift")][1]
        vive_util = results[(game, "vive")][1]
        assert abs(rift_util - vive_util) < 6, game
