"""Fig. 13 — instantaneous frame rate of Project CARS 2 per headset.

Paper: with 6 SMT cores all three headsets target 90 FPS; the Rift's
ASW gives it the most stable frame delivery, while Vive and Vive Pro's
asynchronous reprojection lets the real frame rate oscillate.
"""

import pytest

from repro.apps.vr_gaming import ProjectCars2
from repro.harness import run_app_once
from repro.metrics import frame_rate_series
from repro.reporting import render_timeseries_figure
from repro.sim import SECOND

DURATION = 30 * SECOND
HEADSETS = ("rift", "vive", "vive-pro")


def run_series():
    out = {}
    for headset in HEADSETS:
        result = run_app_once(ProjectCars2(headset=headset),
                              duration_us=DURATION, seed=4)
        real_frames = [f for f in result.frames if not f.reprojected]
        series = frame_rate_series(real_frames, 0, DURATION)
        out[headset] = (result, series)
    return out


def _steady(series):
    return series.values[1:-1]


def test_fig13_frame_rate_stability(experiment, report):
    results = experiment(run_series)
    report("fig13_framerate", render_timeseries_figure(
        "Fig. 13: Project CARS 2 instantaneous frame rate (real frames)",
        {headset: series for headset, (_r, series) in results.items()}))

    def variance(headset):
        values = _steady(results[headset][1])
        mean = sum(values) / len(values)
        return sum((v - mean) ** 2 for v in values) / len(values)

    # All headsets present near their 90 FPS target on the full machine.
    for headset, (result, series) in results.items():
        mean_fps = sum(_steady(series)) / len(_steady(series))
        assert mean_fps == pytest.approx(90, abs=10), headset

    # Rift (ASW) is the most stable of the three.
    assert variance("rift") <= variance("vive") + 1e-9
    assert variance("rift") <= variance("vive-pro") + 1e-9

    # The higher-resolution Vive Pro reprojects the most.
    reprojected = {h: r.outputs["reprojected_frames"]
                   for h, (r, _s) in results.items()}
    assert reprojected["vive-pro"] >= reprojected["vive"]
