"""Perf — the per-run hot path over the 150-run golden grid.

Replays the golden fingerprint grid (30 apps x 5 machine configs, one
simulated second each, seed 2019) under the hot-path modes this repo
grew — vectorized sweep kernels (``REPRO_KERNEL``), epoch-partitioned
simulation (``REPRO_EPOCH``) and shared-memory result transport
(``REPRO_TRANSPORT``) — and records grid events/s per mode to
``BENCH_hotpath.json``.

Methodology (single-core containers are noisy):

* The event count is taken once from an untimed ``keep_trace`` pass —
  records are deterministic and identical across modes, so every mode
  divides the same numerator.
* Timed passes are *interleaved* round-robin across modes and the best
  of R rounds is kept, so CPU frequency drift cannot masquerade as a
  mode difference.
* Bit-identity is asserted against the committed goldens for every
  mode (serial scalar, serial vectorized, pool + shared memory,
  streaming) — a fast mode that changes one bit of one metric fails
  here before any throughput number is reported.

Assertions follow the repo's honesty convention (``bench_perf_
executor``): the headline >= 2x events/s criterion is asserted where
it can physically hold — pool mode with >= 4 usable CPUs; on fewer
CPUs the serial hot path must simply never regress below the serial
scalar baseline (with a small noise allowance), and the measured
numbers are recorded as-is.  ``REPRO_BENCH_QUICK=1`` shrinks the grid
for CI smoke runs; the no-regression check still applies there.
"""

import json
import os
import pathlib
import time

from repro.harness.executor import ParallelExecutor, SerialExecutor, execute_spec
from repro.harness.executor import default_jobs
from repro.harness.transport import TRANSPORT_ENV, shm_available
from repro.metrics.kernels import KERNEL_ENV, numpy_available
from repro.sim.environment import EPOCH_ENV
from repro.validate.golden import (
    GOLDEN_CONFIGS,
    compute_fingerprints,
    config_id,
    golden_spec,
    load_goldens,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
APPS = (("handbrake", "photoshop", "chrome", "vlc", "excel", "wineth")
        if QUICK else None)  # None = the full 30-app suite
CONFIGS = ((4, True), (12, True)) if QUICK else GOLDEN_CONFIGS
REPEATS = 5 if QUICK else 3
#: No-regression gate: quick grids finish in tens of milliseconds
#: where timer jitter alone is >10%, so the smoke gate is wider.
NOISE_ALLOWANCE = 1.25 if QUICK else 1.05
JOBS = 4

BENCH_JSON = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_hotpath.json")

#: Golden-grid wall time measured from a ``git worktree`` of the
#: pre-PR commit on this container (best of interleaved rounds, serial
#: — the pre-PR tree has neither kernels, epochs nor transports).
PRE_PR_REFERENCE = {"commit": "d3aeb89", "grid_wall_s": 0.987}

#: Mode name -> (environment selection, executor factory).
MODES = {
    "serial-scalar": ({EPOCH_ENV: "legacy", KERNEL_ENV: "scalar",
                       TRANSPORT_ENV: "pickle"},
                      lambda: SerialExecutor()),
    "serial-hotpath": ({EPOCH_ENV: "auto", KERNEL_ENV: "vector",
                        TRANSPORT_ENV: "pickle"},
                       lambda: SerialExecutor()),
    "pool-shm": ({EPOCH_ENV: "auto", KERNEL_ENV: "vector",
                  TRANSPORT_ENV: "shm"},
                 lambda: ParallelExecutor(jobs=JOBS)),
}

_HOTPATH_VARS = (EPOCH_ENV, KERNEL_ENV, TRANSPORT_ENV)


def _suite_apps():
    if APPS is not None:
        return APPS
    from repro.apps import SUITE

    return SUITE


def _grid_specs(apps):
    return [golden_spec(app, cores, smt)
            for app in apps for cores, smt in CONFIGS]


class _env_modes:
    """Temporarily pin the hot-path environment selection."""

    def __init__(self, selection):
        self.selection = selection
        self.saved = {}

    def __enter__(self):
        for var in _HOTPATH_VARS:
            self.saved[var] = os.environ.get(var)
            os.environ.pop(var, None)
        os.environ.update(self.selection)

    def __exit__(self, *exc):
        for var, value in self.saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def count_grid_events(apps):
    """Total trace records of one grid pass (mode-invariant)."""
    total = 0
    for spec in _grid_specs(apps):
        spec.kwargs["keep_trace"] = True
        run = execute_spec(spec)
        total += (len(run.trace.cswitches) + len(run.trace.gpu_packets)
                  + len(run.frames) + len(run.marks))
    return total


def timed_grid_pass(apps, selection, make_executor):
    specs = _grid_specs(apps)
    with _env_modes(selection):
        t0 = time.perf_counter()
        make_executor().map(specs)
        return time.perf_counter() - t0


def check_fingerprints(apps, goldens, selection, jobs=None,
                       streaming=False):
    """Assert every grid fingerprint matches the committed goldens."""
    with _env_modes(selection):
        actual = compute_fingerprints(apps, configs=CONFIGS, jobs=jobs,
                                      streaming=streaming)
    for app in apps:
        for cores, smt in CONFIGS:
            cid = config_id(cores, smt)
            assert actual[app][cid]["digest"] == \
                goldens[app][cid]["digest"], (app, cid, selection)


def run_measurement():
    apps = _suite_apps()
    goldens = load_goldens()
    events = count_grid_events(apps)

    walls = {mode: float("inf") for mode in MODES}
    for _ in range(REPEATS):
        for mode, (selection, factory) in MODES.items():
            walls[mode] = min(walls[mode],
                              timed_grid_pass(apps, selection, factory))

    # Bit-identity across every mode, including streaming (which has
    # no wall-time story here — it exists to be cross-checked).
    scalar_sel, _ = MODES["serial-scalar"]
    hot_sel, _ = MODES["serial-hotpath"]
    shm_sel, _ = MODES["pool-shm"]
    check_fingerprints(apps, goldens, scalar_sel)
    check_fingerprints(apps, goldens, hot_sel)
    check_fingerprints(apps, goldens, shm_sel, jobs=2)
    check_fingerprints(apps, goldens, hot_sel, streaming=True)
    return apps, events, walls


def test_hotpath(experiment, report):
    apps, events, walls = experiment(run_measurement)

    cpus = default_jobs()
    rates = {mode: events / wall for mode, wall in walls.items()}
    base = rates["serial-scalar"]
    payload = {
        "benchmark": "hotpath",
        "quick": QUICK,
        "grid_points": len(apps) * len(CONFIGS),
        "grid_events": events,
        "repeats": REPEATS,
        "jobs": JOBS,
        "usable_cpus": cpus,
        "numpy": numpy_available(),
        "shm": shm_available(),
        "wall_s": {m: round(w, 3) for m, w in walls.items()},
        "events_per_s": {m: int(r) for m, r in rates.items()},
        "speedup_vs_serial_scalar": {
            m: round(r / base, 2) for m, r in rates.items()},
        "pre_pr_reference": PRE_PR_REFERENCE,
        "bit_identical_modes": ["serial-scalar", "serial-hotpath",
                                "pool-shm", "streaming"],
    }
    if not QUICK:
        # Quick CI smokes measure a 12-point grid; only the full run
        # updates the committed artifact.
        BENCH_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    lines = [
        "Perf — per-run hot path over the golden grid",
        "",
        f"grid      : {len(apps)} apps x {len(CONFIGS)} configs "
        f"({len(apps) * len(CONFIGS)} runs, {events} events)"
        + ("  [quick]" if QUICK else ""),
    ]
    for mode in MODES:
        lines.append(f"{mode:15s}: {walls[mode]:7.3f} s wall, "
                     f"{rates[mode]:12,.0f} events/s "
                     f"({rates[mode] / base:4.2f}x)")
    lines += [
        f"usable CPUs    : {cpus} (pool jobs={JOBS})",
        "fingerprints   : bit-identical to committed goldens in every "
        "mode (asserted)",
    ]
    report("perf_hotpath", "\n".join(lines))

    # The serial hot path must never lose to the serial scalar
    # baseline (modulo timer noise) — this is the CI regression gate.
    assert walls["serial-hotpath"] <= \
        walls["serial-scalar"] * NOISE_ALLOWANCE, (
        f"serial hot path regressed: {walls['serial-hotpath']:.3f}s vs "
        f"scalar baseline {walls['serial-scalar']:.3f}s")

    # The headline >2x events/s criterion needs real parallel hardware
    # under the pool — asserted where it can hold, recorded honestly
    # everywhere (same convention as bench_perf_executor).
    if cpus >= JOBS and not QUICK:
        assert rates["pool-shm"] > 2.0 * base, (
            f"expected >2x grid events/s from the pooled hot path on "
            f"{cpus} CPUs, got {rates['pool-shm'] / base:.2f}x")
