"""Perf — parallel experiment executor vs serial on a reduced suite.

Times the Table II protocol over 6 applications x 3 iterations with
the serial backend and with a 4-worker process pool, asserts the
parallel results are bit-identical, and records the wall-clock numbers
to ``BENCH_executor.json`` so later PRs have a perf trajectory.

The >= 2x speedup assertion only applies on machines with >= 4 usable
CPUs — on a single-core container a process pool cannot beat serial
execution, and the run records that honestly instead of lying with a
skipped measurement.
"""

import json
import pathlib
import time

from repro.harness import run_suite
from repro.harness.executor import default_jobs
from repro.sim import SECOND

APPS = ("handbrake", "photoshop", "chrome", "vlc", "excel", "wineth")
ITERATIONS = 3
DURATION = 10 * SECOND
JOBS = 4

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"


def run_measurement():
    t0 = time.perf_counter()
    serial = run_suite(names=APPS, duration_us=DURATION,
                       iterations=ITERATIONS, jobs=1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_suite(names=APPS, duration_us=DURATION,
                         iterations=ITERATIONS, jobs=JOBS)
    t_parallel = time.perf_counter() - t0
    return serial, parallel, t_serial, t_parallel


def test_perf_executor(experiment, report):
    serial, parallel, t_serial, t_parallel = experiment(run_measurement)

    for name in APPS:
        assert serial.results[name].fractions == \
            parallel.results[name].fractions, name
        assert serial.results[name].tlp == parallel.results[name].tlp, name
        assert serial.results[name].gpu_util == \
            parallel.results[name].gpu_util, name

    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    cpus = default_jobs()
    payload = {
        "benchmark": "perf_executor",
        "apps": list(APPS),
        "iterations": ITERATIONS,
        "duration_s": DURATION / SECOND,
        "jobs": JOBS,
        "usable_cpus": cpus,
        "wall_serial_s": round(t_serial, 3),
        "wall_parallel_s": round(t_parallel, 3),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")

    lines = [
        "Perf — parallel executor vs serial (reduced Table II suite)",
        "",
        f"grid      : {len(APPS)} apps x {ITERATIONS} iterations "
        f"({DURATION // SECOND}s simulated each)",
        f"serial    : {t_serial:7.2f} s wall",
        f"parallel  : {t_parallel:7.2f} s wall (jobs={JOBS}, "
        f"{cpus} usable CPUs)",
        f"speedup   : {speedup:7.2f} x",
        "results   : bit-identical to serial (asserted)",
    ]
    report("perf_executor", "\n".join(lines))

    if cpus >= JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {JOBS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x")
