"""Perf — parallel experiment executor vs serial on a reduced suite.

Times the Table II protocol over 6 applications x 3 iterations with
the serial backend and with a 4-worker process pool, asserts the
parallel results are bit-identical, and records the wall-clock numbers
to ``BENCH_executor.json`` so later PRs have a perf trajectory.

A second measurement splits one worker's run into its phases —
*compute* (the simulation itself) vs *result transfer* (getting the
finished ``SingleRun`` back to the parent) — for both transports: the
legacy pickle round-trip and the shared-memory segment layout of
:mod:`repro.harness.transport`.  Alongside the times it records the
bytes each transport pushes through the worker pipe: pickle ships the
whole payload, shm ships a ~100-byte handle while the column buffers
cross as one ``memoryview`` copy into the segment.

The >= 2x speedup assertion only applies on machines with >= 4 usable
CPUs — on a single-core container a process pool cannot beat serial
execution, and the run records that honestly instead of lying with a
skipped measurement.
"""

import json
import pathlib
import pickle
import time

from repro.harness import run_suite
from repro.harness.executor import default_jobs, execute_spec, make_spec
from repro.harness.transport import decode_result, encode_result, shm_available
from repro.sim import SECOND

APPS = ("handbrake", "photoshop", "chrome", "vlc", "excel", "wineth")
ITERATIONS = 3
DURATION = 10 * SECOND
JOBS = 4
TRANSFER_REPEATS = 5

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"


def run_measurement():
    t0 = time.perf_counter()
    serial = run_suite(names=APPS, duration_us=DURATION,
                       iterations=ITERATIONS, jobs=1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_suite(names=APPS, duration_us=DURATION,
                         iterations=ITERATIONS, jobs=JOBS)
    t_parallel = time.perf_counter() - t0
    return serial, parallel, t_serial, t_parallel


def measure_phases():
    """Per-phase timing of one worker unit: compute vs transfer.

    Uses a trace-carrying run (the heavy payload) so the transports
    are compared on the case that motivated shared memory; best-of-R
    on the transfer round-trips, which are short enough to be noisy.
    """
    spec = make_spec("chrome", duration_us=DURATION, seed=2019,
                     keep_trace=True)
    t0 = time.perf_counter()
    run = execute_spec(spec)
    t_compute = time.perf_counter() - t0

    blob = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
    t_pickle = min_over(TRANSFER_REPEATS, lambda: pickle.loads(
        pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)))
    probe = encode_result(run) if shm_available() else None
    if probe is None:
        return t_compute, t_pickle, 0.0, len(blob), 0
    handle_bytes = len(pickle.dumps(probe,
                                    protocol=pickle.HIGHEST_PROTOCOL))
    decode_result(probe)  # consume the probe segment (decode unlinks)
    t_shm = min_over(TRANSFER_REPEATS,
                     lambda: decode_result(encode_result(run)))
    return t_compute, t_pickle, t_shm, len(blob), handle_bytes


def min_over(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_perf_executor(experiment, report):
    serial, parallel, t_serial, t_parallel = experiment(run_measurement)

    for name in APPS:
        assert serial.results[name].fractions == \
            parallel.results[name].fractions, name
        assert serial.results[name].tlp == parallel.results[name].tlp, name
        assert serial.results[name].gpu_util == \
            parallel.results[name].gpu_util, name

    t_compute, t_pickle, t_shm, pickle_bytes, handle_bytes = \
        measure_phases()

    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    cpus = default_jobs()
    payload = {
        "benchmark": "perf_executor",
        "apps": list(APPS),
        "iterations": ITERATIONS,
        "duration_s": DURATION / SECOND,
        "jobs": JOBS,
        "usable_cpus": cpus,
        "wall_serial_s": round(t_serial, 3),
        "wall_parallel_s": round(t_parallel, 3),
        "speedup": round(speedup, 2),
        "bit_identical": True,
        "phases": {
            "compute_s": round(t_compute, 4),
            "transfer_pickle_s": round(t_pickle, 4),
            "transfer_shm_s": round(t_shm, 4),
            "pipe_bytes_pickle": pickle_bytes,
            "pipe_bytes_shm": handle_bytes,
            "pickle_share_of_unit_pct": round(
                100 * t_pickle / (t_compute + t_pickle), 1),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")

    lines = [
        "Perf — parallel executor vs serial (reduced Table II suite)",
        "",
        f"grid      : {len(APPS)} apps x {ITERATIONS} iterations "
        f"({DURATION // SECOND}s simulated each)",
        f"serial    : {t_serial:7.2f} s wall",
        f"parallel  : {t_parallel:7.2f} s wall (jobs={JOBS}, "
        f"{cpus} usable CPUs)",
        f"speedup   : {speedup:7.2f} x",
        "results   : bit-identical to serial (asserted)",
        "",
        "per-phase (one trace-carrying worker unit):",
        f"compute          : {t_compute:8.4f} s",
        f"transfer (pickle): {t_pickle:8.4f} s, "
        f"{pickle_bytes:,} B through the pipe "
        f"({100 * t_pickle / (t_compute + t_pickle):.1f}% of the unit)",
        f"transfer (shm)   : {t_shm:8.4f} s, "
        f"{handle_bytes:,} B through the pipe",
    ]
    report("perf_executor", "\n".join(lines))

    if cpus >= JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {JOBS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x")
