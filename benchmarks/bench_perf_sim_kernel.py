"""Perf — sim-kernel fast paths, columnar buffers, streaming metrics.

Two measurements, three trace modes:

* **Trace pipeline**: push N context-switch events through a
  ``TraceSession`` and compute TLP — the per-event cost the PR
  attacks.  ``legacy`` (``columnar=False``) preserves the pre-PR
  storage path (one frozen dataclass per record, eager lists, post-hoc
  sweep) as a living baseline; ``columnar`` appends to flat arrays;
  ``streaming`` feeds occupancy edges to the online engine and never
  stores anything.
* **Scheduler stress**: an end-to-end kernel run with 32 contending
  threads, where generator/heapq machinery dominates — reported so the
  pipeline numbers cannot be mistaken for whole-simulation speedups.

Wall time is best-of-R (single-core containers are noisy); peak memory
comes from a separate tracemalloc pass so instrumentation does not
pollute the timings.  Numbers land in ``BENCH_sim_kernel.json``
alongside the pre-PR reference measured from a worktree of commit
b796bec on this same container.  ``REPRO_BENCH_QUICK=1`` shrinks the
event counts for CI smoke runs and skips the speedup assertions (tiny
runs on shared runners measure noise, not the kernel).
"""

import gc
import json
import os
import pathlib
import time
import tracemalloc

from repro.hardware import paper_machine
from repro.metrics import OnlineMetricsEngine, measure_tlp
from repro.os import Kernel, WorkClass
from repro.sim import MS, SECOND, Environment
from repro.trace import CpuUsagePreciseTable, TraceSession

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_EVENTS = 60_000 if QUICK else 400_000
REPEATS = 1 if QUICK else 3
STRESS_DURATION = (2 if QUICK else 10) * SECOND
STRESS_THREADS = 32
N_LOGICAL = 12

BENCH_JSON = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_sim_kernel.json")

#: Trace-pipeline events/sec measured from a ``git worktree`` of the
#: pre-PR commit on this container (best of interleaved runs).  The
#: pre-PR tree only has the record-list path, which the in-repo
#: ``legacy`` mode keeps byte-for-byte comparable.
PRE_PR_REFERENCE = {
    "commit": "b796bec",
    "trace_pipeline_events_per_s": 270_000,
    "stress_events_per_s_ratio_vs_legacy": 1.2,
}


def _session(env, mode):
    if mode == "legacy":
        return TraceSession(env, machine_name="bench", columnar=False)
    if mode == "columnar":
        return TraceSession(env, machine_name="bench")
    return TraceSession(env, machine_name="bench", retain_records=False)


def _pipeline_once(mode, n):
    """One pass of n events through the trace/metrics pipeline."""
    env = Environment()
    session = _session(env, mode)
    engine = (OnlineMetricsEngine(session, N_LOGICAL)
              if mode == "streaming" else None)
    names = [f"app{k}.exe" for k in range(8)]
    threads = [f"worker-{k}" for k in range(16)]

    t0 = time.perf_counter()
    session.start()
    if mode == "streaming":
        for i in range(n):
            # The same edges the scheduler emits, in time order.  The
            # clock is advanced directly: this isolates trace-path cost
            # from kernel machinery (the stress run covers the rest).
            cpu = i % N_LOGICAL
            session.emit_cpu_busy(names[i % 8], cpu)
            env._now = i * 3 + 2
            session.emit_cpu_idle(names[i % 8], cpu)
            env._now = i * 3 + 3
        env._now = n * 3
        session.stop()
        tlp = engine.tlp_result()
    else:
        for i in range(n):
            t = i * 3
            session.emit_cswitch(names[i % 8], 4, 100 + (i % 16),
                                 threads[i % 16], i % N_LOGICAL, t, t, t + 2)
        env._now = n * 3
        trace = session.stop()
        table = CpuUsagePreciseTable.from_trace(trace)
        tlp = measure_tlp(table, N_LOGICAL)
    wall = time.perf_counter() - t0
    return wall, tlp


def _pipeline_peak_bytes(mode, n):
    tracemalloc.start()
    try:
        _pipeline_once(mode, n)
        _size, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _burner(total):
    def body(ctx):
        remaining = total
        while remaining > 0:
            step = min(remaining, 1 * MS)
            yield ctx.cpu(step, WorkClass.BALANCED)
            remaining -= step
            yield ctx.sleep(step // 5)
    return body


def _stress_once(mode, duration):
    """End-to-end kernel run: 32 threads contending for 12 LCPUs."""
    env = Environment()
    machine = paper_machine()
    session = _session(env, mode)
    kernel = Kernel(env, machine, session=session, seed=1)
    engine = (OnlineMetricsEngine(session, machine.logical_cpus)
              if mode == "streaming" else None)
    proc = kernel.spawn_process("stress.exe")
    for i in range(STRESS_THREADS):
        proc.spawn_thread(_burner(duration), name=f"w{i}")

    t0 = time.perf_counter()
    session.start()
    env.run(until=duration)
    trace = session.stop()
    if mode == "streaming":
        tlp = engine.tlp_result()
    else:
        tlp = measure_tlp(CpuUsagePreciseTable.from_trace(trace),
                          machine.logical_cpus)
    wall = time.perf_counter() - t0
    return wall, env._eid, tlp


def run_measurement():
    # Repeats are interleaved round-robin (and each run starts from a
    # collected heap) so a slow period on a shared single-core box
    # penalizes every mode equally instead of whichever ran last.
    pipeline = {m: {"wall_s": None} for m in ("legacy", "columnar",
                                              "streaming")}
    for _ in range(REPEATS):
        for mode, slot in pipeline.items():
            gc.collect()
            wall, tlp = _pipeline_once(mode, N_EVENTS)
            if slot["wall_s"] is None or wall < slot["wall_s"]:
                slot["wall_s"] = wall
            slot["tlp"] = tlp
    for mode, slot in pipeline.items():
        slot["events_per_s"] = N_EVENTS / slot["wall_s"]
        gc.collect()
        slot["peak_bytes"] = _pipeline_peak_bytes(mode, N_EVENTS)

    stress = {m: {"wall_s": None} for m in ("legacy", "streaming")}
    for _ in range(REPEATS):
        for mode, slot in stress.items():
            gc.collect()
            wall, events, tlp = _stress_once(mode, STRESS_DURATION)
            if slot["wall_s"] is None or wall < slot["wall_s"]:
                slot["wall_s"] = wall
            slot["events"] = events
            slot["tlp"] = tlp
    for slot in stress.values():
        slot["events_per_s"] = slot["events"] / slot["wall_s"]
    return pipeline, stress


def test_perf_sim_kernel(experiment, report):
    pipeline, stress = experiment(run_measurement)

    # All modes compute the same metric, bit for bit.
    legacy_tlp = pipeline["legacy"]["tlp"]
    for mode in ("columnar", "streaming"):
        assert pipeline[mode]["tlp"].tlp == legacy_tlp.tlp, mode
        assert pipeline[mode]["tlp"].fractions == legacy_tlp.fractions, mode
    assert stress["streaming"]["tlp"].tlp == stress["legacy"]["tlp"].tlp
    assert (stress["streaming"]["tlp"].fractions
            == stress["legacy"]["tlp"].fractions)

    pipe_speedup = (pipeline["streaming"]["events_per_s"]
                    / pipeline["legacy"]["events_per_s"])
    mem_ratio = (pipeline["legacy"]["peak_bytes"]
                 / max(pipeline["streaming"]["peak_bytes"], 1))
    stress_speedup = (stress["streaming"]["events_per_s"]
                      / stress["legacy"]["events_per_s"])

    payload = {
        "benchmark": "perf_sim_kernel",
        "quick": QUICK,
        "n_events": N_EVENTS,
        "stress_duration_s": STRESS_DURATION / SECOND,
        "trace_pipeline": {
            mode: {
                "wall_s": round(r["wall_s"], 3),
                "events_per_s": round(r["events_per_s"]),
                "peak_mib": round(r["peak_bytes"] / 2**20, 2),
            }
            for mode, r in pipeline.items()
        },
        "scheduler_stress": {
            mode: {
                "wall_s": round(r["wall_s"], 3),
                "events": r["events"],
                "events_per_s": round(r["events_per_s"]),
            }
            for mode, r in stress.items()
        },
        "streaming_vs_legacy_pipeline_speedup": round(pipe_speedup, 2),
        "streaming_vs_legacy_peak_memory_ratio": round(mem_ratio, 1),
        "streaming_vs_legacy_stress_speedup": round(stress_speedup, 2),
        "bit_identical": True,
        "pre_pr_reference": PRE_PR_REFERENCE,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")

    lines = [
        "Perf — trace pipeline and sim-kernel fast paths",
        "",
        f"trace pipeline ({N_EVENTS:,} events -> TLP):",
    ]
    for mode, r in pipeline.items():
        lines.append(
            f"  {mode:9s}: {r['wall_s']:6.3f} s wall  "
            f"{r['events_per_s']:>9,.0f} ev/s  "
            f"peak {r['peak_bytes'] / 2**20:7.2f} MiB")
    lines += [
        f"  streaming vs legacy: {pipe_speedup:.2f}x events/s, "
        f"{mem_ratio:.0f}x less peak memory",
        "",
        f"scheduler stress ({STRESS_THREADS} threads, "
        f"{STRESS_DURATION // SECOND}s simulated):",
    ]
    for mode, r in stress.items():
        lines.append(
            f"  {mode:9s}: {r['wall_s']:6.3f} s wall  "
            f"{r['events_per_s']:>9,.0f} ev/s  ({r['events']:,} events)")
    lines += [
        f"  streaming vs legacy: {stress_speedup:.2f}x end-to-end",
        "results   : TLP bit-identical across all modes (asserted)",
        f"pre-PR    : {PRE_PR_REFERENCE['trace_pipeline_events_per_s']:,} "
        f"pipeline ev/s at {PRE_PR_REFERENCE['commit']} "
        "(measured via worktree on this container)",
    ]
    report("perf_sim_kernel", "\n".join(lines))

    if not QUICK:
        assert pipe_speedup >= 1.5, (
            f"expected >= 1.5x trace-pipeline throughput streaming vs "
            f"legacy, got {pipe_speedup:.2f}x")
        assert mem_ratio >= 10, (
            f"expected >= 10x peak-memory reduction, got {mem_ratio:.1f}x")
