"""Perf — sweep-service read path: requests/s, p50/p99, cold vs warm.

Starts a real daemon on an ephemeral port, computes one small sweep,
then load-tests ``GET /sweeps/{id}/result`` over a keep-alive
connection two ways: *cold-cache* reads (full 200 bodies — the client
holds nothing) and *warm-cache* reads (``If-None-Match`` revalidations
answered 304 — the client holds the content-addressed payload).  A
resubmission of the same sweep through a fresh service over the same
result cache proves repeat traffic never re-simulates (zero executor
calls).  Numbers land in ``BENCH_service.json``; the p99 gate is a
generous ceiling that catches a pathological read path, not a tight
SLO.

``REPRO_BENCH_QUICK=1`` shrinks the request counts for smoke CI.
"""

import http.client
import json
import os
import pathlib
import tempfile
import threading
import time

from repro.service import ServiceServer, SweepService
from repro.service.http import HttpRequest

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_READS = 200 if QUICK else 1500
#: Generous p99 ceiling (seconds) — the read path serves precomputed
#: bytes, so anything near this is a regression, not noise.
MAX_P99_S = 0.5

SWEEP = {"apps": ["excel", "vlc"], "duration_s": 0.4, "iterations": 1}

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_service.json"


def percentile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def read_loop(port, path, n, headers=None, expect=200):
    """``n`` sequential reads over one keep-alive connection."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    latencies = []
    try:
        for _ in range(n):
            start = time.perf_counter()
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            response.read()
            latencies.append(time.perf_counter() - start)
            assert response.status == expect, response.status
    finally:
        conn.close()
    return latencies


def phase_stats(latencies):
    wall = sum(latencies)
    return {
        "requests": len(latencies),
        "requests_per_s": round(len(latencies) / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
    }


def submit_and_wait(service):
    """Submit ``SWEEP`` in-process and block until the job is done."""
    request = HttpRequest(
        method="POST", target="/sweeps", path="/sweeps", query={},
        headers={}, body=json.dumps(SWEEP).encode("utf-8"))
    response = service.dispatch(request)
    assert response.status in (200, 202), response.status
    job = service.store.find(json.loads(response.body)["id"])
    assert job is not None and job.wait_done(300)
    return job


def run_measurement():
    cache_dir = tempfile.mkdtemp(prefix="bench-service-cache-")

    service = SweepService(cache=cache_dir)
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_ready(15)
    try:
        job = submit_and_wait(service)
        path = f"/sweeps/{job.id}/result"
        read_loop(server.port, path, 25)    # warm-up, discarded
        cold = read_loop(server.port, path, N_READS)
        warm = read_loop(server.port, path, N_READS,
                         headers={"If-None-Match": job.etag()},
                         expect=304)
        body_bytes = len(job.result_bytes)
    finally:
        server.request_stop()
        thread.join(timeout=30)
        service.close()

    # Repeat traffic never re-simulates: a fresh daemon over the same
    # result cache resolves the same sweep with zero simulator calls.
    resubmitted = SweepService(cache=cache_dir)
    try:
        job = submit_and_wait(resubmitted)
        resubmit_executed = job.executor.executed
    finally:
        resubmitted.close()
    return cold, warm, body_bytes, resubmit_executed


def test_perf_service(experiment, report):
    cold, warm, body_bytes, resubmit_executed = experiment(run_measurement)

    assert resubmit_executed == 0

    payload = {
        "benchmark": "perf_service",
        "sweep": SWEEP,
        "result_bytes": body_bytes,
        "cold_full_body": phase_stats(cold),
        "warm_conditional_304": phase_stats(warm),
        "resubmit_executed": resubmit_executed,
        "quick": QUICK,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")

    c, w = payload["cold_full_body"], payload["warm_conditional_304"]
    lines = [
        "Perf — sweep-service read path (cold vs warm cache)",
        "",
        f"result body : {body_bytes} bytes "
        f"({len(SWEEP['apps'])} apps, content-addressed)",
        f"cold (200)  : {c['requests_per_s']:8.1f} req/s   "
        f"p50 {c['p50_ms']:7.3f} ms   p99 {c['p99_ms']:7.3f} ms",
        f"warm (304)  : {w['requests_per_s']:8.1f} req/s   "
        f"p50 {w['p50_ms']:7.3f} ms   p99 {w['p99_ms']:7.3f} ms",
        "resubmit    : 0 simulations (dedup via shared result cache)",
    ]
    report("perf_service", "\n".join(lines))

    for phase in (c, w):
        assert phase["p99_ms"] / 1e3 < MAX_P99_S, (
            f"read-path p99 {phase['p99_ms']} ms exceeds the "
            f"{MAX_P99_S * 1e3:.0f} ms ceiling")
