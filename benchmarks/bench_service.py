"""Perf — sweep-service read path: requests/s, p50/p99, cold vs warm,
plus the PR-10 robustness dimensions: crash-recovery time and behavior
at queue saturation.

Starts a real daemon on an ephemeral port, computes one small sweep,
then load-tests ``GET /sweeps/{id}/result`` over a keep-alive
connection two ways: *cold-cache* reads (full 200 bodies — the client
holds nothing) and *warm-cache* reads (``If-None-Match`` revalidations
answered 304 — the client holds the content-addressed payload).  A
resubmission of the same sweep through a fresh service over the same
result cache proves repeat traffic never re-simulates (zero executor
calls).

Two robustness measurements ride along: *recovery* times a restart
over a completed write-ahead ledger until the replayed job is done
again (all cache hits, zero re-simulation), and *saturation* wedges a
one-worker/one-slot dispatcher pool, then measures both the 429
rejection latency and — the acceptance gate — warm 304 reads staying
under the p99 ceiling while the queue is full.  Numbers land in
``BENCH_service.json``; the p99 gate is a generous ceiling that
catches a pathological read path, not a tight SLO.

``REPRO_BENCH_QUICK=1`` shrinks the request counts for smoke CI.
"""

import http.client
import json
import os
import pathlib
import tempfile
import threading
import time

from repro.service import ServiceServer, SweepService
from repro.service.http import HttpRequest

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_READS = 200 if QUICK else 1500
N_REJECTS = 100 if QUICK else 500
#: Generous p99 ceiling (seconds) — the read path serves precomputed
#: bytes, so anything near this is a regression, not noise.
MAX_P99_S = 0.5

SWEEP = {"apps": ["excel", "vlc"], "duration_s": 0.4, "iterations": 1}

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_service.json"


def percentile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def read_loop(port, path, n, headers=None, expect=200):
    """``n`` sequential reads over one keep-alive connection."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    latencies = []
    try:
        for _ in range(n):
            start = time.perf_counter()
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            response.read()
            latencies.append(time.perf_counter() - start)
            assert response.status == expect, response.status
    finally:
        conn.close()
    return latencies


def phase_stats(latencies):
    wall = sum(latencies)
    return {
        "requests": len(latencies),
        "requests_per_s": round(len(latencies) / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
    }


def post(service, body):
    """One in-process sweep submission; returns the HttpResponse."""
    return service.dispatch(HttpRequest(
        method="POST", target="/sweeps", path="/sweeps", query={},
        headers={}, body=json.dumps(body).encode("utf-8")))


def submit_and_wait(service, sweep=SWEEP):
    """Submit ``sweep`` in-process and block until the job is done."""
    response = post(service, sweep)
    assert response.status in (200, 202), response.status
    job = service.store.find(json.loads(response.body)["id"])
    assert job is not None and job.wait_done(300)
    return job


def reject_loop(port, n, body):
    """``n`` sequential 429'd submissions over one keep-alive
    connection; asserts every rejection carries ``Retry-After``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    payload = json.dumps(body).encode("utf-8")
    latencies = []
    try:
        for _ in range(n):
            start = time.perf_counter()
            conn.request("POST", "/sweeps", body=payload)
            response = conn.getresponse()
            response.read()
            latencies.append(time.perf_counter() - start)
            assert response.status == 429, response.status
            assert response.getheader("Retry-After") is not None
    finally:
        conn.close()
    return latencies


def run_measurement():
    cache_dir = tempfile.mkdtemp(prefix="bench-service-cache-")

    service = SweepService(cache=cache_dir)
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_ready(15)
    try:
        job = submit_and_wait(service)
        path = f"/sweeps/{job.id}/result"
        read_loop(server.port, path, 25)    # warm-up, discarded
        cold = read_loop(server.port, path, N_READS)
        warm = read_loop(server.port, path, N_READS,
                         headers={"If-None-Match": job.etag()},
                         expect=304)
        body_bytes = len(job.result_bytes)
    finally:
        server.request_stop()
        thread.join(timeout=30)
        service.close()

    # Repeat traffic never re-simulates: a fresh daemon over the same
    # result cache resolves the same sweep with zero simulator calls.
    resubmitted = SweepService(cache=cache_dir)
    try:
        job = submit_and_wait(resubmitted)
        resubmit_executed = job.executor.executed
    finally:
        resubmitted.close()
    return cold, warm, body_bytes, resubmit_executed


def run_recovery_measurement():
    """Complete a sweep over a write-ahead ledger, then time a full
    restart-and-replay until the recovered job is done again."""
    tmp = tempfile.mkdtemp(prefix="bench-service-recovery-")
    ledger = os.path.join(tmp, "jobs.jsonl")
    cache = os.path.join(tmp, "cache")
    service = SweepService(ledger=ledger, cache=cache)
    try:
        grid_points = len(submit_and_wait(service).specs)
    finally:
        service.close()

    start = time.perf_counter()
    recovered = SweepService(ledger=ledger, cache=cache)
    try:
        (job,) = recovered.store.all()
        assert job.wait_done(300) and job.state == "done"
        recovery_s = time.perf_counter() - start
        assert job.executed == 0        # replay is all cache hits
        return {
            "recovery_ms": round(recovery_s * 1e3, 1),
            "grid_points": grid_points,
            "resimulated": job.executed,
            "cache_hits": job.cache_hits,
        }
    finally:
        recovered.close()


def run_saturation_measurement():
    """Wedge a one-worker/one-slot pool, then measure 429 rejections
    and warm 304 reads while the queue is at capacity."""
    cache_dir = tempfile.mkdtemp(prefix="bench-service-saturated-")
    service = SweepService(cache=cache_dir, job_workers=1, max_queue=1)
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_ready(15)
    release = threading.Event()
    blocked = threading.Event()
    try:
        # A completed job first, so the read path has warm bytes.
        done_job = submit_and_wait(service)

        def chaos(job, worker):
            blocked.set()
            release.wait(300)

        service.runner.chaos = chaos
        assert post(service, dict(SWEEP, duration_s=0.41)).status == 202
        assert blocked.wait(30)         # worker occupied
        assert post(service, dict(SWEEP, duration_s=0.42)).status == 202

        rejected = reject_loop(server.port, N_REJECTS,
                               dict(SWEEP, duration_s=0.43))
        warm = read_loop(server.port, f"/sweeps/{done_job.id}/result",
                         N_READS, headers={"If-None-Match":
                                           done_job.etag()}, expect=304)
        return rejected, warm
    finally:
        release.set()
        server.request_stop()
        thread.join(timeout=30)
        service.close()


def test_perf_service(experiment, report):
    def run_all():
        cold, warm, body_bytes, resubmit_executed = run_measurement()
        recovery = run_recovery_measurement()
        rejected, saturated_warm = run_saturation_measurement()
        return (cold, warm, body_bytes, resubmit_executed, recovery,
                rejected, saturated_warm)

    (cold, warm, body_bytes, resubmit_executed, recovery, rejected,
     saturated_warm) = experiment(run_all)

    assert resubmit_executed == 0

    payload = {
        "benchmark": "perf_service",
        "sweep": SWEEP,
        "result_bytes": body_bytes,
        "cold_full_body": phase_stats(cold),
        "warm_conditional_304": phase_stats(warm),
        "resubmit_executed": resubmit_executed,
        "recovery": recovery,
        "saturated_rejects_429": phase_stats(rejected),
        "saturated_warm_304": phase_stats(saturated_warm),
        "quick": QUICK,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")

    c, w = payload["cold_full_body"], payload["warm_conditional_304"]
    r, sw = payload["saturated_rejects_429"], payload["saturated_warm_304"]
    lines = [
        "Perf — sweep-service read path (cold/warm, recovery, "
        "saturation)",
        "",
        f"result body : {body_bytes} bytes "
        f"({len(SWEEP['apps'])} apps, content-addressed)",
        f"cold (200)  : {c['requests_per_s']:8.1f} req/s   "
        f"p50 {c['p50_ms']:7.3f} ms   p99 {c['p99_ms']:7.3f} ms",
        f"warm (304)  : {w['requests_per_s']:8.1f} req/s   "
        f"p50 {w['p50_ms']:7.3f} ms   p99 {w['p99_ms']:7.3f} ms",
        "resubmit    : 0 simulations (dedup via shared result cache)",
        f"recovery    : {recovery['recovery_ms']:8.1f} ms to replay "
        f"{recovery['grid_points']} grid points "
        f"({recovery['resimulated']} re-simulated, "
        f"{recovery['cache_hits']} cache hits)",
        f"full queue  : {r['requests_per_s']:8.1f} rej/s   "
        f"p50 {r['p50_ms']:7.3f} ms   p99 {r['p99_ms']:7.3f} ms "
        f"(429 + Retry-After)",
        f"sat. warm   : {sw['requests_per_s']:8.1f} req/s   "
        f"p50 {sw['p50_ms']:7.3f} ms   p99 {sw['p99_ms']:7.3f} ms "
        f"(304s while saturated)",
    ]
    report("perf_service", "\n".join(lines))

    # The acceptance gate: reads — including under a saturated queue —
    # and rejections all stay under the p99 ceiling.
    for phase in (c, w, r, sw):
        assert phase["p99_ms"] / 1e3 < MAX_P99_S, (
            f"read-path p99 {phase['p99_ms']} ms exceeds the "
            f"{MAX_P99_S * 1e3:.0f} ms ceiling")
