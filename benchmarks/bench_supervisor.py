"""Perf — supervision overhead on the 150-run golden grid.

Runs the full 30-app x 5-golden-config grid (1 s simulated per run)
through the plain serial executor and through the supervised executor
in the same serial mode, asserts the supervised results are
bit-identical, and holds the supervision overhead under 3% — the
watchdog, retry bookkeeping and quarantine plumbing must be free when
nothing fails.  Numbers land in ``BENCH_supervisor.json``.

``REPRO_BENCH_QUICK=1`` shrinks the grid and skips the overhead
assertion (quick CI machines are too noisy for a 3% bound).
"""

import json
import os
import pathlib
import time

from repro.apps import SUITE
from repro.harness.executor import SerialExecutor
from repro.harness.supervisor import SupervisedExecutor
from repro.validate import GOLDEN_CONFIGS, fingerprint_run, golden_spec

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
APPS = SUITE[:4] if QUICK else SUITE
PASSES = 1 if QUICK else 3
MAX_OVERHEAD = 0.03

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_supervisor.json"


def grid():
    return [golden_spec(app, cores, smt)
            for app in APPS for cores, smt in GOLDEN_CONFIGS]


def timed_pass(make_executor):
    specs = grid()
    executor = make_executor()
    t0 = time.perf_counter()
    results = executor.map(specs)
    return time.perf_counter() - t0, results


def run_measurement():
    """Interleaved best-of-``PASSES`` timing of both executors.

    A warm-up pass absorbs one-time import and allocator effects, and
    interleaving plain/supervised passes keeps slow machine-level
    drift (CPU frequency, noisy neighbours) from being attributed to
    whichever executor happened to run last.
    """
    def make_supervised():
        return SupervisedExecutor(retries=2, backoff_s=0.0)

    timed_pass(SerialExecutor)      # warm-up, discarded
    t_plain = t_supervised = None
    plain = supervised = None
    for _ in range(PASSES):
        elapsed, plain = timed_pass(SerialExecutor)
        t_plain = elapsed if t_plain is None else min(t_plain, elapsed)
        elapsed, supervised = timed_pass(make_supervised)
        t_supervised = (elapsed if t_supervised is None
                        else min(t_supervised, elapsed))
    return t_plain, plain, t_supervised, supervised


def test_perf_supervisor(experiment, report):
    t_plain, plain, t_supervised, supervised = experiment(run_measurement)

    assert [fingerprint_run(run) for run in supervised] == \
        [fingerprint_run(run) for run in plain]

    n_runs = len(APPS) * len(GOLDEN_CONFIGS)
    overhead = t_supervised / t_plain - 1.0 if t_plain > 0 else 0.0
    payload = {
        "benchmark": "perf_supervisor",
        "grid_runs": n_runs,
        "configs": len(GOLDEN_CONFIGS),
        "apps": len(APPS),
        "passes": PASSES,
        "wall_plain_s": round(t_plain, 3),
        "wall_supervised_s": round(t_supervised, 3),
        "overhead_pct": round(overhead * 100, 2),
        "bit_identical": True,
        "quick": QUICK,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")

    lines = [
        "Perf — supervised executor overhead (golden grid)",
        "",
        f"grid       : {len(APPS)} apps x {len(GOLDEN_CONFIGS)} configs "
        f"= {n_runs} runs (1s simulated each)",
        f"plain      : {t_plain:7.2f} s wall",
        f"supervised : {t_supervised:7.2f} s wall "
        f"(retries=2 armed, none needed)",
        f"overhead   : {overhead * 100:7.2f} %",
        "results    : bit-identical to plain serial (asserted)",
    ]
    report("perf_supervisor", "\n".join(lines))

    if not QUICK:
        assert overhead < MAX_OVERHEAD, (
            f"supervision overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_OVERHEAD * 100:.0f}% on the {n_runs}-run grid")
