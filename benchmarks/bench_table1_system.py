"""Table I — specification of the benchmarking system."""

from repro.hardware import paper_machine
from repro.reporting import render_table1


def test_table1_system_spec(experiment, report):
    text = experiment(lambda: render_table1(paper_machine()))
    report("table1_system", text)
    machine = paper_machine()
    assert machine.cpu.logical_cpus == 12
    assert machine.gpu.cuda_cores == 3584
    assert "i7-8700K" in text
