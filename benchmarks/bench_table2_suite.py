"""Table II — TLP and GPU utilization for the full 30-application suite.

The headline experiment: every application, three seeded iterations,
12 logical CPUs with SMT, GTX 1080 Ti.  Asserts the paper's summary
claims: overall average TLP ~3.1, exactly 6 of 30 applications above
TLP 4, low iteration sigmas, GPU below 10% for most applications but
above 90% for mining.
"""

import pytest

from repro.data import PAPER_CATEGORY_AVERAGES, PAPER_TABLE2
from repro.harness import run_suite
from repro.reporting import render_table2
from repro.sim import SECOND

DURATION = 40 * SECOND


def test_table2_full_suite(experiment, report):
    suite = experiment(lambda: run_suite(duration_us=DURATION, iterations=3))
    report("table2_suite", render_table2(suite))

    # Abstract: "The average TLP across the applications we study is
    # 3.1" and "6 out of 30 applications have an average TLP higher
    # than 4".
    assert suite.overall_average_tlp() == pytest.approx(3.1, abs=0.4)
    assert len(suite.apps_with_tlp_above(4.0)) == 6

    # Per-application agreement with Table II.
    for name, result in suite.results.items():
        paper_tlp, paper_gpu = PAPER_TABLE2[name]
        assert result.tlp.mean == pytest.approx(
            paper_tlp, abs=max(0.5, paper_tlp * 0.18)), name
        assert result.gpu_util.mean == pytest.approx(
            paper_gpu, abs=max(2.0, paper_gpu * 0.25)), name
        # "Based on the low standard deviations, we conclude that our
        # experimental results are consistent."
        assert result.tlp.std < 0.35, name

    # Category-average agreement (within a generous band).
    for category, (tlp, gpu) in suite.category_averages().items():
        paper_tlp, paper_gpu = PAPER_CATEGORY_AVERAGES[category.value]
        assert tlp == pytest.approx(paper_tlp, abs=max(0.6, paper_tlp * 0.2))
        assert gpu == pytest.approx(paper_gpu, abs=max(3.0, paper_gpu * 0.3))

    # "most applications attaining the maximum instantaneous TLP of
    # 12 during execution" (abstract).
    reaching = suite.apps_reaching_max_tlp(12)
    assert len(reaching) >= 24

    # GPU story: under-provisioned for most, saturated for miners.
    below_10 = [n for n, r in suite.results.items() if r.gpu_util.mean < 10]
    assert len(below_10) >= 15
    for miner in ("bitcoin-miner", "easyminer", "phoenixminer", "wineth"):
        assert suite.results[miner].gpu_util.mean > 90
    assert suite.results["phoenixminer"].gpu_capped  # the "*100.0" row
