"""Table III — WinX with and without CUDA/NVENC at 4/8/12 logical CPUs.

Paper: enabling the GPU raises the transcode rate by ~1.4x on average,
lowers TLP by up to 22%, and shows utilization growing almost linearly
with TLP (5.2 / 10.0 / 13.9%).
"""

import pytest

from repro.apps.transcoding import WinXVideoConverter
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.reporting import render_table3
from repro.sim import SECOND

DURATION = 40 * SECOND


def run_table3():
    rows = {}
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        cpu = run_app_once(WinXVideoConverter(use_gpu=False),
                           machine=machine, duration_us=DURATION, seed=3)
        gpu = run_app_once(WinXVideoConverter(use_gpu=True),
                           machine=machine, duration_us=DURATION, seed=3)
        seconds = DURATION / SECOND
        rows[cores] = {
            "rate_cpu": cpu.outputs["frames"] / seconds,
            "rate_gpu": gpu.outputs["frames"] / seconds,
            "tlp_cpu": cpu.tlp.tlp,
            "tlp_gpu": gpu.tlp.tlp,
            "util_cpu": cpu.gpu_util.utilization_pct,
            "util_gpu": gpu.gpu_util.utilization_pct,
        }
    return rows


def test_table3_winx_gpu_offload(experiment, report):
    rows = experiment(run_table3)
    report("table3_winx", render_table3(rows))

    for cores, row in rows.items():
        # GPU path is faster at every core count...
        assert row["rate_gpu"] > row["rate_cpu"] * 1.2, cores
        # ...while TLP decreases (by up to ~22% at 12 cores)...
        assert row["tlp_gpu"] < row["tlp_cpu"], cores
        # ...and the CPU-only path never touches the GPU.
        assert row["util_cpu"] == 0.0

    # TLP drop at 12 logical CPUs is the paper's largest (~22%).
    drop = 1.0 - rows[12]["tlp_gpu"] / rows[12]["tlp_cpu"]
    assert 0.08 < drop < 0.30

    # GPU utilization grows almost linearly with TLP (5.2/10.0/13.9).
    utils = [rows[c]["util_gpu"] for c in (4, 8, 12)]
    assert utils[0] < utils[1] < utils[2]
    assert utils[1] / utils[0] == pytest.approx(2.0, abs=0.5)

    # Average rate improvement ~1.43x.
    improvement = sum(rows[c]["rate_gpu"] / rows[c]["rate_cpu"]
                      for c in (4, 8, 12)) / 3
    assert improvement == pytest.approx(1.43, abs=0.25)
