"""Shared fixtures for the table/figure regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment under ``benchmark.pedantic`` (one round — these are
experiments, not micro-benchmarks), prints the rendered rows/series,
writes them to ``benchmarks/reports/<name>.txt`` and asserts the
qualitative shape the paper reports.
"""

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture
def report():
    """Returns ``emit(name, text)``: print + persist a rendered report."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def emit(name, text):
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        _update_index()
        print()
        print(text)
        return path

    return emit


def _first_line(path):
    """Read only the title line — index regeneration runs per emit,
    so slurping whole multi-kilobyte reports here is O(n²) churn."""
    with path.open("r", encoding="utf-8") as fh:
        return fh.readline().rstrip("\n")


def _update_index():
    """Regenerate reports/INDEX.md from the files present."""
    lines = ["# Benchmark reports", "",
             "One file per regenerated table/figure/ablation:", ""]
    for path in sorted(REPORTS_DIR.glob("*.txt")):
        lines.append(f"* `{path.name}` — {_first_line(path)}")
    (REPORTS_DIR / "INDEX.md").write_text("\n".join(lines) + "\n",
                                          encoding="utf-8")


@pytest.fixture
def experiment(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run
