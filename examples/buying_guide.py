#!/usr/bin/env python
"""Hardware buying guide — the paper's §VII takeaway, as an experiment.

"TLP and GPU utilization can act as useful guidelines for end-users on
the amount of hardware resources to invest."  This example runs three
user personas over machine configurations and reports which hardware
actually pays off:

* an *office/web* user (Excel, Word, Chrome) across 2/4/6 cores,
* a *professional* (HandBrake, Photoshop) across core counts,
* a *gamer/miner* (Project CARS 2, WinEth) across GPU tiers.
"""

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 30 * SECOND


def office_user():
    print("Persona 1: office/web user (Excel, Word, Chrome)")
    rows = []
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        tlps = []
        for app in ("excel", "word", "chrome"):
            run = run_app_once(create_app(app), machine=machine,
                               duration_us=DURATION, seed=1)
            tlps.append(run.tlp.tlp)
        rows.append((f"{cores} logical CPUs",
                     *(f"{tlp:4.2f}" for tlp in tlps)))
    print(format_table(("Machine", "Excel", "Word", "Chrome"), rows))
    print("-> TLP is pinned near 2 regardless of core count: the paper's")
    print("   advice that 2-3 cores are sufficient for this persona.\n")


def professional_user():
    print("Persona 2: content professional (HandBrake, Photoshop)")
    rows = []
    for cores in (4, 8, 12):
        machine = paper_machine().with_logical_cpus(cores)
        hb = run_app_once(create_app("handbrake"), machine=machine,
                          duration_us=DURATION, seed=1)
        ps = run_app_once(create_app("photoshop"), machine=machine,
                          duration_us=DURATION, seed=1)
        rate = hb.outputs["frames"] / (DURATION / SECOND)
        rows.append((f"{cores} logical CPUs", f"{rate:5.1f} fps",
                     f"{hb.tlp.tlp:5.2f}", f"{ps.tlp.tlp:5.2f}"))
    print(format_table(
        ("Machine", "HandBrake rate", "HandBrake TLP", "Photoshop TLP"),
        rows))
    print("-> Transcode rate scales roughly linearly with cores: this")
    print("   persona should buy the big CPU.\n")


def gamer_miner():
    print("Persona 3: gamer / miner (Project CARS 2 VR, Ethereum)")
    rows = []
    for gpu in (GTX_680, GTX_1080_TI):
        machine = paper_machine().with_gpu(gpu)
        miner = run_app_once(create_app("wineth"), machine=machine,
                             duration_us=DURATION, seed=1)
        row = [gpu.name,
               f"{miner.outputs['hash_rate'] / 1e6:5.1f} MH/s",
               f"{miner.gpu_util.utilization_pct:5.1f}%"]
        if gpu.vr_capable:
            game = run_app_once(create_app("project-cars-2"),
                                machine=machine, duration_us=DURATION,
                                seed=1)
            fps = game.outputs["real_frames"] / (DURATION / SECOND)
            row.append(f"{fps:4.1f} fps")
        else:
            row.append("below VR floor")
        rows.append(tuple(row))
    print(format_table(("GPU", "Hash rate", "Miner util", "VR frame rate"),
                       rows))
    print("-> A better GPU multiplies mining and enables VR at all —")
    print("   for this persona the GPU, not the CPU, is the investment.")


if __name__ == "__main__":
    office_user()
    professional_user()
    gamer_miner()
