#!/usr/bin/env python
"""Build and measure your own application model.

The 30 paper applications are all built from the same public pieces:
an ``AppModel`` that spawns processes/threads into an ``AppRuntime``.
This example models a hypothetical "photo library" application — an
import phase (parallel thumbnailing), an ML-tagging phase offloaded to
the GPU, and an interactive browsing phase — then measures it with the
paper's methodology and prints its would-be Table II row.
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import compute, duty_cycle_thread, fan_out, ui_pump
from repro.automation import InputScript
from repro.gpu.device import ENGINE_COMPUTE
from repro.harness import run_app
from repro.os.work import WorkClass
from repro.reporting import heat_row
from repro.sim import MS, SECOND


class PhotoLibrary(AppModel):
    """A photo manager: import, ML tagging, interactive browsing."""

    name = "photo-library"
    display_name = "Photo Library 1.0"
    version = "1.0"
    category = Category.IMAGE_AUTHORING

    def build(self, rt):
        process = rt.spawn_process("PhotoLibrary.exe")
        rng = rt.fork_rng()

        script = (InputScript()
                  .wait(1 * SECOND).click("import-folder")
                  .wait(12 * SECOND).click("tag-photos")
                  .wait(10 * SECOND))
        for index in range(20):
            script.wait(900 * MS).click(f"browse-{index}")
        script = script.stretched_to(int(rt.duration_us * 0.95))
        rt.outputs["photos_tagged"] = 0

        def handle(ctx, action):
            if action.label == "import-folder":
                # Thumbnail 400 photos across every core.
                done = fan_out(rt, process, 8 * SECOND,
                               rt.machine.logical_cpus,
                               WorkClass.MEMORY_BOUND, name="thumbnail")
                yield ctx.wait(done)
            elif action.label == "tag-photos":
                # ML inference batches on the GPU, CPU pre/post.
                for _ in range(60):
                    yield ctx.cpu(int(14 * MS), WorkClass.BALANCED)
                    done = rt.gpu.submit(process, ENGINE_COMPUTE,
                                         "inference",
                                         int(45 * MS * rng.uniform(0.9, 1.1)))
                    yield ctx.wait(done)
                    rt.outputs["photos_tagged"] += 8
            else:
                # Browsing: decode + render the next photo.
                yield from compute(ctx, int(60 * MS), WorkClass.UI)

        ui_pump(rt, process, script, handle)
        duty_cycle_thread(rt, process, 0.04, name="library-indexer")


def main():
    app = PhotoLibrary()
    print(f"Measuring {app.display_name} with the paper's protocol...")
    result = run_app(app, duration_us=60 * SECOND, iterations=3)
    print(f"\n  TLP             : {result.tlp}")
    print(f"  GPU utilization : {result.gpu_util}")
    print(f"  Max instant TLP : {result.max_instantaneous}")
    print(f"  Heat map        : |{heat_row(result.fractions)}|")
    print(f"  Photos tagged   : {result.outputs['photos_tagged']}")
    print("\nInterpretation: import parallelizes like Photoshop's filters,")
    print("tagging shows the WinX-style GPU-offload signature, and")
    print("browsing is the classic low-TLP interactive tail.")


if __name__ == "__main__":
    main()
