#!/usr/bin/env python
"""The 18-year perspective, simulated end to end.

Runs the 2010-era application lineages on Blake et al.'s machine
(8C/16T Xeon, GTX 285) and their 2018 successors on the paper's
machine (i7-8700K, GTX 1080 Ti), then prints the Fig. 2/3-style
comparison — both columns measured live rather than digitized.
"""

from repro.apps import create_app
from repro.apps.era2010 import ERA2010_REGISTRY
from repro.harness import run_app_once
from repro.hardware import machine_2010, paper_machine
from repro.reporting import format_table
from repro.sim import SECOND

DURATION = 40 * SECOND

#: (lineage label, 2010 era key, 2018 registry key)
LINEAGES = (
    ("Photoshop", "photoshop-cs4", "photoshop"),
    ("Maya 3D", "maya-2010", "maya"),
    ("Acrobat/Reader", "acrobat-9", "acrobat"),
    ("PowerPoint", "powerpoint-2007", "powerpoint"),
    ("Word", "word-2007", "word"),
    ("Excel", "excel-2007", "excel"),
    ("QuickTime", "quicktime-76", "quicktime"),
    ("Media Player", "wmp-2010", "wmp"),
    ("PowerDirector", "powerdirector-v7", "powerdirector"),
    ("HandBrake", "handbrake-09", "handbrake"),
    ("Firefox", "firefox-35", "firefox"),
)


def main():
    old_machine = machine_2010()
    new_machine = paper_machine()
    print(f"2010 testbed: {old_machine.cpu.name}, {old_machine.gpu.name}")
    print(f"2018 testbed: {new_machine.cpu.name}, {new_machine.gpu.name}")
    print(f"Simulating {len(LINEAGES)} lineages x 2 eras "
          f"({DURATION // SECOND}s each)...\n")

    rows = []
    for label, old_key, new_key in LINEAGES:
        old = run_app_once(ERA2010_REGISTRY[old_key](),
                           machine=old_machine, duration_us=DURATION,
                           seed=3)
        new = run_app_once(create_app(new_key), machine=new_machine,
                           duration_us=DURATION, seed=3)
        rows.append((
            label,
            f"{old.tlp.tlp:5.2f}", f"{new.tlp.tlp:5.2f}",
            f"{new.tlp.tlp - old.tlp.tlp:+5.2f}",
            f"{old.gpu_util.utilization_pct:6.1f}",
            f"{new.gpu_util.utilization_pct:6.1f}",
        ))
    print(format_table(
        ("Lineage", "TLP 2010", "TLP 2018", "Δ", "GPU% 2010", "GPU% 2018"),
        rows, title="The 18-year perspective (both eras simulated)"))
    print()
    print("Reading: parallel workloads (HandBrake, Photoshop) moved far")
    print("up; office stayed flat; *every* legacy lineage shows lower GPU")
    print("utilization in 2018 — the GPU grew faster than the software's")
    print("appetite, exactly the paper's Fig. 3 story.")


if __name__ == "__main__":
    main()
