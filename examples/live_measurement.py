#!/usr/bin/env python
"""Measure the TLP of *real* processes with the paper's Equation 1.

The rest of this repository measures simulated workloads; this example
uses ``repro.live.LinuxTlpSampler`` to apply the same methodology to
actual Linux processes via ``/proc`` — the closest this environment
gets to the paper's ETW tracing of a live desktop.

It spawns a small synthetic workload (a few single-threaded spinner
processes with idle gaps, imitating an interactive app with parallel
bursts) and reports its measured TLP and concurrency histogram.

Usage::

    python examples/live_measurement.py [n_spinners] [seconds]
"""

import os
import subprocess
import sys
import time

from repro.live import LinuxTlpSampler
from repro.reporting import heat_row

_BURSTY_SPINNER = """
import sys, time
end = time.time() + float(sys.argv[1])
while time.time() < end:
    burst_end = time.time() + 0.05
    while time.time() < burst_end:
        pass              # busy: this thread samples as running
    time.sleep(0.03)      # idle: imitates waiting on I/O or the user
"""


def main():
    if not os.path.isdir("/proc/self/task"):
        raise SystemExit("this example requires Linux (/proc)")
    n_spinners = int(sys.argv[1]) if len(sys.argv) > 1 else min(
        3, os.cpu_count() or 1)
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    print(f"Spawning {n_spinners} bursty spinner process(es) "
          f"for {seconds:.1f}s on a {os.cpu_count()}-CPU machine...")
    workers = [
        subprocess.Popen([sys.executable, "-c", _BURSTY_SPINNER,
                          str(seconds + 1.0)])
        for _ in range(n_spinners)
    ]
    try:
        time.sleep(0.3)  # let them reach steady state
        sampler = LinuxTlpSampler([w.pid for w in workers],
                                  include_children=False)
        sampler.run(seconds, interval_s=0.005)
        result = sampler.result()
    finally:
        for worker in workers:
            worker.kill()
            worker.wait()

    print(f"\n  samples          : {len(sampler.samples)}")
    print(f"  TLP (Eq. 1)      : {result.tlp:.2f}")
    print(f"  max instantaneous: {result.max_instantaneous}")
    print(f"  idle fraction    : {result.idle_fraction:.2f}")
    print(f"  heat map c0..cN  : |{heat_row(result.fractions)}|")
    print("\nEach spinner is ~60% busy; with more CPUs than spinners the")
    print("expected TLP is near the spinner count (idle factored out).")


if __name__ == "__main__":
    main()
