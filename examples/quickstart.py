#!/usr/bin/env python
"""Quickstart: measure one application's TLP and GPU utilization.

Runs HandBrake on the paper's machine (i7-8700K, 12 logical CPUs,
GTX 1080 Ti) for three seeded iterations — the exact protocol behind
one row of the paper's Table II — and prints the metrics next to the
paper-reported values.

Usage::

    python examples/quickstart.py [app-name]

``app-name`` is any of the 30 registry keys (default: handbrake).
Run ``python -c "from repro.apps import SUITE; print(SUITE)"`` to list
them all.
"""

import sys

from repro.apps import REGISTRY, create_app
from repro.harness import run_app
from repro.reporting import heat_row
from repro.sim import SECOND


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "handbrake"
    if name not in REGISTRY:
        raise SystemExit(f"unknown app {name!r}; choose from "
                         f"{', '.join(sorted(REGISTRY))}")
    app = create_app(name)
    print(f"Running {app.display_name} ({app.category.value}) "
          f"for 3 iterations of 60 simulated seconds...")
    result = run_app(app, duration_us=60 * SECOND, iterations=3)

    print()
    print(f"  TLP             : {result.tlp.mean:5.2f} ± {result.tlp.std:.2f}"
          f"   (paper Table II: {app.paper_tlp})")
    capped = " (*saturated: simultaneous packets)" if result.gpu_capped else ""
    print(f"  GPU utilization : {result.gpu_util.mean:5.2f}%"
          f" ± {result.gpu_util.std:.2f}{capped}"
          f"   (paper Table II: {app.paper_gpu_util}%)")
    print(f"  Max instant TLP : {result.max_instantaneous} of 12 logical CPUs")
    print(f"  Execution-time heat map (c0..c12): "
          f"|{heat_row(result.fractions)}|")
    print()
    print("  Concurrency breakdown (share of wall time):")
    for level, fraction in enumerate(result.fractions):
        if fraction > 0.005:
            print(f"    {level:2d} logical CPUs busy: {fraction:6.1%} "
                  f"{'#' * int(fraction * 50)}")
    if result.outputs:
        printable = {k: v for k, v in result.outputs.items()
                     if isinstance(v, (int, float, str, bool))}
        print(f"\n  Application outputs: {printable}")


if __name__ == "__main__":
    main()
