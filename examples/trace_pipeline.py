#!/usr/bin/env python
"""Drive the Fig. 1 measurement pipeline by hand, stage by stage.

Everything :func:`repro.harness.run_app` does, unrolled: boot the OS,
attach a trace session (ETW substitute), run a testbench, save the
trace (.etl substitute), extract the WPA tables, export CSVs
(wpaexporter substitute), and post-process them into TLP and GPU
utilization — including the paper's cross-validation of the GPU data.
"""

import tempfile
from pathlib import Path

from repro.apps import create_app
from repro.apps.base import AppRuntime
from repro.automation import InputDriver
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.metrics import cross_validate, measure_gpu_utilization, measure_tlp
from repro.os import Kernel
from repro.sim import SECOND, Environment
from repro.trace import (
    CpuUsagePreciseTable,
    EtlTrace,
    GpuUtilizationTable,
    TraceSession,
    export_csv,
    load_cpu_csv,
    load_gpu_csv,
)


def main():
    machine = paper_machine()
    env = Environment()
    session = TraceSession(env, machine_name=machine.cpu.name)
    kernel = Kernel(env, machine, session=session, seed=42)
    kernel.start_background_services()
    gpu = GpuDevice(env, machine.gpu, session)
    driver = InputDriver(kernel, seed=42)
    runtime = AppRuntime(kernel, gpu, driver, 30 * SECOND, seed=42)

    print("1. start trace (UIforETW)")
    session.start()

    print("2. start testbench: WinX HD Video Converter")
    create_app("winx").build(runtime)
    env.run(until=runtime.end_time)

    print("3. stop testbench, save trace (.etl)")
    trace = session.stop()
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    etl = workdir / "capture.etl.jsonl"
    trace.save(etl)
    print(f"   {len(trace.cswitches)} context switches, "
          f"{len(trace.gpu_packets)} GPU packets -> {etl}")

    print("4. extract WPA tables and export CSVs (wpaexporter)")
    loaded = EtlTrace.load(etl)
    cpu_table = CpuUsagePreciseTable.from_trace(loaded)
    gpu_table = GpuUtilizationTable.from_trace(loaded)
    cpu_csv, gpu_csv = workdir / "cpu.csv", workdir / "gpu.csv"
    export_csv(cpu_table, cpu_csv)
    export_csv(gpu_table, gpu_csv)
    print(f"   -> {cpu_csv}\n   -> {gpu_csv}")

    print("5. custom scripts: compute TLP and GPU utilization from CSV")
    apps = runtime.process_names
    tlp = measure_tlp(load_cpu_csv(cpu_csv), machine.logical_cpus,
                      processes=apps)
    util = measure_gpu_utilization(load_gpu_csv(gpu_csv), processes=apps)
    print(f"   application TLP      = {tlp.tlp:.2f} "
          f"(max instantaneous {tlp.max_instantaneous})")
    print(f"   GPU utilization      = {util.utilization_pct:.2f}%")

    print("6. cross-validate GPU data against device counters (§III-C)")
    delta = cross_validate(gpu_table, gpu)
    print(f"   |trace - device| = {delta:.3f} percentage points — OK")


if __name__ == "__main__":
    main()
