#!/usr/bin/env python
"""Compare VR headsets on one game — the paper's §V-F analysis, live.

Runs Project CARS 2 on Oculus Rift (ASW), HTC Vive and HTC Vive Pro
(asynchronous reprojection), on the full machine and on a 4-logical-
core configuration, printing frame-rate sparklines like Fig. 13.
"""

from repro.apps.vr_gaming import ProjectCars2
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import frame_rate_series
from repro.reporting import sparkline
from repro.sim import SECOND

DURATION = 30 * SECOND


def run_config(label, machine):
    print(f"== {label} ==")
    for headset in ("rift", "vive", "vive-pro"):
        result = run_app_once(ProjectCars2(headset=headset),
                              machine=machine, duration_us=DURATION,
                              seed=3)
        real = [f for f in result.frames if not f.reprojected]
        series = frame_rate_series(real, 0, DURATION)
        fps = result.outputs["real_frames"] / (DURATION / SECOND)
        asw = result.outputs.get("asw_engaged", 0)
        policy = "ASW" if headset == "rift" else "reprojection"
        print(f"  {headset:9s} ({policy:12s}) "
              f"TLP {result.tlp.tlp:4.2f}  "
              f"GPU {result.gpu_util.utilization_pct:5.1f}%  "
              f"{fps:5.1f} real FPS"
              + (f"  [ASW engaged x{asw}]" if asw else ""))
        print(f"            {sparkline(series.values)}")
    print()


def main():
    run_config("Full machine: 12 logical CPUs",
               paper_machine())
    run_config("Core-starved: 4 logical CPUs (the Fig. 7 clamp)",
               paper_machine().with_logical_cpus(4))
    print("Reading: the Rift's ASW trades resolution of motion for")
    print("*stability* — when the system can't hold 90 FPS it clamps to")
    print("a steady 45, while Vive-family reprojection oscillates.")


if __name__ == "__main__":
    main()
