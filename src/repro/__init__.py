"""repro — reproduction of "Parallelism Analysis of Prominent Desktop
Applications: An 18-Year Perspective" (Feng et al., ISPASS 2019).

The package simulates the paper's entire measurement stack — a 2018
desktop (CPU with SMT + discrete GPU), an ETW-like tracing facility,
behavioural models of the 30-application benchmark suite, and the
TLP / GPU-utilization metrics — so every table and figure of the
evaluation can be regenerated deterministically on any machine.

Typical entry point::

    from repro.harness import run_app
    result = run_app("handbrake")
    print(result.tlp.mean, result.gpu_util.mean)
"""

__version__ = "1.2.0"
