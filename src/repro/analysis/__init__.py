"""Post-measurement analyses: the paper's §VII suggestions, quantified."""

from repro.analysis.compare import (
    AppDelta,
    SuiteComparison,
    compare_suites,
    render_comparison,
)
from repro.analysis.coschedule import (
    CoscheduleReport,
    complementarity,
    coscheduling_gain,
    trough_headroom,
)

__all__ = [
    "AppDelta",
    "CoscheduleReport",
    "SuiteComparison",
    "compare_suites",
    "render_comparison",
    "complementarity",
    "coscheduling_gain",
    "trough_headroom",
]
