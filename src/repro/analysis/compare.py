"""Longitudinal comparison of stored suite results.

The paper is an 18-year perspective: the same lineages measured on
successive machines.  This module continues that practice for users of
the library — compare two stored suites (different machine configs,
different model versions, different years) app by app, the way Figs.
2-3 compare eras.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class AppDelta:
    """Per-application change between two suites."""

    app_name: str
    tlp_before: float
    tlp_after: float
    gpu_before: float
    gpu_after: float

    @property
    def tlp_delta(self):
        return self.tlp_after - self.tlp_before

    @property
    def gpu_delta(self):
        return self.gpu_after - self.gpu_before

    @property
    def tlp_ratio(self):
        if self.tlp_before == 0:
            raise ValueError("zero baseline TLP")
        return self.tlp_after / self.tlp_before


@dataclass
class SuiteComparison:
    """All per-app deltas plus the apps unique to either side."""

    deltas: list
    only_before: list
    only_after: list

    def delta(self, app_name):
        for entry in self.deltas:
            if entry.app_name == app_name:
                return entry
        raise KeyError(app_name)

    def improved(self, threshold=0.0):
        """Apps whose TLP rose by more than ``threshold``."""
        return [d.app_name for d in self.deltas if d.tlp_delta > threshold]

    def regressed(self, threshold=0.0):
        """Apps whose TLP fell by more than ``threshold``."""
        return [d.app_name for d in self.deltas if d.tlp_delta < -threshold]

    def mean_tlp_delta(self):
        if not self.deltas:
            raise ValueError("no common applications")
        return sum(d.tlp_delta for d in self.deltas) / len(self.deltas)


def compare_suites(before, after):
    """Compare two SuiteResult-like objects (live or loaded from JSON).

    Results only need ``.results`` mapping names to objects exposing
    ``tlp.mean`` and ``gpu_util.mean`` — both live ``AppResult`` and
    stored ``StoredAppResult`` qualify.
    """
    common = sorted(set(before.results) & set(after.results))
    deltas = [
        AppDelta(
            app_name=name,
            tlp_before=before.results[name].tlp.mean,
            tlp_after=after.results[name].tlp.mean,
            gpu_before=before.results[name].gpu_util.mean,
            gpu_after=after.results[name].gpu_util.mean,
        )
        for name in common
    ]
    return SuiteComparison(
        deltas=deltas,
        only_before=sorted(set(before.results) - set(after.results)),
        only_after=sorted(set(after.results) - set(before.results)),
    )


def render_comparison(comparison, title="Suite comparison"):
    """Text table of the comparison."""
    from repro.reporting import format_table

    rows = [
        (d.app_name,
         f"{d.tlp_before:5.2f}", f"{d.tlp_after:5.2f}",
         f"{d.tlp_delta:+5.2f}",
         f"{d.gpu_before:6.2f}", f"{d.gpu_after:6.2f}",
         f"{d.gpu_delta:+6.2f}")
        for d in comparison.deltas
    ]
    text = format_table(
        ("App", "TLP was", "TLP now", "ΔTLP", "GPU was", "GPU now", "ΔGPU"),
        rows, title=title)
    extras = []
    if comparison.only_before:
        extras.append("only in baseline: " + ", ".join(comparison.only_before))
    if comparison.only_after:
        extras.append("only in new run: " + ", ".join(comparison.only_after))
    return text + ("\n" + "\n".join(extras) if extras else "")
