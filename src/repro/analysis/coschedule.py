"""Complementary-TLP co-scheduling analysis (§VII, first suggestion).

"Applications exhibiting complementary TLP characteristics can be
scheduled to execute concurrently to achieve best utilization of the
processor.  For example, HandBrake exhibits high TLP with short
periods of TLP drop.  The OS could schedule another task during
troughs in TLP."

Two tools:

* :func:`complementarity` — an *offline* score from two instantaneous
  TLP series: how much of app B's demand fits into app A's headroom on
  an ``n``-wide machine.
* :func:`coscheduling_gain` — an *online* measurement: run the two
  applications together (shared kernel) and compare achieved combined
  utilization against the solo runs.
"""

from dataclasses import dataclass

from repro.harness.colocate import run_colocated
from repro.harness.runner import run_app_once
from repro.metrics import instantaneous_tlp


def complementarity(series_a, series_b, n_logical):
    """Fraction of B's CPU demand that fits into A's idle headroom.

    Both series must share the same window step.  Returns a value in
    [0, 1]: 1.0 means B could run entirely inside A's troughs.
    """
    if series_a.step_us != series_b.step_us:
        raise ValueError("series must share the same window step")
    windows = min(len(series_a.values), len(series_b.values))
    if windows == 0:
        raise ValueError("empty series")
    fits = 0.0
    demand = 0.0
    for index in range(windows):
        headroom = max(0.0, n_logical - series_a.values[index])
        want = series_b.values[index]
        demand += want
        fits += min(want, headroom)
    return fits / demand if demand else 1.0


@dataclass
class CoscheduleReport:
    """Solo-vs-together comparison for two applications."""

    app_a: str
    app_b: str
    solo_tlp_a: float
    solo_tlp_b: float
    together_tlp_a: float
    together_tlp_b: float
    combined_tlp: float
    #: Average busy logical CPUs over the *whole* window (idle counted),
    #: the utilization the §VII suggestion is about.
    solo_busy_a: float
    solo_busy_b: float
    together_busy: float

    @property
    def utilization_gain(self):
        """Combined busy-CPU average vs the best solo run."""
        return self.together_busy / max(self.solo_busy_a, self.solo_busy_b)

    @property
    def slowdown_a(self):
        """TLP retained by app A when co-scheduled (1.0 = no loss)."""
        return self.together_tlp_a / self.solo_tlp_a

    @property
    def slowdown_b(self):
        return self.together_tlp_b / self.solo_tlp_b


def _busy_average(tlp_result, n_logical):
    """Average number of busy logical CPUs over the full window."""
    return sum(level * fraction
               for level, fraction in enumerate(tlp_result.fractions))


def coscheduling_gain(app_factory_a, app_factory_b, machine=None,
                      duration_us=30_000_000, seed=0):
    """Measure co-scheduling two applications vs running them solo."""
    solo_a = run_app_once(app_factory_a(), machine=machine,
                          duration_us=duration_us, seed=seed)
    solo_b = run_app_once(app_factory_b(), machine=machine,
                          duration_us=duration_us, seed=seed)
    together = run_colocated([app_factory_a(), app_factory_b()],
                             machine=machine, duration_us=duration_us,
                             seed=seed)
    name_a, name_b = solo_a.app_name, solo_b.app_name
    n = len(solo_a.tlp.fractions) - 1
    return CoscheduleReport(
        app_a=name_a,
        app_b=name_b,
        solo_tlp_a=solo_a.tlp.tlp,
        solo_tlp_b=solo_b.tlp.tlp,
        together_tlp_a=together.per_app_tlp[name_a].tlp,
        together_tlp_b=together.per_app_tlp[name_b].tlp,
        combined_tlp=together.combined_tlp.tlp,
        solo_busy_a=_busy_average(solo_a.tlp, n),
        solo_busy_b=_busy_average(solo_b.tlp, n),
        together_busy=_busy_average(together.combined_tlp, n),
    )


def trough_headroom(cpu_table, n_logical, processes=None, step_us=250_000,
                    threshold_fraction=0.5):
    """Share of windows where the app leaves >50% of the machine idle.

    A direct quantification of "troughs in TLP" the OS could fill.
    """
    series = instantaneous_tlp(cpu_table, n_logical, processes=processes,
                               step_us=step_us)
    if not series.values:
        raise ValueError("empty trace")
    troughs = sum(1 for v in series.values
                  if v < n_logical * threshold_fraction)
    return troughs / len(series.values)
