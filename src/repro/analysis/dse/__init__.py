"""Design-space exploration: simulate-once, score-many campaign sweeps.

The paper's §V core-scaling question ("would these apps benefit from
more cores?") is answered here *prospectively*, over thousands of
generated machine configs, by partitioning the config axes by what
they can possibly change (:mod:`repro.analysis.dse.axes`):

* **trace-invariant** axes (energy coefficients, voltage, tech-node
  power scaling) are pure re-scoring — the schedule cannot see them;
* **trace-rescaling** axes (uniform frequency scaling) replay the
  identical schedule with a different tick length, so every metric is
  an analytic function of one base run;
* **trace-changing** axes (core count, SMT ways) are the only class
  that pays for a simulation.

:func:`~repro.analysis.dse.engine.run_campaign` simulates one base
run per (app, trace-changing signature), batch-scores the rest of the
grid with the vectorized kernel
(:func:`repro.metrics.kernels.batch_active_energy`), equivalence-
checks a sampled subset against full re-simulation, and reports a
Pareto frontier (Eq.-1 TLP vs energy-delay) per app.
"""

from repro.analysis.dse.axes import (
    AXES,
    TRACE_CHANGING,
    TRACE_INVARIANT,
    TRACE_RESCALING,
    partition_configs,
    sim_signature,
)
from repro.analysis.dse.engine import (
    CampaignResult,
    CampaignStats,
    EquivalenceReport,
    run_campaign,
)
from repro.analysis.dse.pareto import pareto_frontier
from repro.analysis.dse.score import (
    ConfigScore,
    batch_score,
    coefficients_for,
    node_power_scale,
    score_from_simulation,
    time_scale,
)

__all__ = [
    "AXES",
    "CampaignResult",
    "CampaignStats",
    "ConfigScore",
    "EquivalenceReport",
    "TRACE_CHANGING",
    "TRACE_INVARIANT",
    "TRACE_RESCALING",
    "batch_score",
    "coefficients_for",
    "node_power_scale",
    "pareto_frontier",
    "partition_configs",
    "run_campaign",
    "score_from_simulation",
    "sim_signature",
    "time_scale",
]
