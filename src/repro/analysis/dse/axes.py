"""The config-axis partition: what each DSE knob can possibly change.

The whole engine rests on one observation about the simulator: the
scheduler reads the machine's clocks only through
:func:`repro.os.scheduler.compute_clock_factor` — the turbo/base
*ratio* per busy-core count — so uniformly scaling base and turbo
frequency, which is exactly what the parametric family's tech node
and DVFS knobs do, leaves the simulated schedule unchanged.  Energy
coefficients never reach the scheduler at all.  That classifies every
axis of :func:`repro.hardware.catalog.generate_machines`:

========================  ==================  =========================
axis                      class               how it is scored
========================  ==================  =========================
energy coefficients       trace-invariant     re-score the activity
                                              histogram (no new data)
tech node (power/volt)    trace-invariant     constant factor on CPU
                                              active energy
tech node (frequency),    trace-rescaling     time columns rescale
DVFS ratio                                    linearly; TLP fractions
                                              are ratios -> unchanged
core count, SMT ways      trace-changing      re-simulate (one base
                                              run per signature)
========================  ==================  =========================

:func:`sim_signature` captures precisely the machine fields the
simulation *can* observe; configs sharing a signature replay the same
trace and share one base run.

One subtlety keeps the guarantee *bit*-exact rather than
approximately exact: the clock ratio is computed in floating point
from the absolute clocks, so two DVFS points scaled from the same
reference can differ in the last ulp of a clock factor — and a
last-ulp speed difference can legitimately move a burst boundary.
The signature therefore embeds the scheduler's exact per-busy-core
clock-factor table (evaluated through the very same
:func:`~repro.os.scheduler.compute_clock_factor` the scheduler uses)
instead of a nominal ratio: ulp-distinct tables get their own base
run (a handful of extra simulations per campaign), identical tables
share one, and the shared-trace claim never rests on float luck.
"""

from repro.os.scheduler import build_topology, compute_clock_factor

#: Axis classes, in increasing order of cost.
TRACE_INVARIANT = "trace-invariant"
TRACE_RESCALING = "trace-rescaling"
TRACE_CHANGING = "trace-changing"

#: Classification of every generator axis (the table above).
AXES = {
    "coefficients": TRACE_INVARIANT,
    "tech_nm.power": TRACE_INVARIANT,
    "tech_nm.frequency": TRACE_RESCALING,
    "dvfs_ratio": TRACE_RESCALING,
    "cores": TRACE_CHANGING,
    "smt_ways": TRACE_CHANGING,
}


def sim_signature(machine):
    """Hashable tuple of every simulation-visible machine field.

    Two machines with equal signatures produce bit-identical traces
    for the same (app, seed, duration): the scheduler sees core
    topology, the exact per-busy-core clock-factor table and the SMT
    throughput table; the memory model sees the LLC size; the GPU
    model sees the device spec.  Absolute clocks, tech node, DVFS
    point and energy coefficients are deliberately absent — that
    absence is the simulate-once guarantee (pinned by the DSE
    equivalence suite).
    """
    cpu = machine.cpu
    gpu = machine.gpu
    n_cores = len({lcpu.core for lcpu in build_topology(machine)})
    return (
        cpu.physical_cores,
        cpu.smt_ways,
        machine.smt_enabled,
        machine.active_logical_cpus,
        tuple(compute_clock_factor(cpu, busy, n_cores)
              for busy in range(n_cores + 1)),
        cpu.llc_mb,
        tuple(sorted((cls.value, rate)
                     for cls, rate in cpu.smt_throughput.items())),
        machine.ram_gb,
        (gpu.name, gpu.cuda_cores, gpu.clock_mhz, gpu.architecture,
         gpu.vram_gb, gpu.has_nvenc, gpu.mining_optimized,
         gpu.vr_capable, gpu.video_engine_slowdown),
    )


def partition_configs(machines):
    """Group config indices by :func:`sim_signature`.

    Returns ``{signature: [config index, ...]}`` with groups in
    first-occurrence order and indices ascending — the deterministic
    work plan of a campaign: one base simulation per key, analytic
    scoring for every member.
    """
    groups = {}
    for index, machine in enumerate(machines):
        groups.setdefault(sim_signature(machine), []).append(index)
    return groups
