"""The campaign engine: partition, simulate once, score many, verify.

:func:`run_campaign` turns (apps x machine configs) into per-app
Pareto frontiers while simulating only what the axis partition says it
must:

1. **Partition** the configs by trace-changing signature
   (:func:`~repro.analysis.dse.axes.partition_configs`).
2. **Simulate** one base run per (app, signature) — plus a seeded
   sample of extra configs re-simulated *in full* purely to check the
   analytic path against ground truth.  All runs go through one
   :class:`~repro.harness.supervisor.SupervisedExecutor` sweep in
   chunked batches, so campaign dispatch overhead is per-chunk, not
   per-run, and a crashed grid point quarantines instead of killing
   the campaign.
3. **Score** every config of every group analytically from its
   group's base run (:func:`~repro.analysis.dse.score.batch_score`).
4. **Verify**: the sampled re-simulations are scored through the slow
   path and compared — exact on TLP (integer-derived), relative
   tolerance on energy/delay floats.  A campaign whose equivalence
   check fails says so in its result rather than hiding it.

The division of labour with the benchmark: the engine reports *what
was simulated vs scored*; ``benchmarks/bench_dse.py`` turns that into
configs-scored/s and the speedup over naive re-simulate-everything.
"""

import random
from dataclasses import dataclass, field

from repro.analysis.dse.axes import partition_configs
from repro.analysis.dse.pareto import pareto_frontier
from repro.analysis.dse.score import batch_score, score_from_simulation
from repro.harness.executor import make_spec
from repro.harness.supervisor import SupervisedExecutor
from repro.sim import SECOND

#: Relative tolerance of the float equivalence check.  The two paths
#: differ only in summation order (per-slice vs histogram-grouped) and
#: kernel ``**`` rounding, both of which sit many orders below this.
EQUIVALENCE_RTOL = 1e-6


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of the sampled analytic-vs-resimulation check."""

    samples: int
    tlp_exact: bool             # TLP agreed bit-for-bit on every sample
    max_rel_err: float          # worst float deviation (energy/delay)
    rtol: float
    ok: bool

    def to_payload(self):
        return {
            "samples": self.samples,
            "tlp_exact": self.tlp_exact,
            "max_rel_err": self.max_rel_err,
            "rtol": self.rtol,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class CampaignStats:
    """Simulation economy of one campaign."""

    apps: int
    configs: int
    grid_points: int            # apps x configs
    signatures: int             # distinct trace-changing groups
    base_runs: int              # one simulation per (app, signature)
    equivalence_runs: int       # extra simulations spent on checking
    simulated_points: int       # grid points that paid for a simulation
    analytic_fraction: float    # 1 - simulated/grid
    failed_runs: int            # quarantined simulations

    def to_payload(self):
        return {
            "apps": self.apps,
            "configs": self.configs,
            "grid_points": self.grid_points,
            "signatures": self.signatures,
            "base_runs": self.base_runs,
            "equivalence_runs": self.equivalence_runs,
            "simulated_points": self.simulated_points,
            "analytic_fraction": self.analytic_fraction,
            "failed_runs": self.failed_runs,
        }


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    apps: list
    scores: dict                # app -> [ConfigScore | None] * configs
    frontiers: dict             # app -> [ConfigScore], best-TLP first
    stats: CampaignStats
    equivalence: object         # EquivalenceReport | None
    failures: list = field(default_factory=list)  # RunFailure records

    def to_payload(self, include_scores=False):
        payload = {
            "apps": list(self.apps),
            "stats": self.stats.to_payload(),
            "equivalence": (self.equivalence.to_payload()
                            if self.equivalence is not None else None),
            "frontiers": {
                app: [score.to_payload() for score in frontier]
                for app, frontier in self.frontiers.items()
            },
            "failures": [f.to_payload() for f in self.failures],
        }
        if include_scores:
            payload["scores"] = {
                app: [s.to_payload() if s is not None else None
                      for s in scores]
                for app, scores in self.scores.items()
            }
        return payload


def _sample_equivalence(apps, groups, samples, seed):
    """Seeded sample of (app, config index) pairs to re-simulate.

    Prefers non-representative configs (a representative's "re-
    simulation" would be the base run itself); falls back to any pair
    when the grid is too small.
    """
    non_rep = [(app, index) for app in apps
               for members in groups.values() for index in members[1:]]
    pool = non_rep or [(app, members[0]) for app in apps
                       for members in groups.values()]
    rng = random.Random(f"dse-equivalence:{seed}")
    if samples >= len(pool):
        return list(pool)
    return sorted(rng.sample(pool, samples))


def run_campaign(apps, machines, duration_us=SECOND, seed=0, jobs=None,
                 chunk=4, cache=None, retries=0, deadline_s=None,
                 equivalence_samples=8, rtol=EQUIVALENCE_RTOL,
                 kernel=None, executor=None):
    """Score every (app, config) grid point; simulate only per signature.

    ``apps`` are registry names; ``machines`` the config list (e.g.
    from :func:`repro.hardware.catalog.generate_machines`).  ``jobs``,
    ``chunk``, ``cache``, ``retries`` and ``deadline_s`` configure the
    supervised sweep (``executor`` overrides them with a prebuilt
    one).  ``equivalence_samples`` configs are additionally
    re-simulated in full and checked against their analytic scores
    (0 disables the check).  Runs use streaming metrics — a campaign
    keeps aggregates, not traces.
    """
    apps = list(apps)
    machines = list(machines)
    groups = partition_configs(machines)
    group_list = list(groups.values())

    plan = [(app, members) for app in apps for members in group_list]
    specs = [make_spec(app, machine=machines[members[0]],
                       duration_us=duration_us, seed=seed,
                       streaming=True)
             for app, members in plan]
    checks = []
    if equivalence_samples > 0:
        checks = _sample_equivalence(apps, groups, equivalence_samples,
                                     seed)
        specs += [make_spec(app, machine=machines[index],
                            duration_us=duration_us, seed=seed,
                            streaming=True)
                  for app, index in checks]

    if executor is None:
        executor = SupervisedExecutor(jobs=jobs, cache=cache,
                                      retries=retries,
                                      deadline_s=deadline_s, chunk=chunk,
                                      seed=seed)
    results = executor.map(specs)
    base_runs = results[:len(plan)]
    check_runs = results[len(plan):]

    scores = {app: [None] * len(machines) for app in apps}
    failed = 0
    for (app, members), run in zip(plan, base_runs):
        if not _is_run(run):
            failed += 1
            continue
        for index, score in zip(members, batch_score(
                app, run, [machines[i] for i in members],
                indices=members, kernel=kernel)):
            scores[app][index] = score

    equivalence = None
    if equivalence_samples > 0:
        equivalence = _check_equivalence(checks, check_runs, machines,
                                         scores, rtol)
        failed += sum(1 for run in check_runs if not _is_run(run))

    frontiers = {
        app: pareto_frontier([s for s in scores[app] if s is not None])
        for app in apps
    }
    simulated = len({(app, members[0]) for app, members in plan}
                    | set(checks))
    grid = len(apps) * len(machines)
    stats = CampaignStats(
        apps=len(apps),
        configs=len(machines),
        grid_points=grid,
        signatures=len(groups),
        base_runs=len(plan),
        equivalence_runs=len(checks),
        simulated_points=simulated,
        analytic_fraction=1.0 - simulated / grid if grid else 0.0,
        failed_runs=failed,
    )
    return CampaignResult(
        apps=apps,
        scores=scores,
        frontiers=frontiers,
        stats=stats,
        equivalence=equivalence,
        failures=list(getattr(executor, "failures", [])),
    )


def _is_run(result):
    """True for a real run (vs a quarantined RunFailure slot)."""
    return result is not None and hasattr(result, "tlp")


def _check_equivalence(checks, check_runs, machines, scores, rtol):
    """Compare sampled full re-simulations against analytic scores."""
    samples = 0
    tlp_exact = True
    max_rel = 0.0
    for (app, index), run in zip(checks, check_runs):
        fast = scores[app][index]
        if not _is_run(run) or fast is None:
            continue
        slow = score_from_simulation(app, run, machines[index],
                                     config_index=index)
        samples += 1
        if slow.tlp != fast.tlp:
            tlp_exact = False
        for attr in ("wall_s", "energy_j", "edp_js"):
            a, b = getattr(fast, attr), getattr(slow, attr)
            denom = max(abs(a), abs(b), 1e-300)
            max_rel = max(max_rel, abs(a - b) / denom)
    return EquivalenceReport(
        samples=samples,
        tlp_exact=tlp_exact,
        max_rel_err=max_rel,
        rtol=rtol,
        ok=samples > 0 and tlp_exact and max_rel <= rtol,
    )
