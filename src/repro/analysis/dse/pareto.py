"""Pareto frontiers over scored configs: TLP up, energy-delay down.

The campaign's headline question is a tradeoff: which configs are
*undominated* — no other config offers both more thread-level
parallelism (the paper's Eq.-1 metric) and a lower energy-delay
product?  The frontier is the answer the paper's §V core-scaling
discussion gestures at, computed instead of eyeballed.
"""


def dominates(a, b):
    """True when score ``a`` Pareto-dominates ``b``.

    Maximize ``tlp``, minimize ``edp_js``; domination is
    no-worse-in-both and strictly-better-in-one.
    """
    return (a.tlp >= b.tlp and a.edp_js <= b.edp_js
            and (a.tlp > b.tlp or a.edp_js < b.edp_js))


def pareto_frontier(scores):
    """The undominated subset of ``scores``, best-TLP first.

    Single sort + sweep (O(n log n)): walking configs by descending
    TLP, a config is on the frontier iff its energy-delay is strictly
    below everything already kept.  Ties break on ``config_index`` so
    the frontier is deterministic; of duplicate ``(tlp, edp)`` points
    only the lowest-indexed survives (the rest are weakly dominated).
    """
    ordered = sorted(scores,
                     key=lambda s: (-s.tlp, s.edp_js, s.config_index))
    frontier = []
    best_edp = None
    for score in ordered:
        if best_edp is None or score.edp_js < best_edp:
            frontier.append(score)
            best_edp = score.edp_js
    return frontier
