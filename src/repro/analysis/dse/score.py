"""Per-config scoring: one simulated run -> metrics under any config.

Two paths produce a :class:`ConfigScore`:

* :func:`batch_score` — the **fast path**: scores N configs from one
  base run's activity histogram in a single vectorized kernel pass
  (:func:`repro.metrics.kernels.batch_active_energy`), never touching
  the simulator.
* :func:`score_from_simulation` — the **slow path**: scores one
  config from its own full re-simulation's energy report (the
  per-slice accumulation the :class:`~repro.os.energy.EnergyModel`
  performed live).

For trace-invariant and trace-rescaling configs the two must agree —
exactly on every integer-derived quantity (TLP is a ratio of integer
microsecond sums; the schedule is bit-identical) and to float
tolerance on energy (per-slice vs histogram-grouped summation order).
The DSE property suite pins that equivalence; it is the correctness
argument for skipping ~all of the grid's simulations.

Frequency semantics: simulated microseconds are *reference-machine*
wall time (the 45 nm / DVFS 1.0 point shares its 3.7 GHz base clock
with the paper machine).  A config clocked at ``f`` GHz replays the
same schedule in ``REF/f`` the wall time, so its wall-clock window,
energy integrals and delay all carry the :func:`time_scale` factor,
while TLP — a ratio of times — is invariant.  CPU active power
additionally carries :func:`node_power_scale`: the tech node's
switching-power factor times the cubic DVFS term (P ~ V^2 f with
f ~ V).
"""

from dataclasses import dataclass

from repro.hardware import catalog
from repro.metrics.kernels import batch_active_energy
from repro.os.energy import default_coefficients, gpu_tdp_for
from repro.os.work import WorkClass

#: Stable work-class column order of the batch kernel's power matrix.
WORK_CLASSES = tuple(WorkClass)
_CLASS_COLUMN = {cls: i for i, cls in enumerate(WORK_CLASSES)}


def coefficients_for(machine):
    """The machine's energy coefficients (module defaults when bare)."""
    return (getattr(machine, "coefficients", None)
            or default_coefficients())


def time_scale(machine):
    """Wall seconds per simulated second on ``machine``.

    Simulated time is wall time on the reference clock; a machine
    clocked ``k`` times faster replays the same schedule in ``1/k``
    the wall time.  The effective clock comes from the machine's
    tech/DVFS point (:func:`repro.hardware.catalog.
    effective_clock_ghz`) — the sim-visible spec clocks are the
    reference pair for the whole parametric family.
    """
    return catalog.REF_BASE_CLOCK_GHZ / catalog.effective_clock_ghz(machine)


def node_power_scale(machine):
    """CPU active-power factor of the machine's tech/DVFS point.

    The tech node contributes its ITRS switching-power factor; the
    DVFS ratio contributes cubically (P ~ V^2 f, and the parametric
    family scales f linearly with V).  Machines without the parametric
    axes score 1.0.
    """
    tech = getattr(machine, "tech_nm", None)
    if tech is None:
        return 1.0
    return (catalog.POWER_SCALE[tech]
            * getattr(machine, "dvfs_ratio", 1.0) ** 3)


@dataclass(frozen=True)
class ConfigScore:
    """One (app, config) grid point's scored metrics."""

    app: str
    config_index: int
    machine_name: str
    logical_cpus: int
    tech_nm: object             # int for parametric machines
    dvfs_ratio: float
    tlp: float                  # Eq.-1 TLP (idle-normalized mean)
    wall_s: float               # wall-clock testbench duration
    energy_j: float             # CPU + GPU, over the wall window
    edp_js: float               # energy-delay product (J*s)
    analytic: bool              # True = scored without re-simulating

    def to_payload(self):
        return {
            "app": self.app,
            "config_index": self.config_index,
            "machine": self.machine_name,
            "logical_cpus": self.logical_cpus,
            "tech_nm": self.tech_nm,
            "dvfs_ratio": self.dvfs_ratio,
            "tlp": self.tlp,
            "wall_s": self.wall_s,
            "energy_j": self.energy_j,
            "edp_js": self.edp_js,
            "analytic": self.analytic,
        }


def _assemble(app, config_index, machine, tlp, duration_us,
              cpu_active_ref_j, gpu_busy_us, analytic):
    """Shared scoring tail of both paths.

    ``cpu_active_ref_j`` is the config's active CPU energy in
    *reference time* under its own coefficients — the paths differ
    only in how they obtained it (kernel batch vs live accumulation).
    """
    coeff = coefficients_for(machine)
    scale = time_scale(machine)
    wall_s = duration_us * scale / 1e6
    cpu_active_j = cpu_active_ref_j * node_power_scale(machine) * scale
    cpu_idle_j = coeff.cpu_idle_w * wall_s
    busy_fraction = min(1.0, gpu_busy_us / max(1, duration_us))
    tdp = gpu_tdp_for(coeff, machine.gpu)
    gpu_j = ((tdp - coeff.gpu_idle_w) * busy_fraction
             + coeff.gpu_idle_w) * wall_s
    energy_j = cpu_active_j + cpu_idle_j + gpu_j
    return ConfigScore(
        app=app,
        config_index=config_index,
        machine_name=machine.cpu.name,
        logical_cpus=machine.logical_cpus,
        tech_nm=getattr(machine, "tech_nm", None),
        dvfs_ratio=getattr(machine, "dvfs_ratio", 1.0),
        tlp=tlp,
        wall_s=wall_s,
        energy_j=energy_j,
        edp_js=energy_j * wall_s,
        analytic=analytic,
    )


def batch_score(app, base_run, machines, indices=None, kernel=None):
    """Fast path: score ``machines`` from one base run, no simulation.

    Every machine must share the base run's trace-changing signature
    (:func:`repro.analysis.dse.axes.sim_signature`) — the caller's
    partition guarantees it; nothing here re-checks.  ``indices``
    optionally carries each machine's campaign config index.  Returns
    one :class:`ConfigScore` per machine, in order.
    """
    entries = sorted((base_run.activity or {}).items())
    t_us = [us for _, us in entries]
    class_idx = [_CLASS_COLUMN[cls] for (cls, _), _ in entries]
    factors = [factor for (_, factor), _ in entries]
    coeffs = [coefficients_for(machine) for machine in machines]
    power = [[c.active_power_w.get(cls, 0.0) for cls in WORK_CLASSES]
             for c in coeffs]
    exponents = [c.clock_exponent for c in coeffs]
    active_ref = batch_active_energy(t_us, class_idx, factors, power,
                                     exponents, kernel=kernel)
    return [
        _assemble(app, indices[k] if indices is not None else k,
                  machine, base_run.tlp.tlp, base_run.duration_us,
                  active_ref[k], base_run.gpu_busy_us, analytic=True)
        for k, machine in enumerate(machines)
    ]


def score_from_simulation(app, run, machine, config_index=-1):
    """Slow path: score one config from its own re-simulation.

    ``run`` must have been simulated *on* ``machine`` (so its energy
    report already reflects the config's coefficients); this only
    applies the tech/DVFS time and power factors the energy model does
    not know about.  Used by the equivalence check and as the honest
    baseline the speedup benchmark measures against.
    """
    scale = time_scale(machine)
    # Undo nothing, scale everything: the report's joules are per
    # reference-time second; active CPU power additionally carries the
    # node factor.  Recomputed from parts (not report.total_j) so the
    # factors apply per term, mirroring ``_assemble``.
    cpu_active_ref_j = run.energy.cpu_active_j
    return _assemble(app, config_index, machine, run.tlp.tlp,
                     run.duration_us, cpu_active_ref_j,
                     run.gpu_busy_us, analytic=False)
