"""Static concurrency analyzer (no simulation clock involved).

Public API:

* :func:`extract_structure` — shadow-build one app model.
* :func:`analyze_app` — structure + lock-order + work/span + findings.
* :func:`analyze_apps` — the full ``repro lint`` pass over many apps,
  optionally with the AST source lint, returning a
  :class:`~repro.analysis.static.report.StaticReport`.
"""

from repro.analysis.static.astlint import (app_source_paths, lint_file,
                                           lint_paths)
from repro.analysis.static.lockorder import (LockOrderGraph,
                                             build_lock_order)
from repro.analysis.static.report import (AppAnalysis, Finding,
                                          StaticReport, meets_threshold)
from repro.analysis.static.shadow import (AppStructure, extract_structure)
from repro.analysis.static.workspan import (WorkSpanResult,
                                            analyze_work_span, check_bound)
from repro.hardware import paper_machine

__all__ = [
    "AppAnalysis", "AppStructure", "Finding", "LockOrderGraph",
    "StaticReport", "WorkSpanResult", "analyze_app", "analyze_apps",
    "analyze_work_span", "app_source_paths", "build_lock_order",
    "check_bound", "extract_structure", "lint_file", "lint_paths",
    "meets_threshold",
]


def analyze_app(app, machine=None, duration_us=None, seed=0):
    """Run the full static pass for one app model.

    ``app`` is an :class:`~repro.apps.base.AppModel` instance or a
    registry key.  Returns an :class:`AppAnalysis`.
    """
    structure = extract_structure(app, machine=machine,
                                  duration_us=duration_us, seed=seed)
    findings = []
    if structure.build_error:
        findings.append(Finding(
            severity="error", code="build-error", app=structure.app_name,
            message=f"app build failed under shadow harness: "
                    f"{structure.build_error}"))
    for thread in structure.threads:
        if thread.error:
            findings.append(Finding(
                severity="warning", code="thread-body-error",
                app=structure.app_name, location=thread.spawn_site,
                message=(f"thread {thread.name!r} crashed under the "
                         f"shadow driver: {thread.error}")))
        elif thread.truncated:
            findings.append(Finding(
                severity="info", code="path-truncated",
                app=structure.app_name, location=thread.spawn_site,
                message=(f"thread {thread.name!r} exploration truncated "
                         f"after {thread.steps} steps; work/span totals "
                         "are partial")))
    graph, lock_findings = build_lock_order(structure)
    findings.extend(lock_findings)
    work_span = analyze_work_span(structure)
    analysis = AppAnalysis(app_name=structure.app_name,
                           structure=structure, work_span=work_span,
                           findings=findings)
    analysis.lock_order = graph
    return analysis


def analyze_apps(app_names, machine=None, duration_us=None, seed=0,
                 ast_paths=None):
    """Static pass over many apps; the core of ``repro lint``.

    ``ast_paths`` is a list of files/directories for the source lint
    (pass ``None`` to skip it, or ``app_source_paths()`` for the
    shipped models).
    """
    machine = machine or paper_machine()
    report = StaticReport(
        machine_name=machine.cpu.name,
        logical_cpus=machine.logical_cpus,
        duration_us=0,
        seed=seed)
    for name in app_names:
        analysis = analyze_app(name, machine=machine,
                               duration_us=duration_us, seed=seed)
        report.apps[analysis.app_name] = analysis
        report.duration_us = analysis.structure.duration_us
    if ast_paths:
        report.ast_findings = lint_paths(ast_paths)
    return report
