"""AST lint pass over application-model sources.

Complements the shadow build with purely syntactic checks on
``src/repro/apps/*.py`` (or any path handed to :func:`lint_paths`):

* ``blocking-call-outside-yield`` (error) — a bare statement calling
  ``ctx.wait`` / ``ctx.sleep`` / ``ctx.cpu``.  These construct request
  objects; dropping one on the floor silently skips the block/compute
  the author intended (``ctx.sleep(MS)`` vs ``yield ctx.sleep(MS)``).
* ``discarded-acquire`` (warning) — a bare ``<x>.acquire()``
  statement.  The returned event must be yielded (or stored) or the
  acquisition is never waited on.
* ``lock-never-released`` (warning) — a variable statically bound to
  a ``Lock(...)`` constructor has ``.acquire`` calls in the module
  but no ``.release`` anywhere.  Restricted to locks: semaphores are
  routinely released by another module (producer/consumer gates).
* ``unseeded-rng`` (warning) — module-level ``random`` use
  (``random.random()``, ``random.randint(...)`` or an argument-less
  ``random.Random()``) and ``from random import ...`` of RNG
  functions: deterministic replay needs every stream seeded from the
  run seed.
* ``wall-clock`` (error) — ``time.time`` / ``perf_counter`` /
  ``time.sleep`` / ``datetime.now`` etc. in sim code: real time must
  never leak into simulated time.

Import aliases are tracked (``import random as rnd``), so renamed
modules are still caught.
"""

import ast
from pathlib import Path

from repro.analysis.static.report import Finding

#: ctx methods that hand back request objects which must be yielded.
_CTX_REQUESTS = ("wait", "sleep", "cpu")

_RNG_MODULE_CALLS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "betavariate", "expovariate",
    "normalvariate", "triangular", "getrandbits", "seed",
}

_WALL_CLOCK = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "sleep", "process_time"},
    "datetime": {"now", "utcnow", "today"},
}


def _call_root(node):
    """Dotted name parts of a call target, e.g. ``a.b.c`` -> [a, b, c]."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _ModuleLinter(ast.NodeVisitor):
    def __init__(self, path, display):
        self.path = path
        self.display = display
        self.findings = []
        #: local alias -> canonical module name ("random", "time", ...)
        self.module_aliases = {}
        #: names imported from random via ``from random import ...``
        self.from_random = {}
        #: names imported from time/datetime
        self.from_wall = {}
        #: local alias for the Lock class (from ``from ... import Lock``)
        self.lock_classes = {"Lock"}
        #: variable name -> assignment lineno for Lock(...) bindings
        self.lock_vars = {}
        self.acquires = {}   # var name -> [lineno]
        self.releases = set()

    def _loc(self, node):
        return f"{self.display}:{node.lineno}"

    def _add(self, severity, code, node, message):
        self.findings.append(Finding(
            severity=severity, code=code, message=message,
            location=self._loc(node)))

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "time", "datetime"):
                self.module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module == "random":
            for alias in node.names:
                self.from_random[alias.asname or alias.name] = alias.name
        elif node.module in ("time", "datetime"):
            for alias in node.names:
                self.from_wall[alias.asname or alias.name] = (
                    node.module, alias.name)
        elif node.module and node.names:
            for alias in node.names:
                if alias.name == "Lock":
                    self.lock_classes.add(alias.asname or "Lock")
        self.generic_visit(node)

    # -- lock bindings ---------------------------------------------------

    def visit_Assign(self, node):
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in self.lock_classes):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.lock_vars[target.id] = node.lineno
        self.generic_visit(node)

    # -- statements whose value is discarded -----------------------------

    def visit_Expr(self, node):
        call = node.value
        if isinstance(call, ast.Call):
            parts = _call_root(call.func)
            if parts and len(parts) == 2 and parts[0] == "ctx" \
                    and parts[1] in _CTX_REQUESTS:
                self._add(
                    "error", "blocking-call-outside-yield", node,
                    f"bare 'ctx.{parts[1]}(...)' statement: the request "
                    "object is discarded; write "
                    f"'yield ctx.{parts[1]}(...)'")
            elif (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "acquire"):
                self._add(
                    "warning", "discarded-acquire", node,
                    "'.acquire()' result discarded: yield the returned "
                    "event (or store it) or the acquisition is never "
                    "waited on")
        self.generic_visit(node)

    # -- calls: RNG, wall clock, acquire/release pairing -----------------

    def visit_Call(self, node):
        parts = _call_root(node.func)
        if parts:
            self._check_modules(node, parts)
            self._check_lock_pairing(node, parts)
        name = parts[0] if parts and len(parts) == 1 else None
        if name in self.from_random and self._is_rng_use(
                self.from_random[name], node):
            self._add(
                "warning", "unseeded-rng", node,
                f"'{name}' imported from random: seed every stream from "
                "the run seed (e.g. rt.fork_rng()) for deterministic "
                "replay")
        if name in self.from_wall:
            module, attr = self.from_wall[name]
            if attr in _WALL_CLOCK.get(module, ()):
                self._add(
                    "error", "wall-clock", node,
                    f"'{module}.{attr}' in sim code: real time must not "
                    "leak into simulated time; use the kernel clock")
        self.generic_visit(node)

    def _is_rng_use(self, canonical, node):
        if canonical == "Random":
            return not node.args and not node.keywords  # unseeded ctor
        return canonical in _RNG_MODULE_CALLS

    def _check_modules(self, node, parts):
        if len(parts) != 2:
            return
        module = self.module_aliases.get(parts[0])
        if module == "random":
            if parts[1] == "Random":
                if not node.args and not node.keywords:
                    self._add(
                        "warning", "unseeded-rng", node,
                        "argument-less 'random.Random()': pass a seed "
                        "derived from the run seed for deterministic "
                        "replay")
            elif parts[1] in _RNG_MODULE_CALLS:
                self._add(
                    "warning", "unseeded-rng", node,
                    f"'random.{parts[1]}' uses the process-global RNG; "
                    "use a seeded random.Random stream instead")
        elif module in ("time", "datetime") \
                and parts[1] in _WALL_CLOCK[module]:
            self._add(
                "error", "wall-clock", node,
                f"'{module}.{parts[1]}' in sim code: real time must not "
                "leak into simulated time; use the kernel clock")

    def _check_lock_pairing(self, node, parts):
        if len(parts) != 2 or parts[0] not in self.lock_vars:
            return
        if parts[1] == "acquire":
            self.acquires.setdefault(parts[0], []).append(node.lineno)
        elif parts[1] == "release":
            self.releases.add(parts[0])

    def finish(self):
        for var, linenos in sorted(self.acquires.items()):
            if var not in self.releases:
                self.findings.append(Finding(
                    severity="warning", code="lock-never-released",
                    location=f"{self.display}:{linenos[0]}",
                    message=(f"lock variable {var!r} is acquired but "
                             "never released anywhere in this module")))
        return self.findings


def lint_file(path, display=None):
    """Lint one source file; returns a list of :class:`Finding`."""
    path = Path(path)
    display = display or path.name
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [Finding(severity="error", code="syntax-error",
                        location=f"{display}:{exc.lineno or 0}",
                        message=str(exc))]
    linter = _ModuleLinter(path, display)
    linter.visit(tree)
    return linter.finish()


def lint_paths(paths):
    """Lint files/directories (directories expand to ``**/*.py``)."""
    findings = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            files = [path]
        root = path if path.is_dir() else path.parent
        for file in files:
            try:
                display = str(file.relative_to(root.parent))
            except ValueError:
                display = file.name
            findings.extend(lint_file(file, display=display))
    return findings


def app_source_paths():
    """The shipped application-model sources."""
    return [Path(__file__).resolve().parents[2] / "apps"]
