"""Lock-order graph construction and potential-deadlock detection.

From each thread's recorded sync-operation sequence (program order,
as driven by the shadow harness) we reconstruct which locks the
thread *held* while acquiring others.  Every ``held -> acquired``
pair becomes an edge in the app's lock-order graph; a cycle in that
graph is the classic necessary condition for an ABBA deadlock, and is
reported naming the locks, the threads and the acquisition sites.

Two more lock-discipline checks ride on the same per-thread replay:

* ``lock-relock`` — a thread acquires a lock it already holds.  The
  simulated :class:`~repro.os.sync.Lock` is non-reentrant and FIFO,
  so this self-deadlocks unconditionally.
* ``acquire-without-release`` — a thread path *completed* while still
  holding locks (truncated/errored paths are skipped: the remainder
  of the body may well release).
"""

from dataclasses import dataclass, field

from repro.analysis.static.report import Finding


@dataclass(frozen=True)
class LockEdge:
    """Directed lock-order edge: ``held`` was held while taking ``acquired``."""

    held: str
    acquired: str
    thread: str
    site: str = None


@dataclass
class LockOrderGraph:
    """Per-app lock-order graph over lock names."""

    app_name: str
    locks: list = field(default_factory=list)
    edges: list = field(default_factory=list)        # LockEdge
    cycles: list = field(default_factory=list)       # list of lock-name lists

    @property
    def edge_pairs(self):
        return {(edge.held, edge.acquired) for edge in self.edges}


def _replay_thread(thread, on_edge, findings, app_name):
    """Walk one thread's ops, tracking held locks in program order."""
    held = []  # acquisition-ordered lock names
    for op in thread.ops:
        if op.sync.kind != "lock":
            continue
        name = op.sync.name
        if op.op == "acquire":
            if name in held:
                findings.append(Finding(
                    severity="error", code="lock-relock", app=app_name,
                    location=op.site,
                    message=(f"thread {thread.name!r} acquires "
                             f"non-reentrant lock {name!r} while "
                             "already holding it (self-deadlock)")))
                continue
            for held_name in held:
                on_edge(LockEdge(held=held_name, acquired=name,
                                 thread=thread.name, site=op.site))
            held.append(name)
        elif op.op == "release" and name in held:
            held.remove(name)
    if held and thread.completed:
        findings.append(Finding(
            severity="warning", code="acquire-without-release",
            app=app_name, location=thread.spawn_site,
            message=(f"thread {thread.name!r} terminated still holding "
                     f"{', '.join(repr(n) for n in held)}")))


def _find_cycles(nodes, edges):
    """Elementary cycles via DFS over the edge-pair graph.

    Returns each cycle once, as a list of lock names rotated so the
    lexicographically smallest name leads (deterministic output).
    """
    adjacency = {node: set() for node in nodes}
    for held, acquired in edges:
        adjacency.setdefault(held, set()).add(acquired)
        adjacency.setdefault(acquired, set())
    cycles = set()

    def visit(node, path, on_path):
        for succ in sorted(adjacency[node]):
            if succ in on_path:
                cycle = path[path.index(succ):]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            else:
                on_path.add(succ)
                visit(succ, path + [succ], on_path)
                on_path.remove(succ)

    for start in sorted(adjacency):
        visit(start, [start], {start})
    return [list(cycle) for cycle in sorted(cycles)]


def build_lock_order(structure):
    """Build the :class:`LockOrderGraph` for one extracted app structure.

    Returns ``(graph, findings)``.
    """
    graph = LockOrderGraph(
        app_name=structure.app_name,
        locks=[s.name for s in structure.sync if s.kind == "lock"])
    findings = []
    seen = set()

    def on_edge(edge):
        key = (edge.held, edge.acquired, edge.thread)
        if key not in seen:
            seen.add(key)
            graph.edges.append(edge)

    for thread in structure.threads:
        _replay_thread(thread, on_edge, findings, structure.app_name)

    graph.cycles = _find_cycles(graph.locks, graph.edge_pairs)
    for cycle in graph.cycles:
        ordered = " -> ".join(cycle + [cycle[0]])
        involved = sorted({edge.thread for edge in graph.edges
                           if edge.held in cycle and edge.acquired in cycle})
        sites = sorted({edge.site for edge in graph.edges
                        if edge.site and edge.held in cycle
                        and edge.acquired in cycle})
        findings.append(Finding(
            severity="error", code="deadlock-cycle",
            app=structure.app_name,
            location=sites[0] if sites else None,
            message=(f"lock-order cycle {ordered} across threads "
                     f"{', '.join(repr(t) for t in involved)}"
                     + (f" (sites: {', '.join(sites)})" if sites else ""))))
    return graph, findings
