"""Findings model for the static concurrency analyzer.

A :class:`Finding` is one diagnostic (a potential deadlock cycle, a
blocking call outside ``yield``, an unseeded RNG use...), carrying a
severity, a stable check code, the app it concerns (when app-scoped)
and a source location.  :class:`StaticReport` aggregates the findings
of one ``repro lint`` invocation together with the per-app structure
summaries and work/span bounds, and renders to a JSON-able payload.
"""

from dataclasses import dataclass, field

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {level: rank for rank, level in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic."""

    severity: str        # "error" | "warning" | "info"
    code: str            # stable check identifier, e.g. "deadlock-cycle"
    message: str
    app: str = None      # registry key, or None for source-level findings
    location: str = None  # "file.py:123" when known

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self):
        where = f" [{self.location}]" if self.location else ""
        scope = f" ({self.app})" if self.app else ""
        return f"{self.severity}: {self.code}{scope}{where}: {self.message}"


def meets_threshold(finding, threshold):
    """True when ``finding`` is at least as severe as ``threshold``."""
    return _SEVERITY_RANK[finding.severity] <= _SEVERITY_RANK[threshold]


@dataclass
class AppAnalysis:
    """Per-app result: extracted structure + work/span bound."""

    app_name: str
    structure: object            # shadow.AppStructure
    work_span: object            # workspan.WorkSpanResult
    findings: list = field(default_factory=list)


@dataclass
class StaticReport:
    """Everything one ``repro lint`` run produced."""

    machine_name: str
    logical_cpus: int
    duration_us: int
    seed: int
    apps: dict = field(default_factory=dict)      # name -> AppAnalysis
    ast_findings: list = field(default_factory=list)

    @property
    def findings(self):
        """All findings, app-scoped first, most severe first."""
        collected = []
        for analysis in self.apps.values():
            collected.extend(analysis.findings)
        collected.extend(self.ast_findings)
        collected.sort(key=lambda f: (_SEVERITY_RANK[f.severity],
                                      f.code, f.app or "", f.location or ""))
        return collected

    def counts(self):
        """``{severity: count}`` over every finding."""
        totals = {level: 0 for level in SEVERITIES}
        for finding in self.findings:
            totals[finding.severity] += 1
        return totals

    def failed(self, threshold="warning"):
        """True when any finding is at/above ``threshold`` severity."""
        if threshold not in SEVERITIES:
            raise ValueError(f"unknown severity threshold {threshold!r}")
        return any(meets_threshold(f, threshold) for f in self.findings)

    def to_payload(self):
        """JSON-able document of the whole report."""
        return {
            "machine": self.machine_name,
            "logical_cpus": self.logical_cpus,
            "duration_us": self.duration_us,
            "seed": self.seed,
            "counts": self.counts(),
            "findings": [
                {"severity": f.severity, "code": f.code, "app": f.app,
                 "location": f.location, "message": f.message}
                for f in self.findings
            ],
            "apps": {
                name: {
                    "processes": list(analysis.structure.processes),
                    "threads": len(analysis.structure.threads),
                    "dynamic_threads": sum(
                        1 for t in analysis.structure.threads if t.dynamic),
                    "complete": analysis.structure.complete,
                    "locks": sum(1 for s in analysis.structure.sync
                                 if s.kind == "lock"),
                    "sync_primitives": len(analysis.structure.sync),
                    "work_us": analysis.work_span.work_us,
                    "span_us": analysis.work_span.span_us,
                    "critical_thread": analysis.work_span.critical_thread,
                    "parallelism": analysis.work_span.parallelism,
                    "width": analysis.work_span.width,
                    "tlp_bound": analysis.work_span.tlp_bound,
                }
                for name, analysis in sorted(self.apps.items())
            },
        }
