"""Shadow-build harness: extract app structure without simulating.

``AppModel.build`` normally wires generators into a discrete-event
kernel and the schedule emerges from running the event loop.  The
shadow harness runs the *same* build code against stub kernel / GPU /
driver objects whose event plumbing never advances a simulation clock:

* :class:`ShadowEnv` hands out real :class:`~repro.sim.events.Event`
  objects but its ``schedule`` is a no-op, so ``succeed()`` still
  marks events triggered synchronously and the unmodified sync
  primitives (Lock, Semaphore, Store...) work as-is.
* :class:`ShadowKernel` records ``spawn_process`` / ``spawn_thread``
  calls plus — via the ``register_sync`` / ``note_sync_op`` hooks —
  every sync-primitive construction and acquisition site.
* After the build, every thread body generator is *driven*: CPU and
  sleep requests advance a per-thread virtual progress counter (so
  ``while ctx.now < rt.end_time`` loops terminate), waits on
  already-triggered events deliver their value, and waits on pending
  events are force-woken with ``None``.  No global clock, event queue
  or scheduler is involved — the walk observes each thread's program
  order, which is exactly what lock-order and work/span analysis need.

The result is an :class:`AppStructure`: processes, threads (with
per-thread CPU work and sync-operation sequences), the sync-primitive
inventory, and completeness flags that downstream bounds treat
conservatively.
"""

import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps import create_app
from repro.apps.base import AppModel, AppRuntime
from repro.hardware import paper_machine
from repro.os.sync import MessageQueue
from repro.os.threads import _CpuRequest, _SleepRequest, _WaitRequest
from repro.sim import SECOND
from repro.sim.events import Event, Timeout
from repro.trace.session import NullSession

#: Default analysis window: matches the golden grid so static bounds
#: are directly comparable against the committed golden TLP values.
DEFAULT_SHADOW_DURATION_US = 1 * SECOND
#: Per-thread cap on driven generator steps (loop-truncation guard).
DEFAULT_MAX_STEPS = 200_000
#: Cap on consecutive force-woken waits with no virtual-time progress
#: (livelock guard for bodies gated purely on never-firing events).
MAX_IDLE_FORCED = 5_000

_PACKAGE_ROOT = Path(__file__).resolve().parents[3]
_SHADOW_FILES = (str(Path(__file__).resolve()),)
_SYNC_FILE = str((_PACKAGE_ROOT / "repro" / "os" / "sync.py").resolve())


def _call_site(skip_files):
    """``file.py:line`` of the nearest frame outside ``skip_files``."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename in skip_files:
        frame = frame.f_back
    if frame is None:
        return None
    path = Path(frame.f_code.co_filename)
    try:
        name = str(path.relative_to(_PACKAGE_ROOT))
    except ValueError:
        name = path.name
    return f"{name}:{frame.f_lineno}"


@dataclass(frozen=True)
class SyncInfo:
    """One sync primitive observed during the shadow build."""

    name: str
    kind: str        # "lock" | "semaphore" | "barrier" | "queue" | "latch"
    site: str = None


@dataclass(frozen=True)
class SyncOp:
    """One operation on a sync primitive, in thread program order."""

    sync: SyncInfo
    op: str          # "acquire" | "release" | "wait" | "put" | "get" | ...
    site: str = None


class ShadowEnv:
    """Stand-in for :class:`~repro.sim.Environment` that never runs.

    Scheduling only accumulates — events still become *triggered*
    synchronously inside ``succeed()``, which is all the sync
    primitives and the shadow driver need.  The event fast paths
    (``Event.succeed``, ``Timeout.__init__``) push straight onto
    ``_queue`` without calling :meth:`schedule`, so the double exposes
    the same structural fields as the real environment; the queue is
    never drained here.
    """

    def __init__(self):
        self.now = 0
        self._now = 0
        self._eid = 0
        self._queue = []
        self.scheduled = 0

    def schedule(self, event, priority=1, delay=0):
        self.scheduled += 1

    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        raise RuntimeError(
            "shadow builds must not start simulation processes "
            f"(attempted to start {name!r})")


class ShadowThread:
    """A recorded ``spawn_thread`` call plus its driven-path stats."""

    def __init__(self, process, tid, name, body, priority=0, dynamic=False,
                 spawn_site=None):
        self.process = process
        self.tid = tid
        self.name = name
        self.body = body
        self.priority = priority
        #: True when spawned from a driven thread body rather than
        #: during ``build`` — e.g. ``fan_out`` burst pools.
        self.dynamic = dynamic
        self.spawn_site = spawn_site
        self.ops = []
        self.cpu_us = 0
        self.sleep_us = 0
        self.clock = 0
        self.steps = 0
        self.forced_waits = 0
        self.completed = False
        self.truncated = False
        self.error = None

    def __repr__(self):
        return (f"<ShadowThread {self.process.name}/{self.name} "
                f"cpu={self.cpu_us} steps={self.steps}>")


class ShadowProcess:
    """A recorded ``spawn_process`` call; spawns :class:`ShadowThread`s."""

    def __init__(self, kernel, pid, name, image=None):
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.image = image or name
        self.threads = []
        self._next_tid = 1
        self.exited = kernel.env.event()

    def spawn_thread(self, body, name=None, priority=0):
        tid = self.pid * 1000 + self._next_tid
        self._next_tid += 1
        thread = ShadowThread(
            self, tid, name or f"thread-{self._next_tid - 1}", body,
            priority=priority, dynamic=not self.kernel.building,
            spawn_site=_call_site(_SHADOW_FILES))
        self.threads.append(thread)
        self.kernel.all_threads.append(thread)
        self.kernel.undriven.append(thread)
        return thread

    def terminate(self, cause="terminated"):
        """No-op: shadow threads are driven, not scheduled."""

    def __repr__(self):
        return (f"<ShadowProcess {self.name!r} pid={self.pid} "
                f"threads={len(self.threads)}>")


class ShadowKernel:
    """Kernel facade that records structure instead of simulating."""

    def __init__(self, machine, seed=0):
        import random

        self.env = ShadowEnv()
        self.machine = machine
        self.session = NullSession()
        self.rng = random.Random(seed)
        self.processes = []
        self._next_pid = 4
        self.building = True
        self.all_threads = []
        self.undriven = []
        self.current_thread = None
        self.sync_primitives = []
        self.sync_info = {}           # id(primitive) -> SyncInfo
        self._sync_counts = {}
        #: Ops issued outside any driven thread (during build itself).
        self.build_ops = []

    @property
    def now(self):
        return 0

    @property
    def logical_cpus(self):
        return self.machine.logical_cpus

    def spawn_process(self, name, image=None):
        self._next_pid += 4
        process = ShadowProcess(self, self._next_pid, name, image=image)
        self.processes.append(process)
        return process

    def find_processes(self, prefix):
        return [p for p in self.processes if p.name.startswith(prefix)]

    def start_background_services(self, duty_cycle=0.004, services=None):
        """Background services are outside the app's structure."""
        return []

    # -- sync hooks (see repro.os.sync) ---------------------------------

    def register_sync(self, primitive, kind, name=None):
        index = self._sync_counts.get(kind, 0) + 1
        self._sync_counts[kind] = index
        assigned = name if name is not None else f"{kind}-{index}"
        info = SyncInfo(name=assigned, kind=kind,
                        site=_call_site(_SHADOW_FILES + (_SYNC_FILE,)))
        self.sync_primitives.append(primitive)
        self.sync_info[id(primitive)] = info
        return assigned

    def note_sync_op(self, primitive, op, token=None):
        info = self.sync_info.get(id(primitive))
        if info is None:  # primitive built against another kernel
            return
        record = SyncOp(sync=info, op=op,
                        site=_call_site(_SHADOW_FILES + (_SYNC_FILE,)))
        if self.current_thread is not None:
            self.current_thread.ops.append(record)
        else:
            self.build_ops.append(record)


class ShadowGpu:
    """Records GPU packet submissions; completions never fire."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.packets = []            # (process_name, engine, packet_type)

    def submit(self, process, engine, packet_type, ref_us, priority=0):
        self.packets.append((process.name, engine, packet_type))
        return Event(self.kernel.env)


class ShadowDriver:
    """Input driver stub: delivers the whole script synchronously.

    Every scripted action is preloaded onto the queue (followed by the
    ``None`` end-of-script sentinel), so UI threads observe the full
    input sequence in program order without any replay timing.
    """

    mode = "shadow"

    def __init__(self, kernel):
        self.kernel = kernel
        self.delivered = 0

    def play(self, script, queue=None):
        queue = queue or MessageQueue(self.kernel)
        for action in script:
            queue.put(action)
            self.delivered += 1
        queue.put(None)
        return queue


class ShadowContext:
    """The ``ctx`` handed to thread bodies during shadow driving.

    Mirrors :class:`~repro.os.threads.ThreadContext` but ``now`` is the
    thread's private virtual progress counter — the sum of its own CPU
    and sleep requests — not a simulation clock.
    """

    __slots__ = ("_thread", "_kernel")

    def __init__(self, thread, kernel):
        self._thread = thread
        self._kernel = kernel

    @property
    def now(self):
        return self._thread.clock

    @property
    def thread(self):
        return self._thread

    @property
    def kernel(self):
        return self._kernel

    def cpu(self, amount, work_class=None):
        from repro.os.work import WorkClass

        return _CpuRequest(amount, work_class or WorkClass.BALANCED)

    def sleep(self, duration):
        return _SleepRequest(duration)

    def wait(self, event):
        return _WaitRequest(event)


@dataclass
class ThreadInfo:
    """Summary of one thread's driven path."""

    process: str
    name: str
    tid: int
    priority: int
    dynamic: bool
    spawn_site: str
    cpu_us: int
    sleep_us: int
    steps: int
    forced_waits: int
    completed: bool
    truncated: bool
    error: str
    ops: list = field(default_factory=list)


@dataclass
class AppStructure:
    """Statically extracted concurrency structure of one app model."""

    app_name: str
    machine_name: str
    logical_cpus: int
    duration_us: int
    seed: int
    processes: list = field(default_factory=list)
    threads: list = field(default_factory=list)      # ThreadInfo
    sync: list = field(default_factory=list)         # SyncInfo
    build_ops: list = field(default_factory=list)    # SyncOp
    gpu_engines: dict = field(default_factory=dict)  # engine -> packets
    build_error: str = None

    @property
    def dynamic_spawns(self):
        """True when any thread was spawned from a driven body."""
        return any(t.dynamic for t in self.threads)

    @property
    def complete(self):
        """True when every thread path was explored to termination or
        to the end of the analysis window without truncation."""
        return (self.build_error is None
                and not any(t.truncated or t.error for t in self.threads))


def _drive(kernel, thread, end_time, max_steps):
    """Walk one thread body, recording requests until it terminates,
    its virtual clock passes ``end_time``, or a cap trips."""
    kernel.current_thread = thread
    idle_forced = 0
    try:
        generator = thread.body(ShadowContext(thread, kernel))
        if not hasattr(generator, "send"):
            # Plain-function bodies (no yields) terminate immediately.
            thread.completed = True
            return
        request = generator.send(None)
        while True:
            thread.steps += 1
            if thread.steps >= max_steps:
                thread.truncated = True
                generator.close()
                return
            if isinstance(request, _CpuRequest):
                thread.cpu_us += request.amount
                thread.clock += request.amount
                idle_forced = 0
                value = None
            elif isinstance(request, _SleepRequest):
                thread.sleep_us += request.duration
                thread.clock += request.duration
                idle_forced = 0
                value = None
            elif isinstance(request, _WaitRequest):
                event = request.event
                if getattr(event, "triggered", False) and event.ok:
                    value = event.value
                else:
                    # Force-wake: deliver None, as a drained queue or a
                    # cancelled gate would.  Bodies treating None as an
                    # end-of-stream sentinel exit cleanly.
                    thread.forced_waits += 1
                    idle_forced += 1
                    value = None
                    if idle_forced > MAX_IDLE_FORCED:
                        thread.truncated = True
                        generator.close()
                        return
            else:
                thread.error = (f"yielded non-request {request!r}; "
                                "expected ctx.cpu/ctx.sleep/ctx.wait")
                generator.close()
                return
            if thread.clock >= end_time and not isinstance(
                    request, _WaitRequest):
                # The analysis window is over for this thread; one more
                # resume lets `while ctx.now < end` loops exit cleanly.
                idle_forced += 1
                if idle_forced > MAX_IDLE_FORCED:
                    thread.truncated = True
                    generator.close()
                    return
            request = generator.send(value)
    except StopIteration:
        thread.completed = True
    except Exception as exc:  # body crashed under forced wakeups
        thread.error = f"{type(exc).__name__}: {exc}"
    finally:
        kernel.current_thread = None


def extract_structure(app, machine=None, duration_us=None, seed=0,
                      max_steps=DEFAULT_MAX_STEPS):
    """Shadow-build ``app`` and drive every thread body.

    ``app`` is an :class:`AppModel` instance or a registry key.  No
    simulation time passes: the returned :class:`AppStructure` is a
    function of the build code and the per-thread program order only.
    """
    if isinstance(app, str):
        app = create_app(app)
    if not isinstance(app, AppModel):
        raise TypeError(f"expected AppModel or registry key, got {app!r}")
    machine = machine or paper_machine()
    duration_us = (DEFAULT_SHADOW_DURATION_US
                   if duration_us is None else int(duration_us))
    kernel = ShadowKernel(machine, seed=seed)
    gpu = ShadowGpu(kernel)
    driver = ShadowDriver(kernel)
    runtime = AppRuntime(kernel, gpu, driver, duration_us, seed=seed)
    structure = AppStructure(
        app_name=app.name,
        machine_name=machine.cpu.name,
        logical_cpus=machine.logical_cpus,
        duration_us=duration_us,
        seed=seed)
    try:
        app.build(runtime)
    except Exception as exc:
        structure.build_error = f"{type(exc).__name__}: {exc}"
    kernel.building = False
    while kernel.undriven:
        _drive(kernel, kernel.undriven.pop(0), runtime.end_time, max_steps)

    structure.processes = sorted(runtime.process_names)
    structure.threads = [
        ThreadInfo(process=t.process.name, name=t.name, tid=t.tid,
                   priority=t.priority, dynamic=t.dynamic,
                   spawn_site=t.spawn_site, cpu_us=t.cpu_us,
                   sleep_us=t.sleep_us, steps=t.steps,
                   forced_waits=t.forced_waits, completed=t.completed,
                   truncated=t.truncated, error=t.error, ops=list(t.ops))
        for t in kernel.all_threads
    ]
    structure.sync = [kernel.sync_info[id(p)]
                      for p in kernel.sync_primitives]
    structure.build_ops = list(kernel.build_ops)
    engines = {}
    for _process, engine, _packet_type in gpu.packets:
        engines[engine] = engines.get(engine, 0) + 1
    structure.gpu_engines = engines
    if kernel.env.now != 0:
        raise AssertionError("shadow environment clock advanced")
    return structure
