"""Work/span analysis of the extracted thread structure.

Following TASKPROF's framing: *work* is the total CPU demand across
all thread paths, *span* is the longest single path, and work/span is
the parallelism the structure could exploit with unlimited cores.
The shadow harness drives each thread body independently (nominal,
uncontended request amounts), so per-thread ``cpu_us`` is each
thread's path length and the critical path is the heaviest thread.

The **enforced** static ceiling is deliberately coarser than
work/span: Eq. 1's TLP is the concurrency-weighted average of
simultaneously-busy cores over non-idle time, so it can never exceed
the machine's logical CPU count nor the number of threads the app can
ever have runnable.  ``tlp_bound = min(logical_cpus, width)`` is
therefore sound whenever structure extraction is complete; when it is
not (a truncated or crashed body may spawn more threads), the bound
falls back to ``logical_cpus`` alone.  Work/span parallelism is
reported alongside as the *informational* structural estimate.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkSpanResult:
    """Work/span summary and the enforced static TLP ceiling."""

    app_name: str
    work_us: int            # total CPU demand over all threads
    span_us: int            # heaviest single thread path
    critical_thread: str    # "process/thread" on the critical path
    parallelism: float      # work/span (informational estimate)
    width: int              # total threads observed (incl. dynamic)
    tlp_bound: float        # enforced ceiling: min(logical_cpus, width)
    complete: bool          # False -> bound fell back to logical_cpus


def analyze_work_span(structure):
    """Compute :class:`WorkSpanResult` for one extracted structure."""
    work = sum(t.cpu_us for t in structure.threads)
    span = 0
    critical = None
    for thread in structure.threads:
        if thread.cpu_us > span:
            span = thread.cpu_us
            critical = f"{thread.process}/{thread.name}"
    parallelism = (work / span) if span else float(bool(work))
    width = len(structure.threads)
    if structure.complete and width > 0:
        bound = float(min(structure.logical_cpus, width))
    else:
        bound = float(structure.logical_cpus)
    return WorkSpanResult(
        app_name=structure.app_name,
        work_us=work,
        span_us=span,
        critical_thread=critical,
        parallelism=parallelism,
        width=width,
        tlp_bound=bound,
        complete=structure.complete)


def check_bound(result, measured_tlp, machine_label=None, tolerance=1e-9):
    """Invariant: static ceiling >= simulated Eq.-1 TLP.

    Returns an error string when violated, else None.
    """
    if measured_tlp <= result.tlp_bound + tolerance:
        return None
    where = f" on {machine_label}" if machine_label else ""
    return (f"{result.app_name}: measured TLP {measured_tlp:.4f}{where} "
            f"exceeds static bound {result.tlp_bound:.4f} "
            f"(width={result.width}, complete={result.complete})")
