"""The 30-application benchmark suite of Table II.

``REGISTRY`` maps registry keys to model classes; :func:`create_app`
instantiates a fresh, optionally configured model.  ``SUITE`` lists
the keys in Table II order (by category).
"""

from repro.apps.assistant import Braina, Cortana
from repro.apps.base import AppModel, AppRuntime, Category
from repro.apps.browsing import Chrome, Edge, Firefox
from repro.apps.image_authoring import AutoCad, Maya3D, Photoshop
from repro.apps.mining import (
    BitcoinMiner,
    EasyMiner,
    PhoenixMiner,
    WindowsEthereumMiner,
)
from repro.apps.multimedia import QuickTime, VlcMediaPlayer, WindowsMediaPlayer
from repro.apps.office import AcrobatPro, Excel, Outlook, PowerPoint, Word
from repro.apps.transcoding import HandBrake, WinXVideoConverter
from repro.apps.video_authoring import PowerDirector, PremierePro
from repro.apps.vr_gaming import (
    ArizonaSunshine,
    Fallout4VR,
    ProjectCars2,
    RawData,
    SeriousSamVR,
    SpacePirateTrainer,
)

_ALL_MODELS = (
    # Image authoring
    Photoshop, Maya3D, AutoCad,
    # Office
    AcrobatPro, Excel, PowerPoint, Word, Outlook,
    # Multimedia playback
    QuickTime, WindowsMediaPlayer, VlcMediaPlayer,
    # Video authoring
    PowerDirector, PremierePro,
    # Video transcoding
    HandBrake, WinXVideoConverter,
    # Web browsing
    Firefox, Chrome, Edge,
    # VR gaming
    ArizonaSunshine, Fallout4VR, RawData, SeriousSamVR,
    SpacePirateTrainer, ProjectCars2,
    # Cryptocurrency mining
    BitcoinMiner, EasyMiner, PhoenixMiner, WindowsEthereumMiner,
    # Personal assistants
    Cortana, Braina,
)

REGISTRY = {cls.name: cls for cls in _ALL_MODELS}

#: Table II row order.
SUITE = tuple(cls.name for cls in _ALL_MODELS)

#: Category -> app keys, in Table II order.
CATEGORIES = {}
for _cls in _ALL_MODELS:
    CATEGORIES.setdefault(_cls.category, []).append(_cls.name)


def create_app(name, **config):
    """Instantiate a fresh application model by registry key."""
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; known: {sorted(REGISTRY)}"
        ) from None
    return cls(**config)


__all__ = [
    "AppModel",
    "AppRuntime",
    "CATEGORIES",
    "Category",
    "REGISTRY",
    "SUITE",
    "create_app",
]
