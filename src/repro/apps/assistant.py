"""Personal assistant models: Cortana and Braina (§IV-H).

The testbench issues a fixed sequence of spoken queries — daily news,
weather, alarms, general knowledge, definitions, simple math — with
strict timing, in the same voice (the paper's manual-testing protocol,
§III-E).  Assistants offload the heavy lifting to the datacenter, so
the local profile is: audio capture while the user speaks, a short
burst of local feature extraction / wake-word work, an idle wait for
the cloud, then response rendering with a little GPU animation — the
lowest-TLP category of the suite (average 1.3).
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import (compute, duty_cycle_thread,
                               housekeeping_thread, ui_pump)
from repro.automation import InputScript
from repro.gpu.device import ENGINE_3D
from repro.os.work import WorkClass
from repro.sim import MS, SECOND

#: The tested query mix (paper §IV-H).
QUERIES = ("daily-news", "weather-forecast", "set-alarm", "set-reminder",
           "general-knowledge", "word-definition", "simple-math")


class _Assistant(AppModel):
    """Shared listen -> local process -> cloud wait -> render loop."""

    category = Category.ASSISTANT
    process_name = "assistant.exe"
    #: Local speech feature extraction per query.
    local_nlp_us = 500 * MS
    #: Threads participating in local processing.
    nlp_threads = 2
    #: Simulated datacenter round-trip (idle locally).
    cloud_wait_us = 1500 * MS
    #: Response rendering CPU + GPU animation.
    render_us = 400 * MS
    gpu_anim_us = 0
    #: Continuous wake-word listener duty.
    listener_duty = 0.02

    def build(self, rt):
        process = rt.spawn_process(self.process_name)
        rng = rt.fork_rng()
        script = InputScript()
        gap = max(1, (rt.duration_us - 25 * SECOND) // len(QUERIES))
        for query in QUERIES:
            script.wait(gap)
            script.speak(query, int(2.4 * SECOND))
        rt.outputs["queries_answered"] = 0

        from repro.apps.blocks import fan_out

        def handle(ctx, action):
            # Audio capture ran while the user spoke; now extract
            # features locally (a short multi-threaded burst)...
            yield from compute(ctx, int(120 * MS), WorkClass.UI)
            done = fan_out(rt, process,
                           int(self.local_nlp_us * rng.uniform(0.8, 1.2)),
                           self.nlp_threads, WorkClass.MEMORY_BOUND,
                           chunk_us=10 * MS, name="nlp")
            yield ctx.wait(done)
            # ...wait for the datacenter...
            yield ctx.sleep(int(self.cloud_wait_us * rng.uniform(0.7, 1.3)))
            # ...and render the response (card UI, TTS, animation).
            if self.gpu_anim_us:
                frames = max(4, 10 * rt.duration_us // (60 * SECOND))
                for _ in range(frames):
                    rt.gpu.submit(process, ENGINE_3D, "anim-frame",
                                  self.gpu_anim_us)
                    yield ctx.cpu(max(1, int(self.render_us) // frames), WorkClass.UI)
                    yield ctx.sleep(30 * MS)
            else:
                yield from compute(ctx, self.render_us, WorkClass.UI)
            rt.outputs["queries_answered"] += 1

        ui_pump(rt, process, script, handle)
        duty_cycle_thread(rt, process, self.listener_duty,
                          period_us=100 * MS, work_class=WorkClass.UI,
                          name="wake-word-listener")
        housekeeping_thread(rt, process, period_us=24_000_000,
                            burst_us=5_000)


class Cortana(_Assistant):
    """Microsoft Cortana — Windows' built-in assistant."""

    name = "cortana"
    display_name = "Cortana"
    version = "Windows 10 1803"
    process_name = "Cortana.exe"
    paper_tlp = 1.4
    paper_gpu_util = 2.7
    local_nlp_us = 700 * MS
    nlp_threads = 3
    render_us = 500 * MS
    gpu_anim_us = int(24 * MS)
    listener_duty = 0.03


class Braina(_Assistant):
    """Braina 1.43 — a multi-functional interactive AI assistant.

    Does more NLP locally than Cortana but single-threaded, and draws
    a plain text UI: zero measured GPU utilization in Table II.
    """

    name = "braina"
    display_name = "Braina"
    version = "1.43"
    process_name = "Braina.exe"
    paper_tlp = 1.1
    paper_gpu_util = 0.0
    local_nlp_us = 900 * MS
    nlp_threads = 1
    render_us = 350 * MS
    gpu_anim_us = 0
    listener_duty = 0.02
