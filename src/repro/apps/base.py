"""Application model framework.

An :class:`AppModel` is a behavioural description of one benchmark
application: which processes and threads it runs, how they compute,
block, synchronize and talk to the GPU.  Models are *structural* — a
media player really has a demux thread feeding a decode pipeline, a
browser really spawns renderer processes — and the TLP / GPU numbers
fall out of the simulated schedule rather than being baked in.

The harness creates an :class:`AppRuntime` (kernel + GPU + input
driver + RNG + duration) and calls :meth:`AppModel.build`.
"""

import random
from enum import Enum


class Category(str, Enum):
    """The paper's nine benchmark categories (Table II)."""

    IMAGE_AUTHORING = "Image Authoring"
    OFFICE = "Office"
    MULTIMEDIA = "Multimedia Playback"
    VIDEO_AUTHORING = "Video Authoring"
    VIDEO_TRANSCODING = "Video Transcoding"
    WEB_BROWSING = "Web Browsing"
    VR_GAMING = "VR Gaming"
    MINING = "Cryptocurrency Mining"
    ASSISTANT = "Personal Assistant"


class AppRuntime:
    """Everything an application model needs to run once.

    Created by the harness; passed to :meth:`AppModel.build`.
    """

    def __init__(self, kernel, gpu, driver, duration_us, seed=0):
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        self.kernel = kernel
        self.gpu = gpu
        self.driver = driver
        self.duration_us = int(duration_us)
        self.start_time = kernel.env.now
        self.rng = random.Random(seed)
        #: Process names owned by the application (for TLP filtering).
        self.process_names = set()
        #: Application-specific outputs (frames transcoded, hash rate...).
        self.outputs = {}

    @property
    def env(self):
        return self.kernel.env

    @property
    def machine(self):
        return self.kernel.machine

    @property
    def end_time(self):
        """Simulation time at which the testbench window closes."""
        return self.start_time + self.duration_us

    def remaining(self):
        """Microseconds left in the testbench window."""
        return max(0, self.end_time - self.env.now)

    def spawn_process(self, name, image=None):
        """Create an application-owned OS process (tracked for TLP)."""
        process = self.kernel.spawn_process(name, image=image)
        self.process_names.add(name)
        return process

    def fork_rng(self):
        """An independent deterministic RNG derived from the run seed."""
        return random.Random(self.rng.getrandbits(48))


class AppModel:
    """Base class for the 30 benchmark application models."""

    #: Registry key, e.g. ``"handbrake"``.
    name = "app"
    #: Human-readable name with version, as listed in Table II.
    display_name = "Application"
    version = ""
    category = Category.OFFICE
    #: Paper-reported Table II values (used for validation/reporting;
    #: None for applications missing a column in the paper).
    paper_tlp = None
    paper_gpu_util = None

    def build(self, rt):
        """Spawn the application's processes and threads into ``rt``."""
        raise NotImplementedError

    def describe(self):
        """One-line description for reports."""
        return f"{self.display_name} ({self.category.value})"

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"
