"""Reusable behaviour blocks for application models.

Each helper either spawns threads with a characteristic schedule shape
(fan-out render, duty-cycle service, paced frame loop) or provides a
body fragment to ``yield from`` inside a custom thread body.
"""

from repro.gpu.device import ENGINE_3D
from repro.os.sync import CountdownLatch
from repro.os.work import WorkClass
from repro.sim import MS, SECOND

#: Default slice of nominal work a fan-out worker performs per step.
DEFAULT_CHUNK_US = 20 * MS


def fan_out(rt, process, total_us, workers, work_class=WorkClass.BALANCED,
            chunk_us=DEFAULT_CHUNK_US, imbalance=0.1, name="worker"):
    """Split ``total_us`` of nominal work across ``workers`` threads.

    Returns an event that fires when every worker finishes.  A small
    per-worker ``imbalance`` keeps the join ragged, like real parallel
    renders where tiles differ in cost.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    rng = rt.fork_rng()
    latch = CountdownLatch(rt.kernel, workers)
    share = total_us / workers

    def worker_body(amount):
        def body(ctx):
            remaining = int(amount)
            while remaining > 0:
                step = min(chunk_us, remaining)
                yield ctx.cpu(step, work_class)
                remaining -= step
            latch.count_down()

        return body

    for index in range(workers):
        amount = share * rng.uniform(1.0 - imbalance, 1.0 + imbalance)
        process.spawn_thread(worker_body(max(1, amount)),
                             name=f"{name}-{index}")
    return latch.done


def compute(ctx, total_us, work_class=WorkClass.BALANCED,
            chunk_us=DEFAULT_CHUNK_US):
    """Body fragment: compute ``total_us`` in chunks (``yield from``)."""
    remaining = int(total_us)
    while remaining > 0:
        step = min(chunk_us, remaining)
        yield ctx.cpu(step, work_class)
        remaining -= step


def duty_cycle_thread(rt, process, duty, period_us=200 * MS,
                      work_class=WorkClass.BALANCED, name="service",
                      jitter=0.3):
    """A thread that is busy ``duty`` of the time until the window ends.

    The workhorse for decode threads, UI message pumps, telemetry and
    any activity best described by its average CPU share.
    """
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    rng = rt.fork_rng()

    def body(ctx):
        while ctx.now < rt.end_time:
            scale = rng.uniform(1.0 - jitter, 1.0 + jitter)
            busy = max(1, int(period_us * duty * scale))
            idle = max(0, int(period_us * scale) - busy)
            yield ctx.cpu(min(busy, max(1, rt.end_time - ctx.now)),
                          work_class)
            if idle and ctx.now < rt.end_time:
                yield ctx.sleep(min(idle, max(1, rt.end_time - ctx.now)))

    return process.spawn_thread(body, name=name)


def gpu_stream_thread(rt, process, utilization, packet_ref_us=4 * MS,
                      engine=ENGINE_3D, packet_type="render",
                      name="gpu-feeder", cpu_overhead=0.02):
    """A thread that keeps the GPU ``utilization`` busy (0..1 of the
    *reference* device) with periodic packets.

    The caller specifies the intent in reference-GPU terms; on a weaker
    installed GPU the same packets run longer, raising the measured
    utilization — the paper's Fig. 9/10 behaviour.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    rng = rt.fork_rng()
    period = int(packet_ref_us / utilization)

    def body(ctx):
        while ctx.now < rt.end_time:
            overhead = max(1, int(packet_ref_us * cpu_overhead))
            yield ctx.cpu(overhead, WorkClass.UI)
            rt.gpu.submit(process, engine, packet_type,
                          max(1, int(packet_ref_us * rng.uniform(0.8, 1.2))))
            gap = max(1, int(period * rng.uniform(0.9, 1.1)) - overhead)
            yield ctx.sleep(min(gap, max(1, rt.end_time - ctx.now)))

    return process.spawn_thread(body, name=name)


def housekeeping_thread(rt, process, period_us=18 * SECOND,
                        burst_us=9 * MS, name="housekeeping"):
    """Rare full-width thread-pool bursts (GC, AV callbacks, timers).

    Windows applications host dozens of pool threads that occasionally
    fire together — the reason the paper sees *most* applications touch
    the instantaneous TLP maximum of 12 even when their average TLP is
    near 1 (e.g. Excel's 3.7% of time at 12).  The burst is tiny (a few
    ms across all logical CPUs every ~20 s), so average TLP and GPU
    utilization are essentially unchanged.
    """
    rng = rt.fork_rng()

    def body(ctx):
        while ctx.now < rt.end_time:
            yield ctx.sleep(max(1, min(
                int(period_us * rng.uniform(0.6, 1.4)),
                rt.end_time - ctx.now)))
            if ctx.now >= rt.end_time:
                return
            done = fan_out(rt, process,
                           burst_us * rt.machine.logical_cpus,
                           rt.machine.logical_cpus, WorkClass.UI,
                           chunk_us=burst_us, imbalance=0.05,
                           name="pool-burst")
            yield ctx.wait(done)

    return process.spawn_thread(body, name=name)


def ui_pump(rt, process, script, handler, idle_tick_us=500 * MS,
            name="ui-main"):
    """The application's UI thread: replay ``script`` via the runtime's
    input driver and invoke ``handler(ctx, action)`` for every action.

    ``handler`` is a generator function (it may compute, wait on
    events, spawn helpers).  Between inputs the thread sleeps, which is
    exactly the idle time Eq. 1 factors out.

    Each input emits ``input:<label>`` / ``response:<label>`` marks
    into the trace, from which :mod:`repro.metrics.responsiveness`
    recovers interactive response latencies — the metric Flautner et
    al.'s 2000 study focused on ("a second processor improved the
    responsiveness of interactive applications").
    """
    queue = rt.driver.play(script)
    session = rt.kernel.session

    def body(ctx):
        while True:
            action = yield ctx.wait(queue.get())
            if action is None:
                break
            session.emit_mark(process.name, process.pid,
                              f"input:{action.label}")
            yield ctx.cpu(2 * MS, WorkClass.UI)  # message dispatch
            yield from handler(ctx, action)
            session.emit_mark(process.name, process.pid,
                              f"response:{action.label}")
        while ctx.now < rt.end_time:
            yield ctx.sleep(min(idle_tick_us, max(1, rt.end_time - ctx.now)))
            yield ctx.cpu(MS, WorkClass.UI)  # idle repaint tick

    return process.spawn_thread(body, name=name)
