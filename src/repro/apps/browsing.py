"""Web-browser models: Chrome, Firefox, Edge.

Modern browsers are multi-process (§V-E): a browser process, a GPU
process, and renderer/content processes that isolate sites from each
other.  Chrome creates a renderer per site (roughly 10x the process
count of Firefox, which runs a small pool of content processes);
inactive tabs are throttled rather than stopped, which is why the
paper finds *multi-tab browsing now has higher TLP than single-tab* —
the reverse of Blake et al.'s 2010 result.

Four testbenches, as in the paper:

* ``multi-tab``  — YouTube video, ESPN, CNN, BestBuy, then a flash
  game, each in its own tab (backgrounded tabs keep ticking, throttled)
* ``single-tab`` — the same walk in one tab (old site torn down)
* ``espn``       — a content-heavy site with many active iframes
* ``wiki``       — a static site with little active content
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import compute, fan_out
from repro.gpu.device import ENGINE_3D, ENGINE_VIDEO_DECODE
from repro.os.work import WorkClass
from repro.sim import MS, SECOND

TESTS = ("multi-tab", "single-tab", "espn", "wiki")

#: Site behaviour profiles: load burst, helper threads during load,
#: active-content duty per tick thread, GPU weight relative to the
#: engine's base compositing load, ad/video iframes, special content.
SITE_PROFILES = {
    "youtube": dict(load_us=700 * MS, helpers=2, tick_duty=0.08,
                    gpu_factor=1.5, iframes=1, video=True, game=False),
    "espn": dict(load_us=900 * MS, helpers=3, tick_duty=0.30,
                 gpu_factor=1.35, iframes=4, video=False, game=False),
    "cnn": dict(load_us=800 * MS, helpers=2, tick_duty=0.18,
                gpu_factor=1.0, iframes=2, video=False, game=False),
    "bestbuy": dict(load_us=700 * MS, helpers=2, tick_duty=0.10,
                    gpu_factor=0.8, iframes=1, video=False, game=False),
    "flash-game": dict(load_us=400 * MS, helpers=1, tick_duty=0.05,
                       gpu_factor=1.2, iframes=1, video=False, game=True),
    "wikipedia": dict(load_us=500 * MS, helpers=2, tick_duty=0.02,
                      gpu_factor=0.25, iframes=1, video=False, game=False),
}

_TEST_WALKS = {
    "multi-tab": ("youtube", "espn", "cnn", "bestbuy", "flash-game"),
    "single-tab": ("youtube", "espn", "cnn", "bestbuy", "flash-game"),
    "espn": ("espn",),
    "wiki": ("wikipedia",),
}

#: Default background-tab throttling factor (timers in inactive tabs
#: are heavily rate-limited; Chrome 57 pioneered aggressive throttling
#: so its engine profile overrides this with a lower value).
_THROTTLE = 0.18


class _SiteSession:
    """Mutable state shared between a site's tick threads."""

    def __init__(self, profile):
        self.profile = profile
        self.focused = True
        self.alive = True


class _Browser(AppModel):
    """Shared multi-process browser skeleton."""

    category = Category.WEB_BROWSING
    exe = "browser.exe"
    #: One renderer process per site (Chrome) vs shared content pool.
    process_per_site = True
    #: Heavy iframes get their own site processes (Chrome site isolation).
    iframe_processes = True
    #: Base GPU compositing load (fraction of the reference GPU).
    gpu_weight = 0.05
    #: Global scale on renderer CPU activity (Edge is the lightest).
    cpu_scale = 1.0
    #: Extra worker threads a renderer wakes during content ticks.
    renderer_tick_threads = 2
    #: Background-tab activity as a fraction of foreground activity.
    bg_throttle = _THROTTLE

    def __init__(self, test="multi-tab"):
        if test not in TESTS:
            raise ValueError(f"unknown browser test {test!r}; one of {TESTS}")
        self.test = test

    # -- site machinery -------------------------------------------------

    def _renderer_threads(self, rt, process, session, rng):
        """Spawn load + tick threads for one site in ``process``."""
        from repro.os.sync import Semaphore

        profile = session.profile
        duty = profile["tick_duty"] * self.cpu_scale
        gates = [Semaphore(rt.kernel, 0)
                 for _ in range(self.renderer_tick_threads)]

        def tick_worker(gate):
            def body(ctx):
                while True:
                    yield ctx.wait(gate.acquire())
                    if not session.alive or ctx.now >= rt.end_time:
                        return
                    scale = 1.0 if session.focused else self.bg_throttle
                    busy = max(1, int(250 * MS * duty * 0.8 * scale
                                      * rng.uniform(0.6, 1.4)))
                    yield ctx.cpu(busy, WorkClass.BALANCED)

            return body

        def main_thread(ctx):
            yield from compute(
                ctx, int(profile["load_us"] * self.cpu_scale
                         * rng.uniform(0.85, 1.15)),
                WorkClass.MEMORY_BOUND, chunk_us=15 * MS)
            if profile["helpers"]:
                done = fan_out(rt, process,
                               int(400 * MS * self.cpu_scale),
                               profile["helpers"], WorkClass.BALANCED,
                               name="style-layout")
                yield ctx.wait(done)
            while session.alive and ctx.now < rt.end_time:
                period = 250 * MS if session.focused else SECOND
                scale = 1.0 if session.focused else self.bg_throttle
                # JS timers fire: the main thread and its workers
                # (DOM, style, compositing) run the tick together.
                for gate in gates:
                    gate.release()
                busy = max(1, int(period * duty * scale
                                  * rng.uniform(0.6, 1.4)))
                yield ctx.cpu(busy, WorkClass.BALANCED)
                if session.focused:
                    pause = period - busy
                else:
                    # Throttled background timers are coalesced to whole
                    # -second boundaries (the Chrome 57 throttling the
                    # paper cites), so every background tab ticks at the
                    # same instant — the overlap that makes multi-tab
                    # TLP exceed single-tab in 2018.
                    pause = ((ctx.now // period) + 1) * period - ctx.now
                yield ctx.sleep(max(1, min(pause, rt.end_time - ctx.now)))
            for gate in gates:
                gate.release()

        def game_thread(ctx):
            while session.alive and session.focused and ctx.now < rt.end_time:
                yield ctx.cpu(int(8 * MS * self.cpu_scale), WorkClass.UI)
                rt.gpu.submit(process, ENGINE_3D, "canvas-frame",
                              int(1.2 * MS))
                yield ctx.sleep(25 * MS)

        def video_thread(ctx):
            while session.alive and session.focused and ctx.now < rt.end_time:
                yield ctx.cpu(int(1 * MS), WorkClass.UI)
                done = rt.gpu.submit(process, ENGINE_VIDEO_DECODE, "nvdec",
                                     int(2.2 * MS))
                yield ctx.wait(done)
                yield ctx.sleep(29 * MS)

        for index, gate in enumerate(gates):
            process.spawn_thread(tick_worker(gate), name=f"tick-worker-{index}")
        process.spawn_thread(main_thread, name="renderer-main")
        if profile["game"]:
            process.spawn_thread(game_thread, name="game-loop")
        if profile["video"]:
            process.spawn_thread(video_thread, name="media")

    # -- build ----------------------------------------------------------

    def build(self, rt):
        rng = rt.fork_rng()
        browser = rt.spawn_process(self.exe)
        gpu_process = rt.spawn_process(self.exe.replace(".exe", "-gpu.exe"))
        walk = _TEST_WALKS[self.test]
        focus_span = rt.duration_us // len(walk)
        gpu_factor = {"value": 1.0}
        content_pool = []
        renderer_count = 0
        sessions = []
        rt.outputs["renderer_processes"] = 0
        # Firefox/Edge keep a small shared content-process pool; with a
        # single tab one content process suffices.
        pool_size = 1 if self.test in ("single-tab", "espn", "wiki") else 4

        def make_renderer(site):
            nonlocal renderer_count
            if self.process_per_site:
                renderer_count += 1
                return rt.spawn_process(
                    f"{self.exe.replace('.exe', '')}-renderer-{renderer_count}.exe")
            if len(content_pool) < pool_size:
                renderer_count += 1
                content_pool.append(rt.spawn_process(
                    f"{self.exe.replace('.exe', '')}-content-{renderer_count}.exe"))
            return content_pool[(renderer_count - 1) % len(content_pool)]

        def controller(ctx):
            for site in walk:
                profile = SITE_PROFILES[site]
                # Network fetch burst in the browser process.
                yield ctx.cpu(int(120 * MS * self.cpu_scale),
                              WorkClass.MEMORY_BOUND)
                if self.test == "single-tab":
                    for session in sessions:
                        session.alive = False
                for session in sessions:
                    session.focused = False
                gpu_factor["value"] = profile["gpu_factor"]
                frames = profile["iframes"] if self.iframe_processes else 1
                for index in range(frames):
                    session = _SiteSession(dict(
                        profile,
                        tick_duty=profile["tick_duty"] / max(1, frames - 1)
                        if index > 0 else profile["tick_duty"],
                        video=profile["video"] and index == 0,
                        game=profile["game"] and index == 0,
                    ))
                    sessions.append(session)
                    renderer = make_renderer(site)
                    self._renderer_threads(rt, renderer, session, rng)
                rt.outputs["renderer_processes"] = renderer_count
                yield ctx.sleep(max(1, min(focus_span,
                                           rt.end_time - ctx.now)))
                if ctx.now >= rt.end_time:
                    break

        def ui_thread(ctx):
            while ctx.now < rt.end_time:
                yield ctx.cpu(int(4 * MS * self.cpu_scale), WorkClass.UI)
                yield ctx.sleep(120 * MS)

        def compositor(ctx):
            # The GPU process composites the visible tab continuously.
            packet = 4 * MS
            while ctx.now < rt.end_time:
                load = self.gpu_weight * gpu_factor["value"]
                yield ctx.cpu(int(0.4 * MS), WorkClass.UI)
                rt.gpu.submit(gpu_process, ENGINE_3D, "composite",
                              max(1, int(packet * rng.uniform(0.8, 1.2))))
                yield ctx.sleep(max(1, int(packet / max(0.005, load))
                                    - int(0.4 * MS)))

        browser.spawn_thread(controller, name="tab-controller")
        browser.spawn_thread(ui_thread, name="ui")
        gpu_process.spawn_thread(compositor, name="compositor")


class Chrome(_Browser):
    """Google Chrome v66: a renderer process per site, site isolation."""

    name = "chrome"
    display_name = "Chrome"
    version = "v66"
    exe = "chrome.exe"
    category = Category.WEB_BROWSING
    paper_tlp = 2.2
    paper_gpu_util = 5.1
    process_per_site = True
    iframe_processes = True
    gpu_weight = 0.027
    cpu_scale = 1.0
    bg_throttle = 0.05
    renderer_tick_threads = 2


class Firefox(_Browser):
    """Mozilla Firefox v60: small content-process pool, GPU-heavy."""

    name = "firefox"
    display_name = "Firefox"
    version = "v60"
    exe = "firefox.exe"
    paper_tlp = 2.2
    paper_gpu_util = 8.6
    process_per_site = False
    iframe_processes = False
    gpu_weight = 0.058
    cpu_scale = 1.35
    bg_throttle = 0.30


class Edge(_Browser):
    """Microsoft Edge 42: built-in, tuned for power efficiency."""

    name = "edge"
    display_name = "Edge"
    version = "42.17134"
    exe = "MicrosoftEdge.exe"
    paper_tlp = 2.0
    paper_gpu_util = 4.0
    process_per_site = False
    iframe_processes = False
    gpu_weight = 0.017
    cpu_scale = 0.95
    bg_throttle = 0.25
