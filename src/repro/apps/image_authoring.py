"""Image authoring models: Photoshop, Maya 3D, AutoCAD.

The paper's testbenches (§IV-A):

* **Photoshop** — five custom filters applied serially to a 100-MP
  photograph.  Filter rendering fans out across every logical CPU
  (Fig. 6 shows it reaching the instantaneous maximum of 12), while
  the interaction between filters is single-threaded.
* **Maya 3D** — open a complex model, smooth it, software-render with
  raytracing (highly parallel), hardware-render with fog/motion blur
  (GPU), then camera manipulation.
* **AutoCAD** — import a floorplan, pan/zoom/draw/fillet/mirror/text:
  a classically single-threaded CAD interaction loop on top of a
  GPU-rendered viewport.
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import (compute, fan_out, gpu_stream_thread,
                               housekeeping_thread, ui_pump)
from repro.automation import InputScript
from repro.gpu.device import ENGINE_3D
from repro.os.work import WorkClass
from repro.sim import MS, SECOND


class Photoshop(AppModel):
    """Adobe Photoshop CC applying 5 filters to a 100-MP image.

    Each filter is two interactions: opening the filter dialog
    (``filter-N``) and confirming it (``enter``), which runs the
    serial data preparation and then fans the render across every
    logical CPU.

    ``speculative=True`` enables the paper's §VII suggestion: while
    the user configures the dialog, a prefetch thread speculatively
    pulls the filter's working set on-chip ("the core can start
    fetching off-chip data locally, while the user is specifying
    filter configurations"), shortening the serial phase of the render
    when the prediction is right — at the cost of wasted work when it
    is not.
    """

    name = "photoshop"
    display_name = "Adobe Photoshop CC"
    version = "CC 2018"
    category = Category.IMAGE_AUTHORING
    paper_tlp = 8.6
    paper_gpu_util = 1.6
    #: Nominal CPU work per filter render, split across all cores.
    filter_work_us = 24 * SECOND
    #: Serial pre/post processing around each parallel render.
    filter_serial_us = 1400 * MS
    n_filters = 5
    #: Probability a speculative prefetch guessed the right filter.
    speculation_accuracy = 0.8
    #: Serial-phase share remaining after a correct prefetch.
    prefetched_serial_share = 0.35

    def __init__(self, speculative=False):
        self.speculative = speculative

    def build(self, rt):
        process = rt.spawn_process("Photoshop.exe")
        rng = rt.fork_rng()
        script = InputScript()
        think = max(1, (rt.duration_us - 42 * SECOND) // (self.n_filters + 1))
        for index in range(self.n_filters):
            script.wait(think).click(f"filter-{index}").wait(600 * MS)
            script.key("enter")
        rt.outputs["filters_rendered"] = 0
        rt.outputs["speculations_wasted"] = 0
        pending = {}

        def prefetch_body(ctx):
            yield from compute(ctx, int(self.filter_serial_us * 0.8),
                               WorkClass.MEMORY_BOUND, chunk_us=15 * MS)

        def handle(ctx, action):
            if action.label.startswith("filter"):
                yield ctx.cpu(int(400 * MS), WorkClass.UI)  # open dialog
                pending["filter"] = action.label
                pending["prefetched"] = False
                if self.speculative:
                    if rng.random() < self.speculation_accuracy:
                        pending["prefetched"] = True
                    else:
                        rt.outputs["speculations_wasted"] += 1
                    process.spawn_thread(prefetch_body, name="prefetch")
            elif action.label == "enter" and "filter" in pending:
                serial = self.filter_serial_us
                if pending.pop("prefetched", False):
                    serial = int(serial * self.prefetched_serial_share)
                filter_label = pending.pop("filter")
                yield from compute(ctx, serial, WorkClass.MEMORY_BOUND)
                workers = rt.machine.logical_cpus
                work = int(self.filter_work_us * rng.uniform(0.9, 1.1))
                done = fan_out(rt, process, work, workers,
                               WorkClass.FU_BOUND, chunk_us=30 * MS,
                               name=f"tile-{filter_label}")
                yield ctx.wait(done)
                yield from compute(ctx, self.filter_serial_us // 2,
                                   WorkClass.MEMORY_BOUND)
                rt.outputs["filters_rendered"] += 1

        ui_pump(rt, process, script, handle)
        gpu_stream_thread(rt, process, 0.016, packet_ref_us=3 * MS,
                          packet_type="canvas-composite", name="gpu-canvas")


class Maya3D(AppModel):
    """Autodesk Maya: smooth, software raytrace, hardware render, camera."""

    name = "maya"
    display_name = "Autodesk Maya 3D"
    version = "2019"
    category = Category.IMAGE_AUTHORING
    paper_tlp = 2.7
    paper_gpu_util = 9.9
    raytrace_work_us = 12 * SECOND
    smooth_work_us = 4 * SECOND

    def build(self, rt):
        process = rt.spawn_process("maya.exe")
        script = (InputScript()
                  .wait(2 * SECOND).click("open-model")
                  .wait(4 * SECOND).click("smooth")
                  .wait(6 * SECOND).click("software-render")
                  .wait(18 * SECOND).click("hardware-render")
                  .wait(10 * SECOND).drag("rotate-camera", 2 * SECOND)
                  .drag("pan-camera", 2 * SECOND)
                  .drag("zoom-camera", 2 * SECOND))
        script = script.stretched_to(int(rt.duration_us * 0.95))

        def handle(ctx, action):
            if action.label == "open-model":
                yield from compute(ctx, 3 * SECOND, WorkClass.MEMORY_BOUND)
            elif action.label == "smooth":
                yield from compute(ctx, 1 * SECOND, WorkClass.BALANCED)
                done = fan_out(rt, process, self.smooth_work_us, 4,
                               WorkClass.BALANCED, name="smooth")
                yield ctx.wait(done)
            elif action.label == "software-render":
                # Scene translation / BVH build is serial before the
                # raytrace fans out to every core.
                yield from compute(ctx, 4 * SECOND, WorkClass.MEMORY_BOUND)
                done = fan_out(rt, process, self.raytrace_work_us,
                               rt.machine.logical_cpus,
                               WorkClass.FU_BOUND, name="raytrace")
                yield ctx.wait(done)
                yield from compute(ctx, 1 * SECOND, WorkClass.UI)
            elif action.label == "hardware-render":
                # Fog + motion blur + AA on the GPU; CPU feeds batches.
                batches = max(10, 50 * rt.duration_us // (60 * SECOND))
                for _ in range(batches):
                    yield ctx.cpu(30 * MS, WorkClass.UI)
                    done = rt.gpu.submit(process, ENGINE_3D, "hw-render",
                                         110 * MS)
                    yield ctx.wait(done)
            else:  # camera manipulation: light CPU + viewport redraws
                for _ in range(15):
                    yield ctx.cpu(25 * MS, WorkClass.UI)
                    rt.gpu.submit(process, ENGINE_3D, "viewport", 8 * MS)
                    yield ctx.sleep(60 * MS)

        ui_pump(rt, process, script, handle)


class AutoCad(AppModel):
    """Autodesk AutoCAD LT: floorplan editing on a GPU viewport."""

    name = "autocad"
    display_name = "Autodesk AutoCAD LT"
    version = "LT 2019"
    category = Category.IMAGE_AUTHORING
    paper_tlp = 1.2
    paper_gpu_util = 9.0

    def build(self, rt):
        process = rt.spawn_process("acad.exe")
        operations = ("import-floorplan", "pan", "zoom", "draw-line",
                      "fillet", "mirror", "enter-text")
        script = InputScript()
        for name in operations:
            script.wait(900 * MS)
            script.drag(name, 700 * MS)
        script = script.repeated(6, gap_us=1200 * MS)
        script = script.stretched_to(int(rt.duration_us * 0.95))

        def handle(ctx, action):
            # Geometry ops are serial in the command pipeline.
            work = int(250 * MS) if action.label == "import-floorplan" \
                else int(90 * MS)
            yield from compute(ctx, work, WorkClass.UI, chunk_us=15 * MS)
            if action.label in ("fillet", "mirror"):
                # A short regen fans to a helper thread.
                done = fan_out(rt, process, 130 * MS, 2,
                               WorkClass.BALANCED, name="regen")
                yield ctx.wait(done)
            rt.gpu.submit(process, ENGINE_3D, "viewport-redraw", 10 * MS)

        ui_pump(rt, process, script, handle)
        housekeeping_thread(rt, process)
        # Continuous viewport refresh keeps the GPU near 9%.
        gpu_stream_thread(rt, process, 0.082, packet_ref_us=6 * MS,
                          packet_type="viewport", name="gpu-viewport")
