"""Cryptocurrency mining models (§IV-G).

Four miners spanning the paper's observations:

* **Bitcoin Miner** — GPU sha256d kernels back-to-back plus a handful
  of CPU mining threads (TLP 5.4, GPU 98.9%).
* **EasyMiner** — "assigns independent threads to each of the logical
  cores" (§V-C.1): CPU TLP scales linearly with core count (Fig. 4)
  while the GPU stays saturated.
* **PhoenixMiner** — GPU-only; two command queues execute packets
  simultaneously throughout, which saturates the paper's sum-of-ratios
  utilization metric (the Table II "*100.0" footnote).
* **Windows Ethereum Miner** — GPU-only ethash; on the pre-boom Kepler
  GTX 680 the unoptimized kernels leave inter-packet gaps, so — unlike
  every other workload — its utilization is *higher* on the superior
  GPU (Fig. 10).
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import duty_cycle_thread, housekeeping_thread
from repro.gpu.device import ENGINE_COMPUTE, ENGINE_COPY
from repro.gpu.mining import BATCH_REF_US, HASHES_PER_BATCH, MiningStats
from repro.os.work import WorkClass
from repro.sim import MS, SECOND


class _Miner(AppModel):
    """Shared mining skeleton: GPU batch stream + optional CPU threads."""

    category = Category.MINING
    process_name = "miner.exe"
    algorithm = "sha256d"
    #: Number of CPU mining threads; -1 means one per logical CPU.
    cpu_threads = 0
    cpu_thread_duty = 0.97
    #: Hashes per second contributed by one fully-busy CPU thread.
    cpu_hash_rate = 350_000.0
    #: Seconds of GPU work submitted per batch (reference GPU).
    batch_streams = 1
    #: Host-side gap between batch submissions (driver overhead).
    submit_gap_us = 2 * MS
    ui_duty = 0.02

    def build(self, rt):
        process = rt.spawn_process(self.process_name)
        rng = rt.fork_rng()
        stats = MiningStats(self.algorithm)
        rt.outputs["mining_stats"] = stats
        batch_us = BATCH_REF_US[self.algorithm]
        engines = [ENGINE_COMPUTE, ENGINE_COPY][:self.batch_streams]

        def gpu_stream(engine):
            def body(ctx):
                while ctx.now < rt.end_time:
                    yield ctx.cpu(max(1, self.submit_gap_us // 2),
                                  WorkClass.UI)
                    done = rt.gpu.submit(
                        process, engine, self.algorithm,
                        max(1, int(batch_us * rng.uniform(0.95, 1.05))))
                    yield ctx.wait(done)
                    stats.add_batch()
                    rt.outputs["hash_rate"] = stats.hash_rate(
                        max(1, ctx.now - rt.start_time))
                    yield ctx.sleep(max(1, self.submit_gap_us // 2))

            return body

        for index, engine in enumerate(engines):
            process.spawn_thread(gpu_stream(engine),
                                 name=f"gpu-stream-{index}")

        n_cpu = (rt.machine.logical_cpus if self.cpu_threads < 0
                 else self.cpu_threads)

        def cpu_miner(ctx):
            period = 100 * MS
            while ctx.now < rt.end_time:
                busy = max(1, int(period * self.cpu_thread_duty
                                  * rng.uniform(0.95, 1.05)))
                yield ctx.cpu(busy, WorkClass.FU_BOUND)
                stats.add_cpu_hashes(self.cpu_hash_rate * busy / SECOND)
                idle = period - busy
                if idle > 0 and ctx.now < rt.end_time:
                    yield ctx.sleep(min(idle, max(1, rt.end_time - ctx.now)))

        for index in range(n_cpu):
            process.spawn_thread(cpu_miner, name=f"cpu-miner-{index}")
        duty_cycle_thread(rt, process, self.ui_duty,
                          work_class=WorkClass.UI, name="ui")
        if self.algorithm == "ethash":
            # Periodic DAG-epoch rebuild fans across the CPU briefly.
            housekeeping_thread(rt, process, period_us=28 * SECOND,
                                burst_us=7 * MS, name="dag-rebuild")


class BitcoinMiner(_Miner):
    """Bitcoin Miner 1.54.0 — hybrid CPU+GPU sha256d miner."""

    name = "bitcoin-miner"
    display_name = "Bitcoin Miner"
    version = "1.54.0"
    process_name = "BitcoinMiner.exe"
    paper_tlp = 5.4
    paper_gpu_util = 98.9
    algorithm = "sha256d"
    cpu_threads = 6
    cpu_thread_duty = 0.90
    submit_gap_us = int(2.2 * MS)


class EasyMiner(_Miner):
    """EasyMiner v0.87 — one CPU mining thread per logical core."""

    name = "easyminer"
    display_name = "EasyMiner"
    version = "v0.87"
    process_name = "EasyMiner.exe"
    paper_tlp = 11.9
    paper_gpu_util = 96.1
    algorithm = "sha256d"
    cpu_threads = -1
    submit_gap_us = 4 * MS


class PhoenixMiner(_Miner):
    """PhoenixMiner 3.0c — dual-queue GPU ethash miner.

    Two packets execute simultaneously throughout the run; the
    aggregate-of-ratios metric saturates at 100% (Table II footnote).
    Requires a Pascal-class GPU — the paper notes it does not support
    the GTX 680.
    """

    name = "phoenixminer"
    display_name = "PhoenixMiner"
    version = "3.0c"
    process_name = "PhoenixMiner.exe"
    paper_tlp = 1.0
    paper_gpu_util = 100.0
    algorithm = "ethash"
    cpu_threads = 0
    batch_streams = 2
    submit_gap_us = 1 * MS
    ui_duty = 0.04

    #: The 2018 Ethereum DAG plus working buffers (GB) — must fit in
    #: VRAM, which is why the 2 GB GTX 680 is unsupported.
    dag_footprint_gb = 3

    def build(self, rt):
        gpu = rt.machine.gpu
        if gpu.vram_gb < self.dag_footprint_gb or not gpu.mining_optimized:
            raise ValueError(
                f"{self.display_name} does not support {gpu.name}")
        super().build(rt)


class WindowsEthereumMiner(_Miner):
    """Windows Ethereum Miner 1.5.27 — single-queue GPU ethash miner."""

    name = "wineth"
    display_name = "Windows Ethereum Miner"
    version = "1.5.27"
    process_name = "WinEth.exe"
    paper_tlp = 1.0
    paper_gpu_util = 99.7
    algorithm = "ethash"
    cpu_threads = 0
    submit_gap_us = 1 * MS
    ui_duty = 0.04
