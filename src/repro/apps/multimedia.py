"""Multimedia playback models: QuickTime, Windows Media Player, VLC.

The paper's testbench plays a 480p and then a 1080p version of the
same video (§IV-C).  Decode runs on the GPU's fixed-function video
engine (NVDEC packets per frame), which is why the category averages
16% GPU utilization while CPU-side TLP stays near 1.4: the CPU only
demuxes, paces and composites.  VLC does additional software
filtering, giving it the highest CPU footprint of the three.
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import duty_cycle_thread, housekeeping_thread
from repro.gpu.device import ENGINE_3D, ENGINE_VIDEO_DECODE
from repro.os.work import WorkClass
from repro.sim import MS

#: Playback frame rate of the test clip.
PLAYBACK_FPS = 30


class _MediaPlayer(AppModel):
    """Shared demux -> decode -> present pipeline."""

    category = Category.MULTIMEDIA
    process_name = "player.exe"
    #: NVDEC packet per frame at 480p / 1080p (reference-GPU µs).
    decode_480p_us = int(3.4 * MS)
    decode_1080p_us = int(7.2 * MS)
    #: CPU cost per frame on the pacing/demux thread.
    demux_frame_us = int(0.7 * MS)
    present_frame_us = int(0.9 * MS)
    #: Duty of the UI/progress thread.
    ui_duty = 0.015
    #: Per-frame CPU cost of pipeline stage threads woken every frame
    #: (video output conversion, software filters, audio mixing...).
    #: Each entry spawns a thread: (name, per-frame µs).
    frame_workers = ()

    def build(self, rt):
        process = rt.spawn_process(self.process_name)
        kernel = rt.kernel
        rng = rt.fork_rng()
        frame_period = 1_000_000 // PLAYBACK_FPS
        rt.outputs["frames_played"] = 0

        from repro.automation import InputScript
        from repro.os.sync import Semaphore

        # The tester opens the 480p file, then the 1080p version of
        # the same video (§IV-C).  Driving this through the input layer
        # makes the §III-D automation-vs-manual comparison meaningful
        # for players: a human starts playback later and less
        # consistently than AutoIt does.
        script = (InputScript()
                  .wait(400 * MS).click("open-480p")
                  .wait(rt.duration_us // 2).click("open-1080p"))
        input_queue = rt.driver.play(script)
        playing = {"quality": None}
        started = Semaphore(kernel, 0)

        def control_thread(ctx):
            while True:
                action = yield ctx.wait(input_queue.get())
                if action is None:
                    return
                yield ctx.cpu(6 * MS, WorkClass.UI)  # open-file dialog
                first = playing["quality"] is None
                playing["quality"] = action.label.split("-")[1]
                if first:
                    started.release()

        process.spawn_thread(control_thread, name="control")

        stage_gates = []

        def stage_thread(cost):
            gate = Semaphore(kernel, 0)
            stage_gates.append(gate)

            def body(ctx):
                while True:
                    yield ctx.wait(gate.acquire())
                    if ctx.now >= rt.end_time:
                        return
                    yield ctx.cpu(max(1, int(cost * rng.uniform(0.8, 1.2))),
                                  WorkClass.MEMORY_BOUND)

            return body

        for worker_name, cost in self.frame_workers:
            process.spawn_thread(stage_thread(cost), name=worker_name)

        def playback(ctx):
            yield ctx.wait(started.acquire())
            while ctx.now < rt.end_time:
                frame_start = ctx.now
                cost = (self.decode_480p_us if playing["quality"] == "480p"
                        else self.decode_1080p_us)
                yield ctx.cpu(self.demux_frame_us, WorkClass.MEMORY_BOUND)
                decode = rt.gpu.submit(
                    process, ENGINE_VIDEO_DECODE, "nvdec",
                    max(1, int(cost * rng.uniform(0.85, 1.15))))
                yield ctx.wait(decode)
                for gate in stage_gates:  # wake pipeline stages
                    gate.release()
                rt.gpu.submit(process, ENGINE_3D, "present",
                              int(0.3 * MS))
                yield ctx.cpu(self.present_frame_us, WorkClass.UI)
                rt.outputs["frames_played"] += 1
                remaining = frame_period - (ctx.now - frame_start)
                if remaining > 0 and ctx.now < rt.end_time:
                    yield ctx.sleep(min(remaining,
                                        max(1, rt.end_time - ctx.now)))
            for gate in stage_gates:
                gate.release()

        process.spawn_thread(playback, name="playback")
        duty_cycle_thread(rt, process, self.ui_duty,
                          work_class=WorkClass.UI, name="ui")
        housekeeping_thread(rt, process, period_us=26_000_000,
                            burst_us=4_500)


class QuickTime(_MediaPlayer):
    """QuickTime Player 7.7.9 — the leanest pipeline of the three."""

    name = "quicktime"
    display_name = "QuickTime Player"
    version = "7.7.9"
    process_name = "QuickTimePlayer.exe"
    paper_tlp = 1.1
    paper_gpu_util = 16.4
    decode_480p_us = int(3.4 * MS)
    decode_1080p_us = int(7.0 * MS)
    ui_duty = 0.01
    frame_workers = (("video-out", int(0.25 * MS)),)


class WindowsMediaPlayer(_MediaPlayer):
    """Windows Media Player 12.0."""

    name = "wmp"
    display_name = "Windows Media Player"
    version = "12.0"
    process_name = "wmplayer.exe"
    paper_tlp = 1.3
    paper_gpu_util = 16.1
    decode_480p_us = int(3.3 * MS)
    decode_1080p_us = int(6.9 * MS)
    ui_duty = 0.03
    frame_workers = (("mf-session", int(0.55 * MS)),
                     ("audio", int(0.3 * MS)))


class VlcMediaPlayer(_MediaPlayer):
    """VLC Media Player 3.0.3 — software filter chain on top of NVDEC."""

    name = "vlc"
    display_name = "VLC Media Player"
    version = "3.0.3"
    process_name = "vlc.exe"
    paper_tlp = 1.8
    paper_gpu_util = 15.7
    decode_480p_us = int(3.2 * MS)
    decode_1080p_us = int(6.7 * MS)
    demux_frame_us = int(1.1 * MS)
    present_frame_us = int(1.4 * MS)
    ui_duty = 0.04
    frame_workers = (("video-out", int(2.6 * MS)),
                     ("sw-filter", int(1.7 * MS)),
                     ("audio", int(0.8 * MS)))
