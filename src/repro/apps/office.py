"""Office productivity models: Acrobat, Excel, PowerPoint, Word, Outlook.

Office applications are the paper's low-TLP baseline (category average
1.4): a single UI thread processes scripted edits with short serial
bursts, helper threads appear occasionally, and the GPU is used only
for compositing/animation.  Excel stands out: its recalculation engine
fans out across all logical CPUs, and the paper highlights that it
spends 3.7% of its time using the maximum of 12 — we reproduce exactly
that structure with a parallel recalc on compute-heavy operations.
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import (compute, duty_cycle_thread, fan_out,
                               gpu_stream_thread, housekeeping_thread, ui_pump)
from repro.automation import InputScript
from repro.os.work import WorkClass
from repro.sim import MS, SECOND


class _OfficeApp(AppModel):
    """Shared scripted-editing skeleton for the office suite."""

    category = Category.OFFICE
    process_name = "office.exe"
    #: (label, serial CPU per op, parallel recalc work or 0)
    operations = ()
    #: Duty cycle of a steady helper thread (0 disables it).
    helper_duty = 0.0
    helper_name = "helper"
    #: Work done by the document-render thread alongside each UI op,
    #: as a fraction of the op's serial cost (drives c2 overlap).
    render_overlap = 0.35
    #: Continuous GPU compositing load (fraction of the reference GPU).
    gpu_load = 0.0
    op_repeats = 8

    def build(self, rt):
        process = rt.spawn_process(self.process_name)
        kernel = rt.kernel
        rng = rt.fork_rng()
        script = InputScript()
        for label, _serial, _parallel in self.operations:
            script.wait(700 * MS)
            script.click(label)
        script = script.repeated(self.op_repeats, gap_us=1500 * MS)
        script = script.stretched_to(int(rt.duration_us * 0.96))
        op_table = {label: (serial, parallel)
                    for label, serial, parallel in self.operations}

        from repro.os.sync import MessageQueue

        render_queue = MessageQueue(kernel)

        def render_thread(ctx):
            while True:
                work = yield ctx.wait(render_queue.get())
                if work is None:
                    return
                yield from compute(ctx, work, WorkClass.UI,
                                   chunk_us=15 * MS)

        def handle(ctx, action):
            serial, parallel = op_table[action.label]
            work = int(serial * rng.uniform(0.7, 1.3))
            if self.render_overlap:
                # Layout/paint proceeds on the render thread while the
                # UI thread executes the operation itself.
                yield ctx.wait(render_queue.put(
                    max(1, int(work * self.render_overlap))))
            yield from compute(ctx, max(1, work), WorkClass.UI,
                               chunk_us=15 * MS)
            if parallel:
                done = fan_out(rt, process, parallel,
                               rt.machine.logical_cpus,
                               WorkClass.MEMORY_BOUND, chunk_us=10 * MS,
                               name=f"recalc-{action.label}")
                yield ctx.wait(done)

        process.spawn_thread(render_thread, name="doc-render")
        ui_pump(rt, process, script, handle)
        housekeeping_thread(rt, process)
        if self.helper_duty:
            duty_cycle_thread(rt, process, self.helper_duty,
                              work_class=WorkClass.UI,
                              name=self.helper_name)
        if self.gpu_load:
            gpu_stream_thread(rt, process, self.gpu_load,
                              packet_ref_us=2 * MS,
                              packet_type="composite", name="gpu-composite")


class AcrobatPro(_OfficeApp):
    """Adobe Acrobat Pro DC: scan, combine, watermark, export (no GPU)."""

    name = "acrobat"
    display_name = "Adobe Acrobat Pro DC"
    version = "DC 2018"
    process_name = "Acrobat.exe"
    paper_tlp = 1.3
    paper_gpu_util = 0.0
    operations = (
        ("scan-document", 500 * MS, 0),
        ("combine-files", 700 * MS, 0),
        ("manipulate-pages", 250 * MS, 0),
        ("insert-links", 150 * MS, 0),
        ("add-watermark", 300 * MS, 0),
        ("add-signature", 200 * MS, 0),
        ("export-slides", 900 * MS, 0),
    )
    helper_duty = 0.06
    helper_name = "pdf-render"
    op_repeats = 6


class Excel(_OfficeApp):
    """Microsoft Excel 2016 on a 1-million-row spreadsheet.

    Sort / mean / histogram operations hit the multithreaded recalc
    engine — short full-width fan-outs that give Excel its burst to
    the instantaneous TLP maximum.
    """

    name = "excel"
    display_name = "Microsoft Excel"
    version = "2016"
    process_name = "EXCEL.EXE"
    paper_tlp = 2.1
    paper_gpu_util = 2.1
    render_overlap = 0.75
    operations = (
        ("open-sheet", 600 * MS, 0),
        ("copy-columns", 250 * MS, 0),
        ("zoom-pan", 120 * MS, 0),
        ("compute-means", 150 * MS, int(0.18 * SECOND)),
        ("sort-rows", 180 * MS, int(0.22 * SECOND)),
        ("filter-rows", 150 * MS, int(0.12 * SECOND)),
        ("plot-histogram", 250 * MS, int(0.10 * SECOND)),
    )
    helper_duty = 0.05
    helper_name = "calc-service"
    gpu_load = 0.02
    op_repeats = 7


class PowerPoint(_OfficeApp):
    """Microsoft PowerPoint 2016: slide authoring with animations."""

    name = "powerpoint"
    display_name = "Microsoft PowerPoint"
    version = "2016"
    process_name = "POWERPNT.EXE"
    paper_tlp = 1.2
    paper_gpu_util = 4.0
    render_overlap = 0.12
    operations = (
        ("open-template", 500 * MS, 0),
        ("add-bullets", 160 * MS, 0),
        ("format-text", 120 * MS, 0),
        ("add-shapes", 180 * MS, 0),
        ("animate-shapes", 250 * MS, 0),
        ("insert-picture", 300 * MS, 0),
        ("create-table", 220 * MS, 0),
    )
    gpu_load = 0.038
    op_repeats = 7


class Word(_OfficeApp):
    """Microsoft Word 2016: document editing with images."""

    name = "word"
    display_name = "Microsoft Word"
    version = "2016"
    process_name = "WINWORD.EXE"
    paper_tlp = 1.3
    paper_gpu_util = 1.7
    operations = (
        ("new-document", 300 * MS, 0),
        ("type-paragraph", 200 * MS, 0),
        ("delete-text", 90 * MS, 0),
        ("change-formatting", 150 * MS, 0),
        ("insert-image", 350 * MS, 0),
        ("scale-image", 180 * MS, 0),
        ("move-image", 140 * MS, 0),
    )
    helper_duty = 0.05
    helper_name = "spellcheck"
    gpu_load = 0.016
    op_repeats = 8


class Outlook(_OfficeApp):
    """Microsoft Outlook 2016: mailbox manipulation with sync."""

    name = "outlook"
    display_name = "Microsoft Outlook"
    version = "2016"
    process_name = "OUTLOOK.EXE"
    paper_tlp = 1.3
    paper_gpu_util = 2.5
    operations = (
        ("compose-email", 350 * MS, 0),
        ("save-draft", 150 * MS, 0),
        ("search-inbox", 450 * MS, 0),
        ("reply-email", 250 * MS, 0),
        ("move-to-junk", 120 * MS, 0),
        ("categorize", 160 * MS, 0),
        ("filter-emails", 400 * MS, 0),
    )
    helper_duty = 0.07
    helper_name = "mail-sync"
    gpu_load = 0.024
    op_repeats = 7
