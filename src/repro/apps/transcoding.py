"""Video transcoding models: HandBrake and WinX HD Video Converter.

Both transcode the paper's clip (3840x2160@50 -> 1920x1080@30 MP4)
through a batch pipeline: a coordinator feeds frame batches to an
encode worker pool sized to the logical CPU count, then performs a
serial mux/flush between batches — the periodic TLP dips of Fig. 5.

* **HandBrake** is CPU-only (x264 software encode); its GPU use stays
  below 1% regardless of settings (Fig. 8b), and its scaling flattens
  beyond ~6 cores, per the HandBrake documentation the paper cites.
* **WinX** supports CUDA/NVENC offload: the CPU share per frame drops
  and an NVENC packet (fixed-function, device-independent speed) plus
  a small CUDA filter kernel go to the GPU.  Offload raises the
  transcode rate and *lowers* TLP (Table III) because batch flushes
  now wait on the GPU.
"""

from repro.apps.base import AppModel, AppRuntime, Category
from repro.apps.blocks import compute, gpu_stream_thread
from repro.gpu.device import (ENGINE_COMPUTE, ENGINE_VIDEO_DECODE,
                              ENGINE_VIDEO_ENCODE)
from repro.os.sync import MessageQueue, Semaphore
from repro.os.work import WorkClass
from repro.sim import MS, SECOND


class _TranscoderBase(AppModel):
    """Shared batch-pipeline skeleton for both transcoders."""

    category = Category.VIDEO_TRANSCODING
    process_name = "transcoder.exe"
    #: Nominal CPU microseconds per transcoded frame (software path).
    frame_cost_us = 150 * MS
    #: Frames per batch between serial mux points.
    batch_frames = 40
    #: Serial mux/flush CPU time between batches.
    mux_us = 220 * MS
    #: Fraction of frame_cost remaining on the CPU when offloading.
    cuda_cpu_share = 0.59
    #: Reference-GPU work per offloaded frame.
    nvenc_per_frame_us = int(2.2 * MS)
    cuda_kernel_per_frame_us = int(1.6 * MS)
    #: Idle GPU preview load even on the CPU-only path.
    preview_gpu_utilization = 0.0

    def __init__(self, use_gpu=False, total_frames=None, workers=None):
        self.use_gpu = use_gpu
        self.total_frames = total_frames
        #: Override the encode-pool size (defaults to one worker per
        #: logical CPU, matching x264's threading).
        self.workers = workers

    def build(self, rt: AppRuntime):
        process = rt.spawn_process(self.process_name)
        kernel = rt.kernel
        rng = rt.fork_rng()
        gpu_path = self.use_gpu and rt.machine.gpu.has_nvenc
        workers = self.workers or max(1, rt.machine.logical_cpus)
        queue = MessageQueue(kernel)
        done = Semaphore(kernel, 0)
        inflight_packets = []
        rt.outputs["frames"] = 0
        rt.outputs["gpu_path"] = gpu_path
        cpu_cost = (self.frame_cost_us * self.cuda_cpu_share
                    if gpu_path else self.frame_cost_us)

        def worker(ctx):
            while True:
                item = yield ctx.wait(queue.get())
                if item is None:
                    return
                yield from compute(ctx, item, WorkClass.FU_BOUND,
                                   chunk_us=25 * MS)
                if gpu_path:
                    inflight_packets.append(rt.gpu.submit(
                        process, ENGINE_VIDEO_ENCODE, "nvenc",
                        self.nvenc_per_frame_us))
                    rt.gpu.submit(process, ENGINE_COMPUTE, "cuda-filter",
                                  self.cuda_kernel_per_frame_us)
                done.release()

        def coordinator(ctx):
            remaining = self.total_frames
            while ctx.now < rt.end_time and (remaining is None or remaining > 0):
                batch = self.batch_frames
                if remaining is not None:
                    batch = min(batch, remaining)
                for _ in range(batch):
                    cost = int(cpu_cost * rng.uniform(0.85, 1.15))
                    yield ctx.wait(queue.put(cost))
                for _ in range(batch):
                    yield ctx.wait(done.acquire())
                if gpu_path and inflight_packets:
                    yield ctx.wait(inflight_packets[-1])
                    inflight_packets.clear()
                rt.outputs["frames"] += batch
                if remaining is not None:
                    remaining -= batch
                yield from compute(ctx, self.mux_us, WorkClass.FU_BOUND,
                                   chunk_us=25 * MS)
            rt.outputs["completed_at_us"] = ctx.now - rt.start_time
            for _ in range(workers):
                yield ctx.wait(queue.put(None))

        for index in range(workers):
            process.spawn_thread(worker, name=f"encode-{index}")
        process.spawn_thread(coordinator, name="pipeline")
        if self.preview_gpu_utilization > 0:
            # The preview window decodes via the fixed-function NVDEC
            # block, which is why HandBrake's GPU utilization stays
            # below 1% regardless of the installed GPU (Fig. 8b).
            gpu_stream_thread(rt, process, self.preview_gpu_utilization,
                              packet_ref_us=2 * MS,
                              engine=ENGINE_VIDEO_DECODE,
                              packet_type="nvdec", name="preview")

    def transcode_fps(self, rt_outputs, duration_us):
        """Frames per second achieved over the run (or until completion)."""
        elapsed = rt_outputs.get("completed_at_us", duration_us)
        return rt_outputs["frames"] * SECOND / max(1, elapsed)


class HandBrake(_TranscoderBase):
    """HandBrake 1.1.0 — open-source software transcoder (CPU-only)."""

    name = "handbrake"
    display_name = "HandBrake"
    version = "1.1.0"
    process_name = "HandBrake.exe"
    paper_tlp = 9.4
    paper_gpu_util = 0.4
    frame_cost_us = 158 * MS
    batch_frames = 40
    mux_us = 260 * MS
    preview_gpu_utilization = 0.004

    def __init__(self, total_frames=None, workers=None):
        # HandBrake never offloads encode to the GPU.
        super().__init__(use_gpu=False, total_frames=total_frames,
                         workers=workers)


class WinXVideoConverter(_TranscoderBase):
    """WinX HD Video Converter 5.12.1 — CUDA/NVENC-capable transcoder."""

    name = "winx"
    display_name = "WinX HD Video Converter"
    version = "5.12.1"
    process_name = "WinXVideoConverter.exe"
    paper_tlp = 9.2
    paper_gpu_util = 13.6
    frame_cost_us = 201 * MS
    batch_frames = 48
    #: The pure-CPU path of WinX is barely serialized (Table III shows
    #: TLP 11.5 at 12 logical CPUs without the GPU).
    mux_us = 60 * MS
    cuda_mux_us = 300 * MS
    cuda_cpu_share = 0.59
    nvenc_per_frame_us = int(2.2 * MS)
    cuda_kernel_per_frame_us = int(1.6 * MS)

    def __init__(self, use_gpu=True, total_frames=None, workers=None):
        super().__init__(use_gpu=use_gpu, total_frames=total_frames,
                         workers=workers)

    def build(self, rt):
        # GPU batches flush through the driver; the serial section is
        # longer than the CPU path's lightweight mux.
        self.mux_us = self.cuda_mux_us if (
            self.use_gpu and rt.machine.gpu.has_nvenc) else type(self).mux_us
        super().build(rt)
