"""Video authoring models: CyberLink PowerDirector and Premiere Pro.

Both testbenches import three clips, add transitions/titles/color
correction, and render the project (§IV-D).  The run therefore has two
phases: an interactive timeline-editing phase (low TLP, light GPU
preview) and an export phase (parallel encode workers, optional GPU
assist).

Premiere Pro's CUDA toggle drives the paper's Fig. 9: exporting with
CUDA raises GPU utilization (much more on the GTX 680 than on the
1080 Ti) and slightly lowers the instantaneous TLP, without changing
the runtime much.
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import (compute, fan_out, gpu_stream_thread,
                               housekeeping_thread, ui_pump)
from repro.automation import InputScript
from repro.gpu.device import ENGINE_COMPUTE, ENGINE_VIDEO_ENCODE
from repro.os.work import WorkClass
from repro.sim import MS, SECOND


class _VideoEditor(AppModel):
    """Shared edit-then-export skeleton."""

    category = Category.VIDEO_AUTHORING
    process_name = "editor.exe"
    #: Fraction of the run spent editing before the export starts.
    edit_fraction = 0.5
    #: Number of encode workers during export and their total work per
    #: export "segment" (nominal µs).
    export_workers = 6
    segment_work_us = 4 * SECOND
    segment_serial_us = 600 * MS
    #: GPU preview load while editing.
    preview_gpu = 0.03
    #: CUDA export settings.
    use_cuda = False
    cuda_cpu_share = 0.8
    cuda_kernel_us = int(2.5 * MS)
    nvenc_us = 0

    def __init__(self, use_cuda=None):
        if use_cuda is not None:
            self.use_cuda = use_cuda

    def build(self, rt):
        process = rt.spawn_process(self.process_name)
        rng = rt.fork_rng()
        edit_ops = ("import-clip-1", "import-clip-2", "import-clip-3",
                    "add-transition", "add-title", "color-correct")
        edit_span = int(rt.duration_us * self.edit_fraction)
        script = InputScript()
        for label in edit_ops:
            script.wait(600 * MS)
            script.drag(label, 500 * MS)
        script = script.repeated(4, gap_us=800 * MS).stretched_to(
            int(edit_span * 0.95))
        rt.outputs["segments_exported"] = 0
        cuda = self.use_cuda and rt.machine.gpu.has_nvenc

        def handle(ctx, action):
            work = int(180 * MS * rng.uniform(0.7, 1.3))
            yield from compute(ctx, work, WorkClass.UI, chunk_us=15 * MS)
            if action.label.startswith("import"):
                done = fan_out(rt, process, 500 * MS, 3,
                               WorkClass.MEMORY_BOUND, name="thumbnail")
                yield ctx.wait(done)

        def exporter(ctx):
            yield ctx.sleep(edit_span)
            share = self.cuda_cpu_share if cuda else 1.0
            while ctx.now < rt.end_time:
                work = int(self.segment_work_us * share
                           * rng.uniform(0.9, 1.1))
                done = fan_out(rt, process, work, self.export_workers,
                               WorkClass.FU_BOUND, name="export")
                if cuda:
                    for _ in range(8):
                        rt.gpu.submit(process, ENGINE_COMPUTE,
                                      "cuda-effect", self.cuda_kernel_us)
                if self.nvenc_us:
                    rt.gpu.submit(process, ENGINE_VIDEO_ENCODE, "nvenc",
                                  self.nvenc_us)
                yield ctx.wait(done)
                yield from compute(ctx, self.segment_serial_us,
                                   WorkClass.FU_BOUND)
                rt.outputs["segments_exported"] += 1

        ui_pump(rt, process, script, handle)
        process.spawn_thread(exporter, name="export-pipeline")
        housekeeping_thread(rt, process)
        if self.preview_gpu:
            gpu_stream_thread(rt, process, self.preview_gpu,
                              packet_ref_us=4 * MS, packet_type="preview",
                              name="gpu-preview")


class PowerDirector(_VideoEditor):
    """CyberLink PowerDirector v16 — consumer editor with GPU encode."""

    name = "powerdirector"
    display_name = "CyberLink PowerDirector"
    version = "v16"
    process_name = "PowerDirector.exe"
    paper_tlp = 4.3
    paper_gpu_util = 6.3
    edit_fraction = 0.45
    export_workers = 8
    segment_work_us = int(4.6 * SECOND)
    segment_serial_us = 450 * MS
    preview_gpu = 0.035
    use_cuda = True
    cuda_cpu_share = 0.85
    nvenc_us = int(30 * MS)


class PremierePro(_VideoEditor):
    """Adobe Premiere Pro CC — professional editor, CPU-first export.

    The Table II configuration exports without CUDA (GPU utilization
    0.6%); pass ``use_cuda=True`` for the Fig. 9 comparison.
    """

    name = "premiere"
    display_name = "Adobe Premiere Pro CC"
    version = "CC 2018"
    process_name = "PremierePro.exe"
    paper_tlp = 1.8
    paper_gpu_util = 0.6
    edit_fraction = 0.55
    export_workers = 2
    segment_work_us = int(3.8 * SECOND)
    segment_serial_us = 800 * MS
    preview_gpu = 0.006
    use_cuda = False
    cuda_cpu_share = 0.75
    cuda_kernel_us = int(9 * MS)
