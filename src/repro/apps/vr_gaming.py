"""VR game models (§IV-F): six titles across three headsets.

Every title runs the same engine skeleton — a main simulation thread
paced by the compositor, a job system fanning per-frame tasks to
worker threads, a render thread submitting one GPU frame packet per
tick, and an audio thread — parameterized per game.  Sensor input
(motion controllers, head tracking) arrives on a dedicated thread, the
"significantly larger number of inputs" the paper credits for VR's
TLP rise over traditional 3D gaming.

The GPU packet size is the title's *reference-GPU* frame cost; the
measured utilization emerges from packets over wall time, reproducing
the per-title Table II numbers and the per-headset contrasts of
Fig. 12 (Vive Pro's higher resolution raises GPU load; Fallout 4 is
CPU-bound at high resolution, inverting the trend).
"""

from repro.apps.base import AppModel, Category
from repro.apps.blocks import housekeeping_thread
from repro.gpu.device import ENGINE_3D
from repro.os.sync import Semaphore
from repro.os.work import WorkClass
from repro.sim import MS, SECOND
from repro.vr import HEADSETS, VIVE, Compositor


class _VrGame(AppModel):
    """Shared VR engine skeleton."""

    category = Category.VR_GAMING
    process_name = "vrgame.exe"
    #: Per-frame CPU costs (µs) and job fan-out.
    main_us = 3500
    render_us = 3500
    n_jobs = 4
    job_us = 1800
    audio_duty = 0.08
    sensor_duty = 0.12
    #: Reference-GPU frame cost (µs) at Rift/Vive resolution.
    gpu_frame_us = 7600
    #: Title is CPU-bound at high resolutions (Fallout 4's quirk).
    cpu_bound_at_high_res = False

    def __init__(self, headset=VIVE):
        if isinstance(headset, str):
            headset = HEADSETS[headset]
        self.headset = headset

    def build(self, rt):
        headset = self.headset
        process = rt.spawn_process(self.process_name)
        rng = rt.fork_rng()
        compositor = Compositor(rt, headset)
        tick_gate = Semaphore(rt.kernel, 0)
        render_gate = Semaphore(rt.kernel, 0)
        job_gates = [Semaphore(rt.kernel, 0) for _ in range(self.n_jobs)]
        compositor.register_game(tick_gate)
        rt.outputs["headset"] = headset.name

        if self.cpu_bound_at_high_res and headset.gpu_load_factor > 1.1:
            # The single-threaded simulation loop becomes the frame
            # bottleneck at the higher resolution: the GPU starves and
            # both utilization and frame rate drop (Fallout 4's Fig. 12
            # inversion).
            main_factor, render_factor, job_factor = 3.1, 1.2, 1.0
        else:
            main_factor = render_factor = job_factor = (
                1.0 + (headset.cpu_load_factor - 1.0) * 0.3)
        gpu_frame = self.gpu_frame_us * headset.gpu_load_factor
        # Double-buffered rendering: at most this many frames in flight.
        inflight = {"count": 0}

        def main_thread(ctx):
            while ctx.now < rt.end_time:
                yield ctx.wait(tick_gate.acquire())
                if ctx.now >= rt.end_time:
                    return
                # Pipelined engine: the render thread draws frame N-1
                # while the main thread simulates frame N.  Physics and
                # animation jobs run alongside the simulation; post-sim
                # jobs (cloth, audio occlusion, AI) follow it.
                pre_jobs = (len(job_gates) + 1) // 2
                for gate in job_gates[:pre_jobs]:
                    gate.release()
                render_gate.release()
                work = int(self.main_us * main_factor
                           * rng.uniform(0.85, 1.15))
                yield ctx.cpu(max(1, work), WorkClass.BALANCED)
                for gate in job_gates[pre_jobs:]:
                    gate.release()

        def render_thread(ctx):
            while ctx.now < rt.end_time:
                yield ctx.wait(render_gate.acquire())
                if ctx.now >= rt.end_time:
                    return
                work = int(self.render_us * render_factor
                           * rng.uniform(0.85, 1.15))
                yield ctx.cpu(max(1, work), WorkClass.BALANCED)
                if inflight["count"] < 2:
                    inflight["count"] += 1
                    # Occasional scene spikes (explosions, crowded
                    # views) momentarily exceed the frame budget.
                    spike = 1.6 if rng.random() < 0.03 else 1.0
                    done = rt.gpu.submit(
                        process, ENGINE_3D, "vr-frame",
                        max(1, int(gpu_frame * spike
                                   * rng.uniform(0.88, 1.12))))

                    def completed(_event):
                        inflight["count"] -= 1
                        compositor.frame_done()

                    done.callbacks.append(completed)

        def job_worker(gate):
            def body(ctx):
                while ctx.now < rt.end_time:
                    yield ctx.wait(gate.acquire())
                    if ctx.now >= rt.end_time:
                        return
                    work = int(self.job_us * job_factor
                               * rng.uniform(0.6, 1.4))
                    yield ctx.cpu(max(1, work), WorkClass.BALANCED)

            return body

        def duty_thread(duty, period):
            def body(ctx):
                while ctx.now < rt.end_time:
                    busy = max(1, int(period * duty * rng.uniform(0.7, 1.3)))
                    yield ctx.cpu(busy, WorkClass.UI)
                    yield ctx.sleep(max(1, min(period - busy,
                                               rt.end_time - ctx.now)))

            return body

        process.spawn_thread(main_thread, name="game-main")
        process.spawn_thread(render_thread, name="render")
        for index, gate in enumerate(job_gates):
            process.spawn_thread(job_worker(gate), name=f"job-{index}")
        process.spawn_thread(duty_thread(self.audio_duty, 15 * MS),
                             name="audio")
        process.spawn_thread(duty_thread(self.sensor_duty, 8 * MS),
                             name="sensor-input")
        # Asset streaming / shader-compile pool bursts.
        housekeeping_thread(rt, process, period_us=9 * SECOND,
                            burst_us=6 * MS, name="asset-streaming")


class ArizonaSunshine(_VrGame):
    """Arizona Sunshine — Horde mode zombie waves."""

    name = "arizona-sunshine"
    display_name = "Arizona Sunshine"
    version = "1.5.11046"
    process_name = "ArizonaSunshine.exe"
    paper_tlp = 3.4
    paper_gpu_util = 68.2
    main_us = 3800
    render_us = 3600
    n_jobs = 5
    job_us = 3700
    gpu_frame_us = 7580


class Fallout4VR(_VrGame):
    """Fallout 4 VR — open-world continuation from a save point.

    The heaviest simulation of the suite; CPU-bound at Vive Pro
    resolution, which the paper observes as the one title whose GPU
    utilization *drops* on the higher-resolution headset.
    """

    name = "fallout4"
    display_name = "Fallout 4 VR"
    version = "1.2"
    process_name = "Fallout4VR.exe"
    paper_tlp = 4.0
    paper_gpu_util = 84.9
    main_us = 5200
    render_us = 4200
    n_jobs = 6
    job_us = 4100
    gpu_frame_us = 9430
    cpu_bound_at_high_res = True


class RawData(_VrGame):
    """RAW Data — campaign mode, defending against humanoid robots."""

    name = "raw-data"
    display_name = "RAW Data"
    version = "1.1.0"
    process_name = "RawData.exe"
    paper_tlp = 2.6
    paper_gpu_util = 90.9
    main_us = 3100
    render_us = 3100
    n_jobs = 3
    job_us = 2700
    gpu_frame_us = 10100


class SeriousSamVR(_VrGame):
    """Serious Sam VR: BFE — survival mode."""

    name = "serious-sam"
    display_name = "Serious Sam VR BFE"
    version = "341433"
    process_name = "SeriousSamVR.exe"
    paper_tlp = 2.4
    paper_gpu_util = 72.2
    main_us = 3000
    render_us = 2600
    n_jobs = 4
    job_us = 1950
    gpu_frame_us = 8020


class SpacePirateTrainer(_VrGame):
    """Space Pirate Trainer — 'old school' wave survival."""

    name = "space-pirate"
    display_name = "Space Pirate Trainer"
    version = "1.01"
    process_name = "SpacePirateTrainer.exe"
    paper_tlp = 2.7
    paper_gpu_util = 61.6
    main_us = 3000
    render_us = 3000
    n_jobs = 3
    job_us = 2900
    gpu_frame_us = 6840


class ProjectCars2(_VrGame):
    """Project CARS 2 — quick race, default car and track."""

    name = "project-cars-2"
    display_name = "Project CARS 2"
    version = "1.7.1.0"
    process_name = "ProjectCars2.exe"
    paper_tlp = 3.8
    paper_gpu_util = 80.2
    main_us = 6200
    render_us = 5400
    n_jobs = 6
    job_us = 3700
    gpu_frame_us = 8910
