"""Testing automation: input scripts and drivers (AutoIt substitute)."""

from repro.automation.driver import AUTOIT, MANUAL, InputDriver
from repro.automation.script import (
    CLICK,
    DRAG,
    KEY,
    TEXT,
    VOICE,
    InputAction,
    InputScript,
)

__all__ = [
    "AUTOIT",
    "CLICK",
    "DRAG",
    "InputAction",
    "InputDriver",
    "InputScript",
    "KEY",
    "MANUAL",
    "TEXT",
    "VOICE",
]
