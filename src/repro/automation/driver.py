"""Input drivers: scripted (AutoIt) and manual (human) replay.

Drivers deliver :class:`~repro.automation.script.InputAction` objects
into a per-application input queue.  The AutoIt mode replays actions at
their scripted times with millisecond precision; the manual mode adds
seeded human jitter — the paper validates in §III-D that the two modes
differ by only a few percent in TLP and GPU utilization, and we
reproduce that ablation in ``benchmarks/bench_ablation_automation.py``.
"""

import random

from repro.os.sync import MessageQueue
from repro.sim import MS

AUTOIT = "autoit"
MANUAL = "manual"

#: AutoIt timer granularity (tens of ms scheduling precision).
_AUTOIT_JITTER_US = 4 * MS
#: Human reaction-time spread around the rehearsed script.
_MANUAL_JITTER_SIGMA_US = 140 * MS
#: Probability a human hesitates noticeably before an action.
_MANUAL_HESITATION_P = 0.12
_MANUAL_HESITATION_US = 500 * MS


class InputDriver:
    """Replays input scripts into application UI queues."""

    def __init__(self, kernel, mode=AUTOIT, seed=0):
        if mode not in (AUTOIT, MANUAL):
            raise ValueError(f"unknown driver mode {mode!r}")
        self.kernel = kernel
        self.mode = mode
        self.rng = random.Random(seed)
        self.delivered = 0

    def _jitter(self):
        if self.mode == AUTOIT:
            return self.rng.randint(0, _AUTOIT_JITTER_US)
        jitter = int(abs(self.rng.gauss(0, _MANUAL_JITTER_SIGMA_US)))
        if self.rng.random() < _MANUAL_HESITATION_P:
            jitter += self.rng.randint(0, _MANUAL_HESITATION_US)
        return jitter

    def play(self, script, queue=None):
        """Start replaying ``script``; returns the target queue.

        Actions arrive as :class:`InputAction` objects on the queue; a
        ``None`` sentinel marks the end of the script.  AutoIt replays
        against absolute script time (timer-based, no drift); a human
        reacts to the *previous* step, so manual jitter accumulates and
        the whole session drifts slightly long — the paper's §III-D
        comparison sees a few percent of metric difference from this.
        """
        queue = queue or MessageQueue(self.kernel)
        env = self.kernel.env

        def replay():
            origin = env.now
            drift = 0
            for action in script:
                if self.mode == MANUAL:
                    drift += self._jitter()
                    target = origin + action.at_us + drift
                else:
                    target = origin + action.at_us + self._jitter()
                if target > env.now:
                    yield env.timeout(target - env.now)
                if action.duration_us:
                    yield env.timeout(action.duration_us)
                yield queue.put(action)
                self.delivered += 1
            yield queue.put(None)

        env.process(replay(), name=f"input-driver-{self.mode}")
        return queue
