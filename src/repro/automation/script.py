"""Input scripts — the AutoIt substitute.

The paper automates every application that accepts mouse/keyboard input
with AutoIt scripts that "initiate the application and perform a
carefully designed sequence of mouse and keyboard activities" at
user-specified times (§III-D), and falls back to manual testing (voice,
VR motion) with fixed request sequences (§III-E).

An :class:`InputScript` is a timed list of :class:`InputAction`; the
:mod:`repro.automation.driver` replays it into the application's UI
queue, either with AutoIt-like precision or with seeded human jitter.
"""

from dataclasses import dataclass

from repro.sim import MS

CLICK = "click"
KEY = "key"
TEXT = "text"
VOICE = "voice"
DRAG = "drag"


@dataclass(frozen=True)
class InputAction:
    """One scripted user input.

    ``at_us`` is the nominal offset from script start; ``duration_us``
    is how long the input itself takes (typing a sentence, speaking a
    query); ``label`` names the action for the application's handler.
    """

    at_us: int
    kind: str
    label: str
    duration_us: int = 0

    def __post_init__(self):
        if self.at_us < 0:
            raise ValueError("action time must be >= 0")
        if self.duration_us < 0:
            raise ValueError("action duration must be >= 0")


class InputScript:
    """A builder for timed input sequences.

    The cursor starts at zero and advances with every action or
    :meth:`wait`; actions are stamped at the cursor position::

        script = (InputScript()
                  .wait(2_000_000)
                  .click("menu:filter-blur")
                  .wait(500_000)
                  .key("enter"))
    """

    def __init__(self):
        self.actions = []
        self._cursor = 0

    def wait(self, duration_us):
        """Advance the script cursor (user think time)."""
        if duration_us < 0:
            raise ValueError("wait must be >= 0")
        self._cursor += int(duration_us)
        return self

    def _add(self, kind, label, duration_us=0):
        self.actions.append(InputAction(self._cursor, kind, label,
                                        int(duration_us)))
        self._cursor += int(duration_us)
        return self

    def click(self, label):
        """A mouse click on the named control."""
        return self._add(CLICK, label, 80 * MS)

    def drag(self, label, duration_us=400 * MS):
        """A click-drag gesture (pan, rotate, move object)."""
        return self._add(DRAG, label, duration_us)

    def key(self, label):
        """A keystroke or shortcut chord."""
        return self._add(KEY, label, 40 * MS)

    def type_text(self, label, characters=20):
        """Typing a run of text (~5 chars/second)."""
        return self._add(TEXT, label, characters * 200 * MS // 1)

    def speak(self, label, duration_us):
        """A spoken query (manual-testing input, §III-E)."""
        return self._add(VOICE, label, duration_us)

    @property
    def length_us(self):
        """Nominal end time of the script."""
        return self._cursor

    def stretched_to(self, duration_us):
        """A copy rescaled so the script spans ``duration_us``.

        Used to fit an application's canonical testbench into the
        configured trace duration.
        """
        if not self.actions or self.length_us == 0:
            return self
        scale = duration_us / self.length_us
        copy = InputScript()
        copy._cursor = int(self._cursor * scale)
        copy.actions = [
            InputAction(int(a.at_us * scale), a.kind, a.label, a.duration_us)
            for a in self.actions
        ]
        return copy

    def repeated(self, times, gap_us=0):
        """A copy with the whole sequence repeated ``times`` times."""
        if times < 1:
            raise ValueError("times must be >= 1")
        copy = InputScript()
        offset = 0
        for _ in range(times):
            for action in self.actions:
                copy.actions.append(InputAction(
                    offset + action.at_us, action.kind, action.label,
                    action.duration_us))
            offset += self.length_us + gap_us
        copy._cursor = offset
        return copy

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)
