"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    List the 30 benchmark applications with categories and the
    paper-reported Table II values.
``run APP``
    Run one application with the paper protocol and print its metrics
    (``--cores``, ``--no-smt``, ``--gpu``, ``--duration``,
    ``--iterations``, ``--manual`` configure the machine and driver).
``suite``
    Run the full Table II protocol (or ``--apps a,b,c``) and print the
    rendered table.
``system``
    Print the Table I system specification.
``compare BEFORE.json AFTER.json``
    Longitudinal comparison of two stored suite results (the 18-year
    -perspective workflow, continued).
``serve``
    Run the sweep service daemon: ``POST /sweeps`` submits app x
    machine x config sweeps through the supervised executor (deduped
    by sweep digest), ``GET /sweeps/{id}`` reports progress and
    streams results, and ``GET /tables/...``/``GET /frontiers/...``
    serve the committed golden artifacts with ``ETag`` revalidation.
    Results are byte-identical to ``repro suite --json`` output for
    the same specs.  ``POST /shutdown`` drains in-flight jobs and
    exits.
``validate``
    Trace-invariant and golden-fingerprint regression check: replay the
    golden grid (4/8/12 logical CPUs with SMT, 4/6 without), validate
    every trace against the invariant catalogue and diff metric
    fingerprints against ``tests/golden/golden_traces.json``
    (``--update-golden`` re-records them; ``--streaming`` cross-checks
    the in-simulation metrics engine against the same goldens).  Each
    run's Eq.-1 TLP is also checked against the static work/span
    ceiling from ``repro lint`` (``--no-static`` skips this).
``lint``
    Static concurrency analysis without simulating: shadow-build every
    app model, detect lock-order deadlock cycles, compute work/span
    TLP bounds and AST-lint the app sources.  Nonzero exit when any
    finding is at/above ``--fail-on`` (default: warning).
``dse``
    Campaign-scale design-space exploration: score ``--configs``
    generated machines (core count, SMT, tech node, DVFS, energy
    coefficients) per app, simulating only one base run per
    trace-changing signature and scoring the rest analytically from
    activity histograms.  Prints per-app Pareto frontiers (Eq.-1 TLP
    vs energy-delay) and the analytic-vs-resimulation equivalence
    verdict; nonzero exit when the check fails or runs quarantine.
"""

import argparse
import os
import sys

from repro.apps import REGISTRY, SUITE, create_app
from repro.automation import AUTOIT, MANUAL
from repro.harness import run_app, run_suite
from repro.hardware import GPUS, paper_machine
from repro.reporting import format_table, heat_row, render_table1, render_table2
from repro.sim import SECOND


def _check_exec_args(args, out):
    """Validate ``--jobs``/``--cache`` before any simulation starts."""
    if getattr(args, "jobs", None) is not None and args.jobs < 0:
        out("error: --jobs must be >= 0 (0 = one process per CPU)")
        return 2
    cache = getattr(args, "cache", None)
    if cache == "":
        out("error: --cache requires a directory path")
        return 2
    if cache is not None and os.path.exists(cache) and not os.path.isdir(cache):
        out(f"error: --cache {cache!r} is not a directory")
        return 2
    if getattr(args, "retries", None) is not None and args.retries < 0:
        out("error: --retries must be >= 0")
        return 2
    deadline = getattr(args, "deadline_us", None)
    if deadline is not None and deadline <= 0:
        out("error: --deadline-us must be a positive wall-clock budget")
        return 2
    if getattr(args, "journal", None) and getattr(args, "resume", None):
        out("error: pass either --journal (fresh sweep) or --resume "
            "(continue one), not both")
        return 2
    resume = getattr(args, "resume", None)
    if resume is not None and not os.path.exists(resume):
        out(f"error: --resume journal {resume!r} does not exist")
        return 2
    if getattr(args, "salvage", False) and getattr(args, "streaming",
                                                   False):
        out("error: --salvage recovers a prefix of the recorded trace; "
            "incompatible with --streaming")
        return 2
    _apply_hotpath_args(args)
    return 0


def _apply_hotpath_args(args):
    """Export the hot-path mode flags into the environment.

    The kernel/transport/epoch selections are environment-driven so
    they reach pool and supervisor worker processes without widening
    every call signature in between; the CLI flags are just a typed
    front end that sets the variables before any simulation starts.
    """
    from repro.harness.transport import TRANSPORT_ENV
    from repro.metrics.kernels import KERNEL_ENV
    from repro.sim.environment import EPOCH_ENV

    for attr, env in (("kernel", KERNEL_ENV),
                      ("transport", TRANSPORT_ENV),
                      ("epoch", EPOCH_ENV)):
        value = getattr(args, attr, None)
        if value is not None:
            os.environ[env] = value


def _supervised(args):
    """True when any resilience flag asks for the supervised executor."""
    return bool(getattr(args, "retries", None)
                or getattr(args, "deadline_us", None)
                or getattr(args, "journal", None)
                or getattr(args, "resume", None))


def _executor_from_args(args, cache):
    """A SupervisedExecutor when resilience flags are set, else None."""
    if not _supervised(args):
        return None
    from repro.harness import SupervisedExecutor

    deadline_us = getattr(args, "deadline_us", None)
    return SupervisedExecutor(
        jobs=args.jobs,
        cache=cache,
        retries=getattr(args, "retries", None) or 0,
        deadline_s=deadline_us / 1e6 if deadline_us else None,
        journal=getattr(args, "journal", None),
        resume=getattr(args, "resume", None))


def _cache_from_args(args):
    if getattr(args, "cache", None) is None:
        return None
    from repro.harness import ResultCache

    return ResultCache(args.cache)


def _machine_from_args(args):
    machine = paper_machine()
    if getattr(args, "gpu", None):
        machine = machine.with_gpu(GPUS[args.gpu])
    if getattr(args, "no_smt", False):
        machine = machine.with_smt(False)
    if getattr(args, "cores", None):
        machine = machine.with_logical_cpus(args.cores)
    return machine


def cmd_list(_args, out):
    rows = [
        (name, cls.display_name, cls.category.value,
         f"{cls.paper_tlp:4.1f}", f"{cls.paper_gpu_util:5.1f}")
        for name, cls in ((key, REGISTRY[key]) for key in SUITE)
    ]
    out(format_table(
        ("key", "application", "category", "TLP*", "GPU%*"), rows,
        title="Benchmark suite (* = paper-reported Table II values)"))
    return 0


def cmd_system(_args, out):
    out(render_table1(paper_machine()))
    return 0


def cmd_run(args, out):
    if _check_exec_args(args, out):
        return 2
    if args.era == 2010:
        from repro.apps.era2010 import ERA2010_REGISTRY
        from repro.hardware import machine_2010

        if args.app not in ERA2010_REGISTRY:
            out(f"error: unknown 2010-era application {args.app!r}; "
                f"known: {', '.join(sorted(ERA2010_REGISTRY))}")
            return 2
        app = ERA2010_REGISTRY[args.app]()
        machine = machine_2010()
    else:
        if args.app not in REGISTRY:
            out(f"error: unknown application {args.app!r}; "
                f"try `python -m repro list`")
            return 2
        app = create_app(args.app)
        machine = _machine_from_args(args)
    driver = MANUAL if args.manual else AUTOIT
    cache = _cache_from_args(args)
    executor = _executor_from_args(args, cache)
    try:
        result = run_app(app,
                         machine=machine,
                         duration_us=int(args.duration * SECOND),
                         iterations=args.iterations,
                         driver_mode=driver,
                         jobs=None if executor is not None else args.jobs,
                         executor=executor,
                         cache=None if executor is not None else cache,
                         streaming=args.streaming,
                         validate=args.validate,
                         salvage=args.salvage)
    except RuntimeError as exc:
        if executor is not None and executor.failures:
            from repro.reporting import render_failures

            out(render_failures(executor.failures))
            out(f"error: {exc}")
            return 1
        raise
    out(f"{result.display_name} on {machine.cpu.name} "
        f"({machine.logical_cpus} LCPUs, SMT "
        f"{'on' if machine.smt_enabled else 'off'}, {machine.gpu.name})")
    out(f"  TLP             : {result.tlp}")
    capped = " (*saturated)" if result.gpu_capped else ""
    out(f"  GPU utilization : {result.gpu_util}{capped}")
    out(f"  max instant TLP : {result.max_instantaneous}")
    out(f"  heat map c0..cN : |{heat_row(result.fractions)}|")
    printable = {k: v for k, v in result.outputs.items()
                 if isinstance(v, (int, float, str, bool))}
    if printable:
        out(f"  outputs         : {printable}")
    if result.partial:
        out("  NOTE: partial result — some iterations were salvaged "
            "or quarantined")
    if executor is not None and executor.failures:
        from repro.reporting import render_failures

        out(render_failures(executor.failures))
        return 1
    return 0


def cmd_suite(args, out):
    if _check_exec_args(args, out):
        return 2
    names = SUITE if not args.apps else tuple(args.apps.split(","))
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        out(f"error: unknown applications: {', '.join(unknown)}")
        return 2
    cache = _cache_from_args(args)
    executor = _executor_from_args(args, cache)
    suite = run_suite(names=names,
                      machine=_machine_from_args(args),
                      duration_us=int(args.duration * SECOND),
                      iterations=args.iterations,
                      jobs=None if executor is not None else args.jobs,
                      executor=executor,
                      cache=None if executor is not None else cache,
                      streaming=args.streaming,
                      validate=args.validate,
                      salvage=args.salvage)
    out(render_table2(suite))
    if suite.failures:
        from repro.reporting import render_failures

        out(render_failures(suite.failures))
    if args.json:
        from repro.harness.persistence import save_suite

        save_suite(suite, args.json,
                   metadata={"duration_s": args.duration,
                             "iterations": args.iterations})
        out(f"saved JSON results to {args.json}")
    if args.csv:
        from repro.reporting.export import suite_to_csv

        suite_to_csv(suite, args.csv)
        out(f"saved CSV results to {args.csv}")
    return 1 if suite.failures else 0


def cmd_validate(args, out):
    from repro.harness.executor import resolve_executor
    from repro.validate import (
        GOLDEN_CONFIGS,
        TraceValidator,
        compare_fingerprints,
        config_id,
        fingerprint_run,
        golden_machine,
        golden_spec,
        load_goldens,
        save_goldens,
    )

    if _check_exec_args(args, out):
        return 2
    names = SUITE if not args.apps else tuple(args.apps.split(","))
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        out(f"error: unknown applications: {', '.join(unknown)}")
        return 2

    goldens = None
    if not args.update_golden:
        try:
            goldens = load_goldens(args.golden)
        except FileNotFoundError:
            out("warning: no golden file found "
                "(run `repro validate --update-golden` to record one); "
                "checking invariants only")

    grid = [(name, cores, smt)
            for name in names for cores, smt in GOLDEN_CONFIGS]
    specs = [golden_spec(name, cores, smt) for name, cores, smt in grid]
    for spec in specs:
        spec.kwargs["keep_trace"] = True  # invariants need the trace
    runs = resolve_executor(jobs=args.jobs).map(specs)

    failures = 0
    fingerprints = {}
    static_bounds = {}
    for (name, cores, smt), run in zip(grid, runs):
        cid = config_id(cores, smt)
        report = TraceValidator(
            golden_machine(cores, smt).logical_cpus).validate(run.trace)
        problems = [str(v) for v in report.violations]
        fingerprint = fingerprint_run(run)
        fingerprints.setdefault(name, {})[cid] = fingerprint
        if not args.no_static:
            from repro.analysis.static import (analyze_work_span, check_bound,
                                               extract_structure)

            if (name, cid) not in static_bounds:
                static_bounds[name, cid] = analyze_work_span(
                    extract_structure(name,
                                      machine=golden_machine(cores, smt)))
            error = check_bound(static_bounds[name, cid],
                                float.fromhex(fingerprint["tlp"]),
                                machine_label=cid)
            if error:
                problems.append(f"static TLP bound violated: {error}")
        if goldens is not None:
            expected = goldens.get(name, {}).get(cid)
            if expected is None:
                problems.append("no committed golden fingerprint")
            else:
                problems += compare_fingerprints(expected, fingerprint)
        if problems:
            failures += 1
            out(f"FAIL {name} [{cid}]")
            for problem in problems:
                out(f"  {problem}")

    if args.streaming:
        streaming_specs = [golden_spec(name, cores, smt, streaming=True)
                           for name, cores, smt in grid]
        for spec in streaming_specs:
            spec.kwargs["validate"] = True  # online edge-stream checks
        for (name, cores, smt), run in zip(
                grid, resolve_executor(jobs=args.jobs).map(streaming_specs)):
            cid = config_id(cores, smt)
            mismatches = compare_fingerprints(
                fingerprints[name][cid], fingerprint_run(run))
            if mismatches:
                failures += 1
                out(f"FAIL {name} [{cid}] streaming != post-hoc")
                for mismatch in mismatches:
                    out(f"  {mismatch}")

    checked = len(grid) * (2 if args.streaming else 1)
    if args.update_golden:
        try:
            merged = load_goldens(args.golden)
        except FileNotFoundError:
            merged = {}
        if failures:
            out(f"error: refusing to record goldens with {failures} "
                f"invariant failure(s)")
            return 1
        merged.update(fingerprints)
        path = save_goldens(merged, args.golden)
        out(f"recorded {len(grid)} golden fingerprints "
            f"({len(names)} apps) to {path}")
        return 0
    if failures:
        out(f"validate: {failures} of {checked} checks FAILED")
        return 1
    out(f"validate: {checked} checks ok "
        f"({len(names)} apps x {len(GOLDEN_CONFIGS)} configs"
        f"{', streaming cross-checked' if args.streaming else ''})")
    return 0


def cmd_lint(args, out):
    from repro.analysis.static import analyze_apps, app_source_paths
    from repro.reporting import render_lint_findings, render_static_bounds

    names = SUITE if args.all_apps or not args.apps \
        else tuple(args.apps.split(","))
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        out(f"error: unknown applications: {', '.join(unknown)}")
        return 2
    if args.fail_on not in ("error", "warning", "info"):
        out("error: --fail-on must be error, warning or info")
        return 2

    ast_paths = None
    if not args.no_ast:
        ast_paths = list(args.paths) if args.paths else app_source_paths()
    report = analyze_apps(names,
                          machine=_machine_from_args(args),
                          duration_us=int(args.duration * SECOND),
                          seed=args.seed,
                          ast_paths=ast_paths)
    out(render_static_bounds(report))
    out("")
    out(render_lint_findings(report))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
        out(f"saved JSON report to {args.json}")
    return 1 if report.failed(args.fail_on) else 0


def cmd_dse(args, out):
    if _check_exec_args(args, out):
        return 2
    if args.configs < 1:
        out("error: --configs must be >= 1")
        return 2
    if args.chunk < 1:
        out("error: --chunk must be >= 1")
        return 2
    from repro.analysis.dse import run_campaign
    from repro.hardware.catalog import generate_machines

    names = (tuple(args.apps.split(",")) if args.apps
             else ("handbrake", "premiere", "excel"))
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        out(f"error: unknown applications: {', '.join(unknown)}")
        return 2
    machines = generate_machines(args.configs, seed=args.seed)
    deadline_us = getattr(args, "deadline_us", None)
    result = run_campaign(
        names, machines,
        duration_us=int(args.duration * SECOND),
        seed=args.seed,
        jobs=args.jobs,
        chunk=args.chunk,
        cache=_cache_from_args(args),
        retries=args.retries or 0,
        deadline_s=deadline_us / 1e6 if deadline_us else None,
        equivalence_samples=args.equivalence)
    from repro.reporting import render_dse_frontiers

    out(render_dse_frontiers(result, top=args.top))
    if result.failures:
        from repro.reporting import render_failures

        out(render_failures(result.failures))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.to_payload(include_scores=args.scores),
                      handle, indent=2, sort_keys=True)
        out(f"saved JSON results to {args.json}")
    bad = bool(result.failures) or (
        result.equivalence is not None and not result.equivalence.ok)
    return 1 if bad else 0


def cmd_serve(args, out):
    if _check_exec_args(args, out):
        return 2
    if args.chunk < 1:
        out("error: --chunk must be >= 1")
        return 2
    if args.job_workers < 1:
        out("error: --job-workers must be >= 1")
        return 2
    if args.max_queue < 0:
        out("error: --max-queue must be >= 0 (0 = unbounded)")
        return 2
    if args.job_ttl is not None and args.job_ttl <= 0:
        out("error: --job-ttl must be positive")
        return 2
    if args.hang_s is not None and args.hang_s <= 0:
        out("error: --hang-s must be positive")
        return 2
    from repro.service import ENDPOINTS, ServiceServer, SweepService

    deadline_us = args.deadline_us
    service = SweepService(
        jobs=args.jobs if args.jobs is not None else 0,
        cache=args.cache,
        retries=args.retries or 0,
        deadline_s=deadline_us / 1e6 if deadline_us else None,
        chunk=args.chunk,
        golden_path=args.golden,
        dse_path=args.dse,
        ledger=args.ledger,
        job_workers=args.job_workers,
        max_queue=args.max_queue or None,
        job_ttl_s=args.job_ttl,
        drain_s=args.drain_s,
        hang_s=args.hang_s)

    def ready(server):
        out(f"serving on http://{server.host}:{server.port}")
        width = max(len(endpoint) for endpoint in ENDPOINTS)
        for endpoint, description in ENDPOINTS.items():
            out(f"  {endpoint:<{width}}  {description}")
        # Piped stdout is block-buffered: supervisors reading the
        # banner for the port would otherwise wait forever.
        sys.stdout.flush()

    ServiceServer(service, host=args.host, port=args.port,
                  on_ready=ready).run()
    out("service stopped")
    return 0


def cmd_compare(args, out):
    from repro.analysis import compare_suites, render_comparison
    from repro.harness.persistence import load_suite

    comparison = compare_suites(load_suite(args.before),
                                load_suite(args.after))
    out(render_comparison(comparison,
                          title=f"{args.before} -> {args.after}"))
    improved = comparison.improved(0.2)
    regressed = comparison.regressed(0.2)
    if improved:
        out(f"improved (ΔTLP > 0.2): {', '.join(improved)}")
    if regressed:
        out(f"regressed (ΔTLP < -0.2): {', '.join(regressed)}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallelism Analysis of Prominent "
                    "Desktop Applications' (ISPASS 2019)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark applications")
    sub.add_parser("system", help="print the Table I system spec")

    def add_machine_args(p):
        p.add_argument("--cores", type=int, default=None,
                       help="active logical CPUs (default: all 12)")
        p.add_argument("--no-smt", action="store_true",
                       help="disable hyper-threading")
        p.add_argument("--gpu", choices=sorted(GPUS), default=None,
                       help="installed GPU (default: gtx-1080-ti)")
        p.add_argument("--duration", type=float, default=60.0,
                       help="simulated seconds per iteration")
        p.add_argument("--iterations", type=int, default=3,
                       help="iterations (paper protocol: 3)")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="parallel simulation processes "
                            "(default: serial; 0 = one per CPU)")
        p.add_argument("--cache", default=None, metavar="DIR",
                       help="reuse simulation results cached under DIR "
                            "(created on first use)")
        p.add_argument("--streaming", action="store_true",
                       help="compute metrics in-simulation (O(1) memory, "
                            "bit-identical results) instead of recording "
                            "a trace")
        p.add_argument("--validate", action="store_true",
                       help="check every run against the trace-invariant "
                            "catalogue (fails loudly on an inconsistent "
                            "trace)")
        p.add_argument("--salvage", action="store_true",
                       help="degrade instead of aborting: recover the "
                            "longest valid prefix of a rejected trace "
                            "(or of a crashed run) and report the result "
                            "as partial")
        p.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry a failed run up to N times with "
                            "deterministic seeded backoff (implies the "
                            "supervised executor)")
        p.add_argument("--deadline-us", type=int, default=None,
                       metavar="US",
                       help="wall-clock budget per run attempt, in "
                            "microseconds; a run over budget is killed "
                            "and quarantined (implies process isolation)")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="write a checkpoint journal of the sweep to "
                            "PATH (JSONL, one fsynced line per run)")
        p.add_argument("--resume", default=None, metavar="PATH",
                       help="resume the sweep recorded in journal PATH, "
                            "restoring completed runs from the result "
                            "cache")
        p.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 25 "
                            "functions by cumulative time")
        add_hotpath_args(p)

    def add_hotpath_args(p):
        p.add_argument("--kernel", choices=("auto", "vector", "scalar"),
                       default=None,
                       help="sweep-kernel backend (sets REPRO_KERNEL): "
                            "vector = batched buffer kernels, scalar = "
                            "legacy tuple-list sweep; bit-identical "
                            "results either way")
        p.add_argument("--transport",
                       choices=("auto", "shm", "pickle"), default=None,
                       help="worker result transport (sets "
                            "REPRO_TRANSPORT): shm = shared-memory "
                            "segments, pickle = legacy pipe payloads")
        p.add_argument("--epoch", choices=("auto", "legacy"),
                       default=None,
                       help="simulation loop (sets REPRO_EPOCH): auto = "
                            "epoch-partitioned virtual clocks, legacy = "
                            "event-at-a-time; bit-identical results "
                            "either way")

    run_parser = sub.add_parser("run", help="run one application")
    run_parser.add_argument("app", help="registry key (see `list`)")
    run_parser.add_argument("--manual", action="store_true",
                            help="use the human-jitter input driver")
    run_parser.add_argument("--era", type=int, choices=(2010, 2018),
                            default=2018,
                            help="2010 runs the era model on Blake et "
                                 "al.'s machine")
    add_machine_args(run_parser)

    suite_parser = sub.add_parser("suite", help="run the Table II suite")
    suite_parser.add_argument("--apps", default=None,
                              help="comma-separated registry keys "
                                   "(default: all 30)")
    suite_parser.add_argument("--json", default=None,
                              help="also save results as JSON")
    suite_parser.add_argument("--csv", default=None,
                              help="also save results as CSV")
    add_machine_args(suite_parser)

    compare_parser = sub.add_parser(
        "compare", help="compare two stored suite JSON files")
    compare_parser.add_argument("before", help="baseline suite JSON")
    compare_parser.add_argument("after", help="new suite JSON")

    validate_parser = sub.add_parser(
        "validate",
        help="trace-invariant + golden-fingerprint regression check")
    validate_parser.add_argument(
        "--apps", default=None,
        help="comma-separated registry keys (default: all 30)")
    validate_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel simulation processes (default: serial)")
    validate_parser.add_argument(
        "--golden", default=None, metavar="PATH",
        help="golden file (default: tests/golden/golden_traces.json)")
    validate_parser.add_argument(
        "--update-golden", action="store_true",
        help="re-record golden fingerprints for the selected apps")
    validate_parser.add_argument(
        "--streaming", action="store_true",
        help="also run the streaming metrics engine over the grid and "
             "cross-check it against the same fingerprints")
    validate_parser.add_argument(
        "--no-static", action="store_true",
        help="skip the static work/span TLP-bound cross-check")
    add_hotpath_args(validate_parser)

    lint_parser = sub.add_parser(
        "lint",
        help="static concurrency analysis (no simulation): deadlock "
             "cycles, work/span TLP bounds, source lint")
    lint_parser.add_argument(
        "--apps", default=None,
        help="comma-separated registry keys")
    lint_parser.add_argument(
        "--all-apps", action="store_true",
        help="analyze every registered application (the default when "
             "--apps is not given)")
    lint_parser.add_argument("--cores", type=int, default=None,
                             help="active logical CPUs (default: all 12)")
    lint_parser.add_argument("--no-smt", action="store_true",
                             help="disable hyper-threading")
    lint_parser.add_argument("--gpu", choices=sorted(GPUS), default=None,
                             help="installed GPU (default: gtx-1080-ti)")
    lint_parser.add_argument(
        "--duration", type=float, default=1.0,
        help="analysis window in simulated seconds (bounds loop "
             "exploration; no simulation clock is involved)")
    lint_parser.add_argument("--seed", type=int, default=0,
                             help="seed handed to the shadow build")
    lint_parser.add_argument("--json", default=None, metavar="PATH",
                             help="also save the report as JSON")
    lint_parser.add_argument("--no-ast", action="store_true",
                             help="skip the AST source lint")
    lint_parser.add_argument(
        "--paths", nargs="*", default=None, metavar="PATH",
        help="files/directories for the AST lint "
             "(default: the shipped app models)")
    lint_parser.add_argument(
        "--fail-on", default="warning",
        choices=("error", "warning", "info"),
        help="minimum severity that makes the exit status nonzero")

    dse_parser = sub.add_parser(
        "dse",
        help="design-space exploration: simulate once per signature, "
             "score every config analytically, print Pareto frontiers")
    dse_parser.add_argument(
        "--apps", default=None,
        help="comma-separated registry keys "
             "(default: handbrake,premiere,excel)")
    dse_parser.add_argument(
        "--configs", type=int, default=200, metavar="N",
        help="generated machine configs in the campaign grid")
    dse_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the config generator, run seeds and the "
             "equivalence sample")
    dse_parser.add_argument(
        "--duration", type=float, default=1.0,
        help="simulated seconds per run (campaigns amortize one run "
             "over many configs; keep this modest)")
    dse_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel simulation processes (default: auto; 0 = one "
             "per CPU)")
    dse_parser.add_argument(
        "--chunk", type=int, default=4, metavar="K",
        help="specs per supervisor pipe round-trip (batched dispatch)")
    dse_parser.add_argument(
        "--equivalence", type=int, default=8, metavar="N",
        help="configs re-simulated in full to check the analytic path "
             "(0 disables the check)")
    dse_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="frontier points printed per app (tables only; JSON "
             "keeps all)")
    dse_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="reuse simulation results cached under DIR")
    dse_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed run up to N times")
    dse_parser.add_argument(
        "--deadline-us", type=int, default=None, metavar="US",
        help="wall-clock budget per run attempt, in microseconds")
    dse_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also save the campaign result as JSON")
    dse_parser.add_argument(
        "--scores", action="store_true",
        help="include every grid point's score in the JSON "
             "(not just the frontiers)")
    add_hotpath_args(dse_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="run the sweep service daemon (HTTP API over the "
             "supervised executor and the committed golden artifacts)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="bind port (default: 8765; 0 picks an ephemeral port)")
    serve_parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="simulation processes per sweep (default: 0 = auto, "
             "re-resolved at every submission)")
    serve_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-addressed result cache shared by all sweeps "
             "(created on first use); repeat submissions of computed "
             "grids never re-simulate")
    serve_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed run up to N times before quarantining it")
    serve_parser.add_argument(
        "--deadline-us", type=int, default=None, metavar="US",
        help="wall-clock budget per run attempt, in microseconds")
    serve_parser.add_argument(
        "--chunk", type=int, default=1, metavar="K",
        help="specs per supervisor pipe round-trip")
    serve_parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="write-ahead job ledger: every job transition is fsynced "
             "to PATH before it takes effect, and a restarted daemon "
             "replays it — finished sweeps restore through the result "
             "cache (zero re-simulation), interrupted ones re-enqueue "
             "and complete (implies --cache LEDGER.cache if unset)")
    serve_parser.add_argument(
        "--job-workers", type=int, default=2, metavar="N",
        help="dispatcher worker threads draining the job queue "
             "(default: 2; each job still fans out via its own "
             "executor)")
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="queued-job cap; submissions beyond it get 429 + "
             "Retry-After (default: 64; 0 = unbounded)")
    serve_parser.add_argument(
        "--job-ttl", type=float, default=None, metavar="S",
        help="evict done/failed jobs from memory S seconds after they "
             "finish (default: keep forever; the ledger keeps the "
             "durable record)")
    serve_parser.add_argument(
        "--drain-s", type=float, default=60.0, metavar="S",
        help="POST /shutdown drain bound: in-flight jobs still "
             "running after S seconds are failed as `deadline` and "
             "the server stops anyway (default: 60)")
    serve_parser.add_argument(
        "--hang-s", type=float, default=None, metavar="S",
        help="dispatcher heartbeat deadline: a worker silent for S "
             "seconds mid-job is declared hung, its job failed as "
             "`deadline`, and a replacement spawned (default: off)")
    serve_parser.add_argument(
        "--golden", default=None, metavar="PATH",
        help="golden fingerprint file served under /tables/goldens "
             "(default: tests/golden/golden_traces.json)")
    serve_parser.add_argument(
        "--dse", default=None, metavar="PATH",
        help="DSE frontier file served under /frontiers "
             "(default: tests/golden/golden_dse.json)")
    add_hotpath_args(serve_parser)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "system": cmd_system,
    "run": cmd_run,
    "suite": cmd_suite,
    "compare": cmd_compare,
    "validate": cmd_validate,
    "lint": cmd_lint,
    "dse": cmd_dse,
    "serve": cmd_serve,
}


def main(argv=None, out=print):
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    if getattr(args, "profile", False):
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        status = profiler.runcall(handler, args, out)
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream) \
            .sort_stats("cumulative").print_stats(25)
        out(stream.getvalue().rstrip())
        return status
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
