"""Reference datasets: prior-work numbers and paper-reported values."""

from repro.data.historical import (
    BLAKE_2010_GPU,
    BLAKE_2010_TLP,
    FIG2_LINEAGES,
    FIG3_LINEAGES,
    FLAUTNER_2000_TLP,
    PAPER_CATEGORY_AVERAGES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    historical_gpu,
    historical_tlp,
)

__all__ = [
    "BLAKE_2010_GPU",
    "BLAKE_2010_TLP",
    "FIG2_LINEAGES",
    "FIG3_LINEAGES",
    "FLAUTNER_2000_TLP",
    "PAPER_CATEGORY_AVERAGES",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "historical_gpu",
    "historical_tlp",
]
