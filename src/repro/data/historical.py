"""Historical measurements from the paper's prior work.

Figures 2 and 3 compare the 2018 measurements against Flautner et
al.'s 2000 study [13, 14] and Blake et al.'s 2010 study [3].  Those
numbers are *data* for the comparison figures (the 2000/2010 testbeds
are not re-simulated); the values below are digitized from the bar
charts of Figs. 2-3 and the prior papers' published results, at the
precision a bar chart allows.

2018 values come from our own simulated runs; the paper-reported
Table II values are also recorded here for paper-vs-measured
validation (``PAPER_TABLE2``).
"""

#: Flautner et al. 2000 — system-wide TLP on a 4-way SMP.
FLAUTNER_2000_TLP = {
    "Quake 2": 1.3,
    "Photoshop 4.0.1": 1.6,
    "AdobeReader 4.0": 1.2,
    "PowerPoint 97": 1.1,
    "Word 97": 1.2,
    "Excel 97": 1.2,
    "Quicktime 4.0.3": 1.4,
    "Premier 4.2": 1.7,
    "IE 5": 1.4,
}

#: Blake et al. 2010 — system-wide TLP on an 8-core/16-thread Xeon.
BLAKE_2010_TLP = {
    "Crysis": 2.0,
    "Call of Duty 4": 1.8,
    "Bioshock": 1.7,
    "Maya3D 2010": 2.4,
    "Photoshop CS4": 1.9,
    "AdobeReader 9.0": 1.6,
    "PowerPoint 2007": 1.4,
    "Word 2007": 1.3,
    "Excel 2007": 1.4,
    "Quicktime 7.6": 1.8,
    "Win Media Player (2010)": 1.9,
    "PowerDirector v7": 3.2,
    "HandBrake 0.9": 5.1,
    "Firefox 3.5": 1.8,
}

#: Blake et al. 2010 — GPU utilization (%) on the GTX 285.
BLAKE_2010_GPU = {
    "Call of Duty 4": 71.0,
    "Bioshock": 75.0,
    "Crysis": 83.0,
    "Maya3D 2010": 23.0,
    "Photoshop CS4": 7.4,
    "Street & Trips 2010": 16.0,
    "AdobeReader 9.0": 3.0,
    "PowerPoint 2007": 5.5,
    "Word 2007": 4.0,
    "Excel 2007": 4.5,
    "Quicktime 7.6": 27.0,
    "Win Media Player (2010)": 29.0,
    "PowerDirector v7": 12.0,
    "HandBrake 0.9": 1.5,
    "Safari 4.0": 10.0,
    "Firefox 3.5": 12.0,
}

#: Paper-reported Table II values: app key -> (TLP, GPU util %).
PAPER_TABLE2 = {
    "photoshop": (8.6, 1.6),
    "maya": (2.7, 9.9),
    "autocad": (1.2, 9.0),
    "acrobat": (1.3, 0.0),
    "excel": (2.1, 2.1),
    "powerpoint": (1.2, 4.0),
    "word": (1.3, 1.7),
    "outlook": (1.3, 2.5),
    "quicktime": (1.1, 16.4),
    "wmp": (1.3, 16.1),
    "vlc": (1.8, 15.7),
    "powerdirector": (4.3, 6.3),
    "premiere": (1.8, 0.6),
    "handbrake": (9.4, 0.4),
    "winx": (9.2, 13.6),
    "firefox": (2.2, 8.6),
    "chrome": (2.2, 5.1),
    "edge": (2.0, 4.0),
    "arizona-sunshine": (3.4, 68.2),
    "fallout4": (4.0, 84.9),
    "raw-data": (2.6, 90.9),
    "serious-sam": (2.4, 72.2),
    "space-pirate": (2.7, 61.6),
    "project-cars-2": (3.8, 80.2),
    "bitcoin-miner": (5.4, 98.9),
    "easyminer": (11.9, 96.1),
    "phoenixminer": (1.0, 100.0),
    "wineth": (1.0, 99.7),
    "cortana": (1.4, 2.7),
    "braina": (1.1, 0.0),
}

#: Paper-reported per-category averages (Table II's last two columns).
PAPER_CATEGORY_AVERAGES = {
    "Image Authoring": (4.2, 6.8),
    "Office": (1.4, 1.7),
    "Multimedia Playback": (1.4, 16.0),
    "Video Authoring": (3.1, 3.4),
    "Video Transcoding": (9.3, 7.0),
    "Web Browsing": (2.1, 5.9),
    "VR Gaming": (3.1, 76.3),
    "Cryptocurrency Mining": (4.8, 98.7),
    "Personal Assistant": (1.3, 1.4),
}

#: Paper-reported Table III (WinX): logical cores ->
#: {(metric, gpu_on): value}.
PAPER_TABLE3 = {
    4: {"rate_cpu": 9, "rate_gpu": 14, "tlp_cpu": 4.0, "tlp_gpu": 3.8,
        "util_cpu": 0.0, "util_gpu": 5.2},
    8: {"rate_cpu": 19, "rate_gpu": 27, "tlp_cpu": 7.9, "tlp_gpu": 7.0,
        "util_cpu": 0.0, "util_gpu": 10.0},
    12: {"rate_cpu": 28, "rate_gpu": 37, "tlp_cpu": 11.5, "tlp_gpu": 9.1,
         "util_cpu": 0.0, "util_gpu": 13.9},
}

#: Fig. 2 lineages: (category, [(label, year, source)]) where source is
#: a key into the historical dicts for 2000/2010 or an app registry key
#: for 2018 (measured live).
FIG2_LINEAGES = (
    ("3D Gaming", (
        ("Quake 2", 2000, "Quake 2"),
        ("Crysis", 2010, "Crysis"),
        ("Call of Duty 4", 2010, "Call of Duty 4"),
        ("Bioshock", 2010, "Bioshock"),
    )),
    ("VR Gaming", (
        ("Arizona Sunshine", 2018, "arizona-sunshine"),
        ("Fallout 4", 2018, "fallout4"),
        ("RAW Data", 2018, "raw-data"),
        ("Serious Sam", 2018, "serious-sam"),
        ("Space Pirate Trainer", 2018, "space-pirate"),
        ("Project CARS 2", 2018, "project-cars-2"),
    )),
    ("Image Authoring", (
        ("Photoshop 4.0.1", 2000, "Photoshop 4.0.1"),
        ("Maya3D 2010", 2010, "Maya3D 2010"),
        ("Photoshop CS4", 2010, "Photoshop CS4"),
        ("Maya3D 2018", 2018, "maya"),
        ("Photoshop CC", 2018, "photoshop"),
    )),
    ("Office", (
        ("AdobeReader 4.0", 2000, "AdobeReader 4.0"),
        ("PowerPoint 97", 2000, "PowerPoint 97"),
        ("Word 97", 2000, "Word 97"),
        ("Excel 97", 2000, "Excel 97"),
        ("AdobeReader 9.0", 2010, "AdobeReader 9.0"),
        ("PowerPoint 2007", 2010, "PowerPoint 2007"),
        ("Word 2007", 2010, "Word 2007"),
        ("Excel 2007", 2010, "Excel 2007"),
        ("AdobeReader DC", 2018, "acrobat"),
        ("PowerPoint 2016", 2018, "powerpoint"),
        ("Word 2016", 2018, "word"),
        ("Excel 2016", 2018, "excel"),
    )),
    ("Media Playback", (
        ("Quicktime 4.0.3", 2000, "Quicktime 4.0.3"),
        ("Quicktime 7.6", 2010, "Quicktime 7.6"),
        ("Win Media Player (2010)", 2010, "Win Media Player (2010)"),
        ("Quicktime 7.7.9", 2018, "quicktime"),
        ("Win Media Player", 2018, "wmp"),
    )),
    ("Video Authoring & Transcoding", (
        ("Premier 4.2", 2000, "Premier 4.2"),
        ("PowerDirector v7", 2010, "PowerDirector v7"),
        ("HandBrake 0.9", 2010, "HandBrake 0.9"),
        ("Premier Pro CC", 2018, "premiere"),
        ("PowerDirector v16", 2018, "powerdirector"),
        ("HandBrake 1.1.0", 2018, "handbrake"),
    )),
    ("Web Browsing", (
        ("IE 5", 2000, "IE 5"),
        ("Firefox 3.5", 2010, "Firefox 3.5"),
        ("Firefox v60", 2018, "firefox"),
        ("Edge", 2018, "edge"),
    )),
)

#: Fig. 3 lineages (GPU utilization, 2010 vs 2018).
FIG3_LINEAGES = (
    ("3D Gaming", (
        ("Call of Duty 4", 2010, "Call of Duty 4"),
        ("Bioshock", 2010, "Bioshock"),
        ("Crysis", 2010, "Crysis"),
    )),
    ("VR Gaming", (
        ("Arizona Sunshine", 2018, "arizona-sunshine"),
        ("Fallout 4", 2018, "fallout4"),
        ("RAW Data", 2018, "raw-data"),
        ("Serious Sam", 2018, "serious-sam"),
        ("Space Pirate Trainer", 2018, "space-pirate"),
        ("Project CARS 2", 2018, "project-cars-2"),
    )),
    ("Image Authoring", (
        ("Maya3D 2010", 2010, "Maya3D 2010"),
        ("Photoshop CS4", 2010, "Photoshop CS4"),
        ("Maya3D 2019", 2018, "maya"),
        ("Photoshop CC", 2018, "photoshop"),
        ("AutoCAD LT", 2018, "autocad"),
    )),
    ("Office", (
        ("Street & Trips 2010", 2010, "Street & Trips 2010"),
        ("AdobeReader 9.0", 2010, "AdobeReader 9.0"),
        ("PowerPoint 2007", 2010, "PowerPoint 2007"),
        ("Word 2007", 2010, "Word 2007"),
        ("Excel 2007", 2010, "Excel 2007"),
        ("AdobeReader DC", 2018, "acrobat"),
        ("PowerPoint 2016", 2018, "powerpoint"),
        ("Word 2016", 2018, "word"),
        ("Excel 2016", 2018, "excel"),
    )),
    ("Media Playback", (
        ("Quicktime 7.6", 2010, "Quicktime 7.6"),
        ("Quicktime 7.7.9", 2018, "quicktime"),
        ("Win Media Player", 2018, "wmp"),
        ("VLC Media Player", 2018, "vlc"),
    )),
    ("Video Authoring & Transcoding", (
        ("PowerDirector v7", 2010, "PowerDirector v7"),
        ("PowerDirector v16", 2018, "powerdirector"),
        ("Premiere Pro CC", 2018, "premiere"),
        ("HandBrake 0.9", 2010, "HandBrake 0.9"),
        ("HandBrake 1.1.0", 2018, "handbrake"),
        ("WinX", 2018, "winx"),
    )),
    ("Web Browsing", (
        ("Safari 4.0", 2010, "Safari 4.0"),
        ("Firefox 3.5", 2010, "Firefox 3.5"),
        ("Firefox v60", 2018, "firefox"),
        ("Chrome v66", 2018, "chrome"),
        ("Edge", 2018, "edge"),
    )),
)


def historical_tlp(label, year):
    """TLP reported by the prior work for a 2000/2010 application."""
    source = FLAUTNER_2000_TLP if year == 2000 else BLAKE_2010_TLP
    return source[label]


def historical_gpu(label):
    """GPU utilization reported by Blake et al. 2010."""
    return BLAKE_2010_GPU[label]
