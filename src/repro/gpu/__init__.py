"""GPU device model: engines, command packets, utilization, mining."""

from repro.gpu.device import (
    ALL_ENGINES,
    ENGINE_3D,
    ENGINE_COMPUTE,
    ENGINE_COPY,
    ENGINE_VIDEO_DECODE,
    ENGINE_VIDEO_ENCODE,
    GpuDevice,
    GpuEngine,
)
from repro.gpu.mining import BATCH_REF_US, HASHES_PER_BATCH, MiningStats

__all__ = [
    "ALL_ENGINES",
    "BATCH_REF_US",
    "ENGINE_3D",
    "ENGINE_COMPUTE",
    "ENGINE_COPY",
    "ENGINE_VIDEO_DECODE",
    "ENGINE_VIDEO_ENCODE",
    "GpuDevice",
    "GpuEngine",
    "HASHES_PER_BATCH",
    "MiningStats",
]
