"""GPU device model: engines executing command-stream packets.

WPA's GPU Utilization (FM) view shows *packets* — batches of API calls
packaged into a command stream — executing on GPU engines.  We model a
device as a set of serial engines (3D, video decode, video encode,
compute, copy).  A packet's service time is its nominal execution time
on the reference GTX 1080 Ti scaled by the target device's relative
throughput, so the same workload shows higher utilization on a weaker
card (the paper's Fig. 8b / Fig. 9 / Fig. 10 effect).
"""

import math
from collections import deque

from repro.hardware.catalog import GTX_1080_TI

#: Engine names mirroring WPA's GPU node taxonomy.
ENGINE_3D = "3D"
ENGINE_VIDEO_DECODE = "video-decode"
ENGINE_VIDEO_ENCODE = "video-encode"
ENGINE_COMPUTE = "compute"
ENGINE_COPY = "copy"

ALL_ENGINES = (ENGINE_3D, ENGINE_VIDEO_DECODE, ENGINE_VIDEO_ENCODE,
               ENGINE_COMPUTE, ENGINE_COPY)

#: Packet types that run on fixed-function blocks and therefore do not
#: scale with CUDA-core count (NVENC/NVDEC are roughly constant-speed
#: across the cards the paper tests).
_FIXED_FUNCTION_TYPES = frozenset({"nvenc", "nvdec"})

#: Memory-hard mining kernels (ethash) on architectures that predate
#: the cryptocurrency boom stall between packets (DAG paging, poor
#: occupancy) — the paper's explanation for the GTX 680's *lower*
#: Ethereum-miner utilization in Fig. 10.  The gap is a fraction of the
#: packet's own service time; compute-bound sha256d is unaffected.
_UNOPTIMIZED_MINING_GAP_FRACTION = 0.17
#: ... and the throughput penalty of the unoptimized kernels themselves.
_UNOPTIMIZED_MINING_SLOWDOWN = 1.6

_MEMORY_HARD_MINING_TYPES = frozenset({"ethash"})


class _Packet:
    __slots__ = ("process_name", "pid", "packet_type", "work_ref_us",
                 "submit_time", "done", "payload")

    def __init__(self, process_name, pid, packet_type, work_ref_us,
                 submit_time, done, payload):
        self.process_name = process_name
        self.pid = pid
        self.packet_type = packet_type
        self.work_ref_us = work_ref_us
        self.submit_time = submit_time
        self.done = done
        self.payload = payload


class GpuEngine:
    """One serial execution engine of a device.

    Two command queues: high-priority packets (compositor timewarp —
    real GPUs expose preemption-capable compute queues for exactly
    this) are always executed before queued normal work, though a
    packet already executing is never preempted mid-flight.
    """

    def __init__(self, device, name):
        self.device = device
        self.name = name
        self._high = deque()
        self._normal = deque()
        self._wakeup = None
        self.busy_us = 0
        self.packets_executed = 0
        device.env.process(self._run(), name=f"gpu-{device.spec.name}-{name}")

    @property
    def queue_depth(self):
        return len(self._high) + len(self._normal)

    def enqueue(self, packet, priority=0):
        (self._high if priority > 0 else self._normal).append(packet)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        env = self.device.env
        session = self.device.session
        epoch = env.epoch
        while True:
            while not self._high and not self._normal:
                self._wakeup = env.event()
                yield self._wakeup
            packet = (self._high.popleft() if self._high
                      else self._normal.popleft())
            gap, service = self.device.service_profile(
                packet.packet_type, packet.work_ref_us)
            # Engine processes are never interrupted, so both waits may
            # take the epoch virtual-clock skip (Environment.advance)
            # when nothing else would run before they fire.
            if gap and not (epoch and env.advance(gap)):
                yield env.timeout(gap)
            start = env.now
            # Occupancy edges bracket packet execution for streaming
            # consumers (guarded so untraced runs pay nothing).
            if session.subscribers:
                session.emit_engine_busy(packet.process_name, self.name)
            if not (epoch and env.advance(service)):
                yield env.timeout(service)
            self.busy_us += service
            self.packets_executed += 1
            if session.subscribers:
                session.emit_engine_idle(packet.process_name, self.name)
            session.emit_gpu_packet(
                packet.process_name, packet.pid, self.name,
                packet.packet_type, packet.submit_time, start, env.now)
            packet.done.succeed(packet.payload)


class GpuDevice:
    """A discrete GPU installed in the simulated machine."""

    def __init__(self, env, spec, session, reference=GTX_1080_TI):
        self.env = env
        self.spec = spec
        self.session = session
        self.reference = reference
        self.engines = {name: GpuEngine(self, name) for name in ALL_ENGINES}
        self.started_at = env.now

    @property
    def relative_throughput(self):
        """Compute throughput vs. the reference GTX 1080 Ti."""
        return self.spec.throughput_relative_to(self.reference)

    def service_profile(self, packet_type, work_ref_us):
        """Return ``(pre_gap_us, service_us)`` for a packet on this device."""
        if packet_type in _FIXED_FUNCTION_TYPES:
            return 0, max(1, int(work_ref_us
                                 * self.spec.video_engine_slowdown))
        service = work_ref_us / self.relative_throughput
        gap = 0
        if (packet_type in _MEMORY_HARD_MINING_TYPES
                and not self.spec.mining_optimized):
            service *= _UNOPTIMIZED_MINING_SLOWDOWN
            gap = int(service * _UNOPTIMIZED_MINING_GAP_FRACTION)
        return gap, max(1, int(math.ceil(service)))

    def submit(self, process, engine, packet_type, work_ref_us,
               payload=None, priority=0):
        """Submit a packet; returns an event firing on completion.

        ``work_ref_us`` is the packet's execution time on the reference
        GTX 1080 Ti in microseconds.  ``priority`` above zero routes it
        through the engine's preemption queue (executed ahead of any
        queued normal packets).
        """
        if engine not in self.engines:
            raise ValueError(f"unknown GPU engine {engine!r}; "
                             f"choose from {sorted(self.engines)}")
        if work_ref_us <= 0:
            raise ValueError("work_ref_us must be positive")
        done = self.env.event()
        packet = _Packet(process.name, process.pid, packet_type,
                         int(work_ref_us), self.env.now, done, payload)
        self.engines[engine].enqueue(packet, priority=priority)
        return done

    # -- device-side accounting (cross-validation vs WPA numbers) -------

    def busy_us(self, engine=None):
        """Total busy microseconds (one engine or summed over all)."""
        if engine is not None:
            return self.engines[engine].busy_us
        return sum(e.busy_us for e in self.engines.values())

    def utilization_pct(self, window_us, engine=None):
        """Device-side utilization over ``window_us`` (sum of packet
        running time / wall time, the paper's §III-B definition)."""
        if window_us <= 0:
            raise ValueError("window must be positive")
        return 100.0 * self.busy_us(engine) / window_us
