"""Hash-rate accounting for cryptocurrency mining workloads.

The paper reports mining performance as a *hash rate* alongside GPU
utilization (§V-D.2: the GTX 680's hash rate is at least 2x lower than
the 1080 Ti's even at equal utilization).  Miners submit fixed-size
kernel batches; this module converts executed batches into hash rates.
"""

from dataclasses import dataclass

#: Hashes per mining kernel batch at reference size.  The absolute
#: numbers are calibrated so the GTX 1080 Ti lands near its published
#: rates (~32 MH/s ethash, ~1.1 GH/s sha256d via cuda kernels).
HASHES_PER_BATCH = {
    "ethash": 6_400_000,
    "sha256d": 220_000_000,
}

#: Nominal batch execution time on the reference GTX 1080 Ti (µs).
BATCH_REF_US = {
    "ethash": 200_000,
    "sha256d": 200_000,
}


@dataclass
class MiningStats:
    """Counters a miner accumulates while running."""

    algorithm: str
    batches: int = 0
    cpu_hashes: float = 0.0

    def add_batch(self, count=1):
        self.batches += count

    def add_cpu_hashes(self, hashes):
        self.cpu_hashes += hashes

    def gpu_hashes(self):
        return self.batches * HASHES_PER_BATCH[self.algorithm]

    def hash_rate(self, elapsed_us):
        """Total hashes per second over ``elapsed_us``."""
        if elapsed_us <= 0:
            raise ValueError("elapsed time must be positive")
        total = self.gpu_hashes() + self.cpu_hashes
        return total / (elapsed_us / 1_000_000.0)
