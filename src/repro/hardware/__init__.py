"""Hardware specification catalog for the reproduction testbeds."""

from repro.hardware.catalog import (
    CORE_I7_8700K,
    GPUS,
    GTX_1080_TI,
    GTX_285,
    GTX_680,
    SMP_2000,
    XEON_2010,
    machine_2000,
    machine_2010,
    paper_machine,
)
from repro.hardware.specs import CpuSpec, GpuSpec, MachineSpec

__all__ = [
    "CORE_I7_8700K",
    "CpuSpec",
    "GPUS",
    "GTX_1080_TI",
    "GTX_285",
    "GTX_680",
    "GpuSpec",
    "MachineSpec",
    "SMP_2000",
    "XEON_2010",
    "machine_2000",
    "machine_2010",
    "paper_machine",
]
