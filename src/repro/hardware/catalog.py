"""Catalog of the concrete hardware used across the paper's 18 years.

Sources: Table I of the paper (2018 machine), Blake et al. ISCA'10
(2010 machine), Flautner et al. ASPLOS'00 (2000 machine), and the
NVIDIA specification sheets the paper cites for the GTX 285/680/1080Ti.
"""

from repro.hardware.specs import CpuSpec, GpuSpec, MachineSpec
from repro.os.work import WorkClass

#: Combined two-sibling throughput per work class, relative to a lone
#: thread.  FU-bound encode loops lose throughput under SMT (the Fig. 8
#: result); memory-bound work gains from latency hiding.
_SMT_THROUGHPUT = {
    WorkClass.FU_BOUND: 0.94,
    WorkClass.BALANCED: 1.18,
    WorkClass.MEMORY_BOUND: 1.38,
    WorkClass.UI: 1.05,
}

#: Intel Core i7-8700K — the paper's 2018 benchmarking CPU (Table I).
CORE_I7_8700K = CpuSpec(
    name="Intel Core i7-8700K",
    physical_cores=6,
    smt_ways=2,
    base_clock_ghz=3.70,
    turbo_clock_ghz=4.70,
    llc_mb=12,
    smt_throughput=dict(_SMT_THROUGHPUT),
)

#: Dual-socket Xeon from Blake et al. 2010 (4 cores x 2 sockets, SMT).
XEON_2010 = CpuSpec(
    name="Dual Intel Xeon E5520 (2010 testbed)",
    physical_cores=8,
    smt_ways=2,
    base_clock_ghz=2.26,
    turbo_clock_ghz=2.26,
    llc_mb=8,
    smt_throughput=dict(_SMT_THROUGHPUT),
)

#: Late-1990s SMP used by Flautner et al.; uniprocessor-era reference.
SMP_2000 = CpuSpec(
    name="Quad Pentium SMP (2000 testbed)",
    physical_cores=4,
    smt_ways=1,
    base_clock_ghz=0.55,
    turbo_clock_ghz=0.55,
    llc_mb=2,
    smt_throughput={},
)

#: NVIDIA GTX 1080 Ti — the paper's high-end GPU (3584 cores @ 1481 MHz).
GTX_1080_TI = GpuSpec(
    name="NVIDIA GTX 1080 Ti",
    cuda_cores=3584,
    clock_mhz=1481,
    architecture="Pascal",
    vram_gb=11,
    has_nvenc=True,
    mining_optimized=True,
    vr_capable=True,
)

#: NVIDIA GTX 680 — the paper's mid-end comparison GPU (Kepler).
#: Kepler predates the cryptocurrency boom; the paper attributes the
#: lower Ethereum-miner utilization on this card to the architecture
#: not being optimized for mining workloads.
GTX_680 = GpuSpec(
    name="NVIDIA GTX 680",
    cuda_cores=1536,
    clock_mhz=1006,
    architecture="Kepler",
    vram_gb=2,
    has_nvenc=True,
    mining_optimized=False,
    vr_capable=False,  # below the GTX 970 floor required for VR
    video_engine_slowdown=2.2,  # Kepler-era VP5/NVENC vs Pascal
)

#: NVIDIA GTX 285 — used by Blake et al. in 2010 (240 cores @ 648 MHz).
GTX_285 = GpuSpec(
    name="NVIDIA GTX 285",
    cuda_cores=240,
    clock_mhz=648,
    architecture="Tesla",
    vram_gb=1,
    has_nvenc=False,
    mining_optimized=False,
    vr_capable=False,
    video_engine_slowdown=4.0,  # Tesla-era VP2
)


def paper_machine():
    """The 2018 benchmarking desktop of Table I (12 LCPUs, 1080 Ti)."""
    return MachineSpec(cpu=CORE_I7_8700K, gpu=GTX_1080_TI, ram_gb=64)


def machine_2010():
    """Blake et al.'s 2010 testbed (8C/16T Xeon, GTX 285, 6 GB RAM)."""
    return MachineSpec(cpu=XEON_2010, gpu=GTX_285, ram_gb=6,
                       os_name="Windows 7")


def machine_2000():
    """Flautner et al.'s 2000-era SMP reference machine."""
    return MachineSpec(cpu=SMP_2000, gpu=GTX_285, ram_gb=1,
                       os_name="Linux 2.2 / Windows 2000")


#: Name -> GpuSpec lookup used by the harness CLI and benches.
GPUS = {
    "gtx-1080-ti": GTX_1080_TI,
    "gtx-680": GTX_680,
    "gtx-285": GTX_285,
}
