"""Catalog of the concrete hardware used across the paper's 18 years —
plus the seeded parametric machine generator behind the DSE grid.

Sources: Table I of the paper (2018 machine), Blake et al. ISCA'10
(2010 machine), Flautner et al. ASPLOS'00 (2000 machine), and the
NVIDIA specification sheets the paper cites for the GTX 285/680/1080Ti.
The technology/DVFS scaling tables follow the lumos modelling
convention (ITRS projections normalized to a 45 nm reference point).
"""

import random

from repro.hardware.specs import CpuSpec, GpuSpec, MachineSpec, ParametricMachine
from repro.os.energy import EnergyCoefficients, default_coefficients
from repro.os.work import WorkClass

#: Combined two-sibling throughput per work class, relative to a lone
#: thread.  FU-bound encode loops lose throughput under SMT (the Fig. 8
#: result); memory-bound work gains from latency hiding.
_SMT_THROUGHPUT = {
    WorkClass.FU_BOUND: 0.94,
    WorkClass.BALANCED: 1.18,
    WorkClass.MEMORY_BOUND: 1.38,
    WorkClass.UI: 1.05,
}

#: Intel Core i7-8700K — the paper's 2018 benchmarking CPU (Table I).
CORE_I7_8700K = CpuSpec(
    name="Intel Core i7-8700K",
    physical_cores=6,
    smt_ways=2,
    base_clock_ghz=3.70,
    turbo_clock_ghz=4.70,
    llc_mb=12,
    smt_throughput=dict(_SMT_THROUGHPUT),
)

#: Dual-socket Xeon from Blake et al. 2010 (4 cores x 2 sockets, SMT).
XEON_2010 = CpuSpec(
    name="Dual Intel Xeon E5520 (2010 testbed)",
    physical_cores=8,
    smt_ways=2,
    base_clock_ghz=2.26,
    turbo_clock_ghz=2.26,
    llc_mb=8,
    smt_throughput=dict(_SMT_THROUGHPUT),
)

#: Late-1990s SMP used by Flautner et al.; uniprocessor-era reference.
SMP_2000 = CpuSpec(
    name="Quad Pentium SMP (2000 testbed)",
    physical_cores=4,
    smt_ways=1,
    base_clock_ghz=0.55,
    turbo_clock_ghz=0.55,
    llc_mb=2,
    smt_throughput={},
)

#: NVIDIA GTX 1080 Ti — the paper's high-end GPU (3584 cores @ 1481 MHz).
GTX_1080_TI = GpuSpec(
    name="NVIDIA GTX 1080 Ti",
    cuda_cores=3584,
    clock_mhz=1481,
    architecture="Pascal",
    vram_gb=11,
    has_nvenc=True,
    mining_optimized=True,
    vr_capable=True,
)

#: NVIDIA GTX 680 — the paper's mid-end comparison GPU (Kepler).
#: Kepler predates the cryptocurrency boom; the paper attributes the
#: lower Ethereum-miner utilization on this card to the architecture
#: not being optimized for mining workloads.
GTX_680 = GpuSpec(
    name="NVIDIA GTX 680",
    cuda_cores=1536,
    clock_mhz=1006,
    architecture="Kepler",
    vram_gb=2,
    has_nvenc=True,
    mining_optimized=False,
    vr_capable=False,  # below the GTX 970 floor required for VR
    video_engine_slowdown=2.2,  # Kepler-era VP5/NVENC vs Pascal
)

#: NVIDIA GTX 285 — used by Blake et al. in 2010 (240 cores @ 648 MHz).
GTX_285 = GpuSpec(
    name="NVIDIA GTX 285",
    cuda_cores=240,
    clock_mhz=648,
    architecture="Tesla",
    vram_gb=1,
    has_nvenc=False,
    mining_optimized=False,
    vr_capable=False,
    video_engine_slowdown=4.0,  # Tesla-era VP2
)


def paper_machine():
    """The 2018 benchmarking desktop of Table I (12 LCPUs, 1080 Ti)."""
    return MachineSpec(cpu=CORE_I7_8700K, gpu=GTX_1080_TI, ram_gb=64)


def machine_2010():
    """Blake et al.'s 2010 testbed (8C/16T Xeon, GTX 285, 6 GB RAM)."""
    return MachineSpec(cpu=XEON_2010, gpu=GTX_285, ram_gb=6,
                       os_name="Windows 7")


def machine_2000():
    """Flautner et al.'s 2000-era SMP reference machine."""
    return MachineSpec(cpu=SMP_2000, gpu=GTX_285, ram_gb=1,
                       os_name="Linux 2.2 / Windows 2000")


#: Name -> GpuSpec lookup used by the harness CLI and benches.
GPUS = {
    "gtx-1080-ti": GTX_1080_TI,
    "gtx-680": GTX_680,
    "gtx-285": GTX_285,
}


# -- parametric machines (the DSE grid) ---------------------------------
#
# ITRS-derived scaling tables normalized to a 45 nm reference node, in
# the lumos style: each tech node scales nominal voltage, achievable
# frequency and switching power relative to the reference.  The DSE
# engine treats frequency as *trace-rescaling* (the schedule replays
# with a different tick length) and voltage/power as *trace-invariant*
# (re-scored, never re-simulated).

#: Process nodes of the parametric family, newest last.
TECH_NODES = (45, 32, 22, 16, 11, 8)

#: Nominal supply voltage at 45 nm (V); nodes scale it down.
VDD_BASE_V = 1.0

#: Per-node nominal Vdd relative to :data:`VDD_BASE_V` (ITRS).
VDD_SCALE = {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62}

#: Per-node achievable frequency relative to the 45 nm reference.
FREQ_SCALE = {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85}

#: Per-node switching power relative to the 45 nm reference.
POWER_SCALE = {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12}

#: Per-node threshold voltage (V) — the floor of DVFS undervolting.
VTH_V = {45: 0.3201, 32: 0.297, 22: 0.2673, 16: 0.2409, 11: 0.2178,
         8: 0.198}

#: Overclock headroom: DVFS ratios may exceed nominal up to 1.3x.
DVFS_MAX = 1.3

#: 45 nm reference base clock of the parametric family (GHz).  The
#: paper machine's 3.7 GHz anchors it so a 45 nm / dvfs=1.0 parametric
#: machine and the i7-8700K share a time base.
REF_BASE_CLOCK_GHZ = CORE_I7_8700K.base_clock_ghz

#: Turbo headroom ratio, held fixed across the whole parametric family
#: (the 8700K's 4.7/3.7).  The scheduler reads only the turbo/base
#: *ratio*, so uniform frequency scaling never perturbs the schedule.
TURBO_RATIO = CORE_I7_8700K.turbo_clock_ghz / CORE_I7_8700K.base_clock_ghz


def dvfs_bounds(tech_nm):
    """``(lo, hi)`` admissible DVFS voltage ratios at a tech node.

    The lower bound keeps Vdd above the node's threshold voltage; the
    upper bound is the fixed overclock headroom.
    """
    lo = VTH_V[tech_nm] / (VDD_SCALE[tech_nm] * VDD_BASE_V)
    return lo, DVFS_MAX


def clock_ghz(tech_nm, dvfs_ratio):
    """Effective base clock of a parametric machine (GHz): reference x
    node frequency scaling x DVFS ratio."""
    return REF_BASE_CLOCK_GHZ * FREQ_SCALE[tech_nm] * dvfs_ratio


def effective_clock_ghz(machine):
    """The clock a machine *actually* runs at, for scoring purposes.

    Parametric machines derive it from their tech/DVFS point; catalog
    machines run at their spec'd base clock.
    """
    tech = getattr(machine, "tech_nm", None)
    if tech is None:
        return machine.cpu.base_clock_ghz
    return clock_ghz(tech, machine.dvfs_ratio)


def parametric_cpu(cores, smt_ways=2, tech_nm=45, dvfs_ratio=1.0,
                   llc_mb=12):
    """A generated :class:`CpuSpec` at one DSE grid point.

    The spec'd clocks are deliberately the *reference* pair (the
    8700K's 3.7/4.7 GHz) for the entire family: the scheduler models
    only relative turbo behaviour — it consumes the clocks through the
    per-busy-core factor of :func:`repro.os.scheduler.
    compute_clock_factor` — so holding the sim-visible pair fixed
    makes the schedule bit-identical across every frequency point *by
    construction* (no float-rounding luck involved), which is what
    lets the DSE engine treat frequency as a trace-rescaling axis.
    The machine's actual frequency is a scoring-layer quantity:
    :func:`effective_clock_ghz` derives it from the tech node and
    DVFS ratio the :class:`~repro.hardware.specs.ParametricMachine`
    carries.
    """
    return CpuSpec(
        name=(f"param-{cores}c{smt_ways}t-{tech_nm}nm"
              f"-v{dvfs_ratio:.4f}"),
        physical_cores=cores,
        smt_ways=smt_ways,
        base_clock_ghz=REF_BASE_CLOCK_GHZ,
        turbo_clock_ghz=CORE_I7_8700K.turbo_clock_ghz,
        llc_mb=llc_mb,
        smt_throughput=dict(_SMT_THROUGHPUT),
    )


def parametric_machine(cores, smt_ways=2, tech_nm=45, dvfs_ratio=1.0,
                       gpu=GTX_1080_TI, coefficients=None, ram_gb=64):
    """One :class:`~repro.hardware.specs.ParametricMachine` grid point.

    Validates the DVFS point against :func:`dvfs_bounds`; the machine
    exposes ``cores * smt_ways`` logical CPUs (SMT is "off" simply by
    ``smt_ways=1``, so the whole family uses one code path).
    """
    if tech_nm not in VDD_SCALE:
        raise ValueError(f"unknown tech node {tech_nm} nm; "
                         f"choose from {TECH_NODES}")
    lo, hi = dvfs_bounds(tech_nm)
    if not lo <= dvfs_ratio <= hi:
        raise ValueError(
            f"dvfs_ratio={dvfs_ratio:.4f} outside [{lo:.4f}, {hi:.4f}] "
            f"at {tech_nm} nm")
    return ParametricMachine(
        cpu=parametric_cpu(cores, smt_ways, tech_nm, dvfs_ratio),
        gpu=gpu,
        ram_gb=ram_gb,
        os_name="parametric",
        tech_nm=tech_nm,
        dvfs_ratio=dvfs_ratio,
        coefficients=coefficients,
    )


#: Default core-count / SMT-way choices of the generator.
GENERATOR_CORES = (2, 4, 6, 8, 12, 16)
GENERATOR_SMT_WAYS = (1, 2)


def generate_machines(count, seed=0, cores=GENERATOR_CORES,
                      smt_ways=GENERATOR_SMT_WAYS, tech_nodes=TECH_NODES,
                      coefficient_jitter=0.25, gpu=GTX_1080_TI):
    """``count`` seed-determined parametric machines.

    Axes drawn per machine: core count and SMT ways (trace-changing),
    tech node and a DVFS point uniform inside the node's admissible
    band (trace-rescaling), and jittered energy coefficients —
    per-class active watts, idle watts and the clock exponent scaled
    by up to ``±coefficient_jitter`` (trace-invariant).  The same
    ``(count, seed, axes)`` always yields the same list, so a DSE
    campaign is reproducible end to end.
    """
    rng = random.Random(f"dse-machines:{seed}")
    machines = []
    for _ in range(count):
        tech = rng.choice(tech_nodes)
        lo, hi = dvfs_bounds(tech)
        jitter = (lambda: 1.0 + rng.uniform(-coefficient_jitter,
                                            coefficient_jitter))
        base = default_coefficients()
        coefficients = EnergyCoefficients(
            active_power_w={cls: watts * jitter()
                            for cls, watts in base.active_power_w.items()},
            cpu_idle_w=base.cpu_idle_w * jitter(),
            clock_exponent=base.clock_exponent + rng.uniform(-0.2, 0.2),
        )
        machines.append(parametric_machine(
            cores=rng.choice(cores),
            smt_ways=rng.choice(smt_ways),
            tech_nm=tech,
            dvfs_ratio=rng.uniform(lo, hi),
            gpu=gpu,
            coefficients=coefficients,
        ))
    return machines
