"""Hardware specification dataclasses.

These describe the *capabilities* of the machine being simulated; the
behavioural models live in :mod:`repro.os` (CPU scheduling) and
:mod:`repro.gpu` (GPU packet execution).
"""

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CpuSpec:
    """A CPU package.

    ``smt_throughput`` maps a work class (see :mod:`repro.os.work`) to
    the *combined* throughput of two hardware threads sharing a
    physical core, relative to one thread running alone.  Values below
    1.0 mean SMT hurts (functional-unit contention dominates), values
    above 1.0 mean SMT helps (latency hiding dominates).  This is the
    knob behind the paper's Fig. 8 finding that SMT lowers HandBrake's
    transcode rate.
    """

    name: str
    physical_cores: int
    smt_ways: int
    base_clock_ghz: float
    turbo_clock_ghz: float
    llc_mb: int
    smt_throughput: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.physical_cores < 1:
            raise ValueError("physical_cores must be >= 1")
        if self.smt_ways < 1:
            raise ValueError("smt_ways must be >= 1")

    @property
    def logical_cpus(self):
        """Total hardware threads exposed by this package."""
        return self.physical_cores * self.smt_ways


@dataclass(frozen=True)
class GpuSpec:
    """A discrete GPU.

    ``compute_throughput`` is normalized so the GTX 1080 Ti is 1.0 —
    packet service times on other devices scale by the inverse ratio,
    which is what produces the paper's Fig. 10 utilization contrast
    between the GTX 680 and the GTX 1080 Ti.
    """

    name: str
    cuda_cores: int
    clock_mhz: int
    architecture: str
    vram_gb: int
    has_nvenc: bool = True
    mining_optimized: bool = True
    vr_capable: bool = True
    #: Slowdown of the fixed-function video engines (NVDEC/NVENC)
    #: relative to Pascal's — older generations decode/encode slower,
    #: though far less than the CUDA-core gap.
    video_engine_slowdown: float = 1.0

    @property
    def raw_rate(self):
        """CUDA cores x clock, the first-order throughput proxy."""
        return self.cuda_cores * self.clock_mhz

    def throughput_relative_to(self, other):
        """Throughput of this device relative to ``other``."""
        return self.raw_rate / other.raw_rate


@dataclass(frozen=True)
class MachineSpec:
    """A complete benchmarking machine: CPU + GPU + platform config.

    ``active_logical_cpus`` models the paper's core-scaling experiments
    where only 4/8/12 logical CPUs are enabled; ``smt_enabled=False``
    exposes one hardware thread per physical core.
    """

    cpu: CpuSpec
    gpu: GpuSpec
    ram_gb: int = 64
    os_name: str = "Windows 10 Education 1803"
    active_logical_cpus: int = 0  # 0 means "all"
    smt_enabled: bool = True

    def __post_init__(self):
        limit = self.cpu.logical_cpus if self.smt_enabled else self.cpu.physical_cores
        if self.active_logical_cpus < 0 or self.active_logical_cpus > limit:
            raise ValueError(
                f"active_logical_cpus={self.active_logical_cpus} outside 0..{limit}")

    @property
    def logical_cpus(self):
        """Number of schedulable logical CPUs in this configuration."""
        limit = self.cpu.logical_cpus if self.smt_enabled else self.cpu.physical_cores
        return self.active_logical_cpus or limit

    @property
    def smt_ways(self):
        """Hardware threads per physical core in this configuration."""
        return self.cpu.smt_ways if self.smt_enabled else 1

    def with_logical_cpus(self, count):
        """A copy of this machine restricted to ``count`` logical CPUs."""
        return replace(self, active_logical_cpus=count)

    def with_smt(self, enabled):
        """A copy of this machine with SMT toggled."""
        return replace(self, smt_enabled=enabled, active_logical_cpus=0)

    def with_gpu(self, gpu):
        """A copy of this machine with a different GPU installed."""
        return replace(self, gpu=gpu)


@dataclass(frozen=True)
class ParametricMachine(MachineSpec):
    """A generated machine config — one point of the DSE grid.

    Extends the concrete catalog spec with the scaling axes of the
    design-space exploration engine (:mod:`repro.analysis.dse`):

    * ``tech_nm`` — process node; scales frequency, voltage and power
      through the ITRS-derived tables in
      :mod:`repro.hardware.catalog`.
    * ``dvfs_ratio`` — voltage ratio relative to the node's nominal
      point; frequency follows linearly, dynamic power cubically.
    * ``coefficients`` — an
      :class:`~repro.os.energy.EnergyCoefficients` bundle picked up by
      the energy model (``None`` keeps the defaults).

    None of these fields is read by the scheduler: the simulated
    schedule depends only on core count, SMT configuration and the
    turbo *ratio* (which the parametric family holds fixed), so two
    parametric machines differing only in tech node, DVFS point or
    coefficients replay the identical trace — the invariance the DSE
    axis partition is built on, and the reason these axes can be
    scored without re-simulating.
    """

    tech_nm: int = 45
    dvfs_ratio: float = 1.0
    coefficients: object = None  # os.energy.EnergyCoefficients
