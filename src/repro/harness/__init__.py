"""Experiment harness: runners, sweeps and the full-suite protocol."""

from repro.harness.runner import (
    DEFAULT_DURATION_US,
    DEFAULT_ITERATIONS,
    AppResult,
    SingleRun,
    run_app as _run_app_model,
    run_app_once as _run_app_once_model,
)
from repro.harness.cache import ResultCache
from repro.harness.colocate import ColocatedRun, run_colocated
from repro.harness.executor import (
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    make_spec,
    resolve_executor,
)
from repro.harness.suite import SuiteResult, run_suite
from repro.harness.supervisor import (
    FAILURE_KINDS,
    RunFailure,
    SupervisedExecutor,
    SweepJournal,
)
from repro.harness.sweeps import core_scaling_sweep, gpu_swap_sweep, smt_sweep


def _resolve(app, config):
    if isinstance(app, str):
        from repro.apps import create_app

        return create_app(app, **config)
    if config:
        raise ValueError("config kwargs only apply when app is a name")
    return app


def run_app(app, *, config=None, **kwargs):
    """Run an application (model instance or registry name) N times."""
    return _run_app_model(_resolve(app, config or {}), **kwargs)


def run_app_once(app, *, config=None, **kwargs):
    """Run a single traced iteration (model instance or registry name)."""
    return _run_app_once_model(_resolve(app, config or {}), **kwargs)


__all__ = [
    "AppResult",
    "ColocatedRun",
    "DEFAULT_DURATION_US",
    "DEFAULT_ITERATIONS",
    "FAILURE_KINDS",
    "ParallelExecutor",
    "ResultCache",
    "RunFailure",
    "RunSpec",
    "SerialExecutor",
    "SingleRun",
    "SuiteResult",
    "SupervisedExecutor",
    "SweepJournal",
    "core_scaling_sweep",
    "gpu_swap_sweep",
    "make_spec",
    "resolve_executor",
    "run_app",
    "run_app_once",
    "run_colocated",
    "run_suite",
    "smt_sweep",
]
