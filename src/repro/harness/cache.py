"""Content-addressed on-disk cache for simulation results.

A grid point is fully determined by (application + config, machine
spec, seed, duration, scheduler knobs, code version), so its
:class:`~repro.harness.runner.SingleRun` can be reused across
processes and across benchmark campaigns.  The cache maps a canonical
SHA-256 of that tuple to a pickled result file:

    <root>/<key[:2]>/<key>.pkl

Design points:

* **Canonical keys.**  ``key_for`` folds the spec into a canonical
  JSON document (sorted dict items, dataclasses by field, enums by
  value) before hashing, so dict ordering or spec spelling never
  splits the key space.  Objects without a stable canonical form
  (e.g. an application instance carrying a lambda) make the spec
  *uncacheable* — ``key_for`` returns ``None`` and the grid point is
  simply recomputed, never mis-keyed.
* **Code version.**  Every key includes ``repro.__version__``;
  bumping the package version invalidates the whole cache rather
  than risking stale physics.
* **Framed entries.**  Each file is ``[magic][payload length][CRC-32]
  [pickled result]``.  The frame is checked *before* any byte reaches
  the unpickler: a truncated write, a disk flip or a foreign file
  fails the cheap integrity check up front instead of relying on the
  pickle stream to happen to break — a truncated pickle can unpickle
  "successfully" to a wrong object, and a hostile one executes code.
* **Corruption fallback.**  An entry failing the frame check (or the
  unpickling after it) counts as a miss; the bad file is removed and
  the result recomputed, surfacing as a ``cache-corrupt`` incident
  under the supervised executor.
* **Atomic writes.**  Entries are written to a temp file and
  ``os.replace``d so concurrent writers (parallel executors of two
  campaigns) never expose half-written results.
"""

import enum
import hashlib
import json
import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import fields, is_dataclass
from pathlib import Path

import repro

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Entry frame: magic, pickled-payload length, CRC-32 of the payload.
#: The magic's trailing digit is the frame version — bump it when the
#: layout changes so older readers reject newer files cleanly.
CACHE_MAGIC = b"RPROCHE1"
_FRAME = struct.Struct("<8sQI")


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-results``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-results"


class UncacheableSpec(Exception):
    """The spec has no stable canonical form; skip the cache."""


def _canonical(value):
    """Reduce ``value`` to a JSON-serializable canonical structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        items = [[_canonical(k), _canonical(v)] for k, v in value.items()]
        items.sort(key=repr)
        return ["dict", items]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted((_canonical(v) for v in value), key=repr)]
    if isinstance(value, enum.Enum):
        return ["enum", type(value).__qualname__, _canonical(value.value)]
    if is_dataclass(value) and not isinstance(value, type):
        return ["dc", f"{type(value).__module__}.{type(value).__qualname__}",
                [[f.name, _canonical(getattr(value, f.name))]
                 for f in fields(value)]]
    raise UncacheableSpec(f"no canonical form for {type(value)!r}")


def _canonical_app(app, config):
    if isinstance(app, str):
        return ["name", app, _canonical(config)]
    return ["model", f"{type(app).__module__}.{type(app).__qualname__}",
            _canonical(vars(app))]


#: Run knobs that do not affect simulation results and therefore must
#: not split the key space (``validate`` only *observes* a run).
_NON_PHYSICAL_KNOBS = frozenset({"validate"})


def machine_digest(machine):
    """SHA-256 hex digest of a machine spec's full canonical form.

    The digest covers the concrete dataclass type and *every* field —
    for a :class:`~repro.hardware.specs.ParametricMachine` that
    includes the tech node, DVFS point and the attached energy
    coefficients, none of which exist on a plain catalog spec.  Keyed
    separately in :func:`spec_key` so a generated DSE config can never
    collide with a catalog machine (or with another grid point) even
    if their scheduler-visible fields coincide.
    """
    blob = json.dumps(_canonical(machine), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_key(spec, code_version=None):
    """Canonical SHA-256 hex key of a :class:`RunSpec`, or ``None``."""
    try:
        machine = spec.kwargs.get("machine")
        payload = {
            "code": code_version or repro.__version__,
            "app": _canonical_app(spec.app, spec.config),
            "machine": (machine_digest(machine)
                        if machine is not None else None),
            "kwargs": _canonical({k: v for k, v in spec.kwargs.items()
                                  if k not in _NON_PHYSICAL_KNOBS}),
        }
    except UncacheableSpec:
        return None
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickled :class:`SingleRun` results keyed by canonical spec hash."""

    def __init__(self, root=None, code_version=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.code_version = code_version or repro.__version__
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def key_for(self, spec):
        """Cache key for ``spec`` (``None`` when uncacheable)."""
        return spec_key(spec, code_version=self.code_version)

    def _path(self, key):
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key):
        """``(result,)`` on a hit, ``None`` on a miss.

        The one-tuple wrapper keeps a legitimately-``None`` payload
        distinguishable from a miss.
        """
        return self.load_classified(key)[1]

    def load_classified(self, key):
        """Like :meth:`load`, but says *why* there was no payload.

        Returns ``("hit", (result,))``, ``("miss", None)``, or
        ``("corrupt", None)`` when the entry existed but could not be
        unpickled — the bad file is deleted either way, but the
        supervised executor records the corruption as a
        ``cache-corrupt`` incident instead of treating it as an
        ordinary cold miss.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            self.misses += 1
            return ("miss", None)
        except Exception:
            return self._corrupt(path)
        # Integrity gate: no byte reaches the unpickler until the
        # frame (magic, exact length, checksum) vouches for it.
        if len(blob) < _FRAME.size:
            return self._corrupt(path)
        magic, length, crc = _FRAME.unpack_from(blob)
        payload = blob[_FRAME.size:]
        if (magic != CACHE_MAGIC or len(payload) != length
                or zlib.crc32(payload) != crc):
            return self._corrupt(path)
        try:
            result = pickle.loads(payload)
        except Exception:
            return self._corrupt(path)
        self.hits += 1
        return ("hit", (result,))

    def _corrupt(self, path):
        """Drop a failed entry and classify the load as corrupt."""
        try:
            path.unlink()
        except OSError:
            pass
        self.misses += 1
        self.corrupt += 1
        return ("corrupt", None)

    def invalidate(self, key):
        """Drop the entry for ``key`` (reuse-time validation failed)."""
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def store(self, key, result):
        """Atomically persist ``result`` under ``key``.

        Unpicklable results are skipped (the run still returns its
        live value); the cache only ever fails open.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                payload = pickle.dumps(result,
                                       protocol=pickle.HIGHEST_PROTOCOL)
                fh.write(_FRAME.pack(CACHE_MAGIC, len(payload),
                                     zlib.crc32(payload)))
                fh.write(payload)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1
