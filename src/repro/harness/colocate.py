"""Co-located execution: several applications sharing one machine.

The paper's §VII suggests that "applications exhibiting complementary
TLP characteristics can be scheduled to execute concurrently to
achieve best utilization of the processor" — e.g. filling HandBrake's
serialization troughs with another task.  This harness runs N
application models inside a *single* booted kernel and measures each
application and the machine as a whole, so that suggestion can be
evaluated quantitatively (see ``benchmarks/bench_ext_coscheduling.py``).
"""

from dataclasses import dataclass, field

from repro.apps.base import AppRuntime
from repro.automation import AUTOIT, InputDriver
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.metrics import measure_gpu_utilization, measure_tlp
from repro.os import Kernel
from repro.sim import Environment
from repro.trace import CpuUsagePreciseTable, GpuUtilizationTable, TraceSession


@dataclass
class ColocatedRun:
    """Results of one multi-application run."""

    #: Per-application TLP results, keyed by app name.
    per_app_tlp: dict
    per_app_gpu: dict
    #: Combined metrics over the union of all application processes.
    combined_tlp: object
    combined_gpu: object
    #: System-wide TLP (every process, incl. background services).
    system_tlp: object
    outputs: dict = field(default_factory=dict)
    #: Per-application trace marks (for responsiveness analysis).
    marks: dict = field(default_factory=dict)
    cpu_table: object = None


def run_colocated(apps, machine=None, duration_us=60_000_000, seed=0,
                  driver_mode=AUTOIT, keep_tables=False):
    """Run several app models simultaneously on one machine.

    ``apps`` is an iterable of model instances (each used once).
    Returns a :class:`ColocatedRun`.
    """
    apps = list(apps)
    if not apps:
        raise ValueError("need at least one application")
    names = [app.name for app in apps]
    if len(set(names)) != len(names):
        raise ValueError("each application may appear only once")

    machine = machine or paper_machine()
    env = Environment()
    session = TraceSession(env, machine_name=machine.cpu.name)
    kernel = Kernel(env, machine, session=session, seed=seed)
    kernel.start_background_services()
    gpu = GpuDevice(env, machine.gpu, session)

    session.start()
    runtimes = {}
    end_time = env.now + duration_us
    for index, app in enumerate(apps):
        driver = InputDriver(kernel, mode=driver_mode, seed=seed + 31 * index)
        runtime = AppRuntime(kernel, gpu, driver, duration_us,
                             seed=seed + 97 * index)
        app.build(runtime)
        runtimes[app.name] = runtime
    env.run(until=end_time)
    trace = session.stop()

    cpu_table = CpuUsagePreciseTable.from_trace(trace)
    gpu_table = GpuUtilizationTable.from_trace(trace)
    n = machine.logical_cpus
    per_app_tlp, per_app_gpu, outputs, marks = {}, {}, {}, {}
    all_processes = set()
    for name, runtime in runtimes.items():
        processes = runtime.process_names
        all_processes |= processes
        per_app_tlp[name] = measure_tlp(cpu_table, n, processes=processes)
        per_app_gpu[name] = measure_gpu_utilization(gpu_table,
                                                    processes=processes)
        outputs[name] = dict(runtime.outputs)
        marks[name] = [m for m in trace.marks if m.process in processes]
    return ColocatedRun(
        per_app_tlp=per_app_tlp,
        per_app_gpu=per_app_gpu,
        combined_tlp=measure_tlp(cpu_table, n, processes=all_processes),
        combined_gpu=measure_gpu_utilization(gpu_table,
                                             processes=all_processes),
        system_tlp=measure_tlp(cpu_table, n),
        outputs=outputs,
        marks=marks,
        cpu_table=cpu_table if keep_tables else None,
    )
