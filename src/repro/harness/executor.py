"""Execution engine: fan out independent simulation grid points.

Every measurement the harness takes — an iteration of the Table II
protocol, one cell of the Fig. 8 SMT grid, one core count of the
Fig. 4 scaling sweep — is an independent, seed-determined simulation:
it builds its own :class:`~repro.sim.environment.Environment`, its own
kernel and its own trace session.  Nothing is shared between grid
points, so they can run in any order and on any number of worker
processes and still produce bit-identical results.

This module is the single submission path for those grid points:

* :class:`RunSpec` — a picklable description of one simulation
  (application, machine, seed, scheduler knobs);
* :class:`SerialExecutor` — runs specs in submission order in the
  current process (the seed behaviour);
* :class:`ParallelExecutor` — fans specs out over a
  ``concurrent.futures.ProcessPoolExecutor``; specs that cannot be
  pickled (e.g. an application instance carrying a lambda) fall back
  to in-process execution instead of failing;
* :func:`resolve_executor` — maps the user-facing ``jobs=N`` /
  ``executor=`` / ``cache=`` keyword surface onto a backend.

Both executors consult an optional
:class:`~repro.harness.cache.ResultCache` before simulating and store
fresh results afterwards, so re-running a benchmark suite skips
already-computed grid points.  ``keep_trace=True`` runs bypass the
cache entirely: traces are large, and callers who keep them want the
live artifacts.
"""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from dataclasses import dataclass, field

from repro.automation import AUTOIT
from repro.hardware import paper_machine
from repro.sim import SECOND

#: Default values of every :func:`repro.harness.runner.run_app_once`
#: knob.  Specs are normalized against these so the same grid point
#: hashes to the same cache key regardless of which keywords the
#: caller spelled out.  (The 60-second duration mirrors
#: ``runner.DEFAULT_DURATION_US``; it lives here to keep the import
#: graph acyclic — runner imports this module.)
RUN_DEFAULTS = {
    "machine": None,
    "duration_us": 60 * SECOND,
    "seed": 0,
    "driver_mode": AUTOIT,
    "keep_trace": False,
    "gpu_method": "sum",
    "background_services": True,
    "turbo": True,
    "dispatch_policy": "spread",
    "quantum": None,
    "streaming": False,
    "validate": False,
    "salvage": False,
    "fault": None,
    "fault_seed": 0,
}


@dataclass
class RunSpec:
    """One independent simulation grid point.

    ``app`` is either a registry key (preferred for process fan-out:
    the worker instantiates a fresh model) or an
    :class:`~repro.apps.base.AppModel` instance.  ``config`` holds
    ``create_app`` keyword arguments and only applies to the former.
    ``kwargs`` is the full, normalized keyword set for
    :func:`~repro.harness.runner.run_app_once`.
    """

    app: object
    config: dict = field(default_factory=dict)
    kwargs: dict = field(default_factory=dict)


def make_spec(app, config=None, **overrides):
    """Build a normalized :class:`RunSpec`.

    Unspecified knobs take their ``run_app_once`` defaults and
    ``machine=None`` resolves to the paper machine, so equivalent
    calls produce equivalent specs (and therefore equal cache keys).
    """
    unknown = set(overrides) - set(RUN_DEFAULTS)
    if unknown:
        raise TypeError(f"unknown run knobs: {sorted(unknown)}")
    kwargs = dict(RUN_DEFAULTS)
    kwargs.update(overrides)
    if kwargs["machine"] is None:
        kwargs["machine"] = paper_machine()
    return RunSpec(app=app, config=dict(config or {}), kwargs=kwargs)


def execute_spec(spec):
    """Run one spec to a :class:`~repro.harness.runner.SingleRun`.

    Module-level so a ``ProcessPoolExecutor`` worker can import it;
    the heavyweight imports stay inside to keep executor importable
    without dragging in the whole harness.
    """
    from repro.apps import create_app
    from repro.harness.runner import run_app_once

    app = spec.app
    if isinstance(app, str):
        app = create_app(app, **spec.config)
    elif spec.config:
        raise ValueError("config kwargs only apply when app is a name")
    return run_app_once(app, **spec.kwargs)


def execute_spec_transported(spec):
    """Pool-worker entry point: run the spec, then hand the result to
    the configured transport (:mod:`repro.harness.transport`) — a
    shared-memory handle under ``REPRO_TRANSPORT=shm``/``auto``, the
    plain (pickled) result otherwise."""
    from repro.harness.transport import encode_for_pipe

    return encode_for_pipe(execute_spec(spec))


def default_jobs():
    """Worker count for ``jobs=0`` (auto): the usable CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _CachingExecutor:
    """Shared map-with-cache logic of both backends.

    ``executed`` counts simulations actually run (cache hits excluded)
    — the warm-cache acceptance check reads it.  ``rejected`` counts
    cached entries that failed the reuse-time plausibility validation
    and were recomputed instead.
    """

    def __init__(self, cache=None):
        self.cache = cache
        self.executed = 0
        self.rejected = 0

    def map(self, specs):
        """Run every spec; returns results in submission order."""
        specs = list(specs)
        results = [None] * len(specs)
        keys = [None] * len(specs)
        pending = []
        for i, spec in enumerate(specs):
            if self.cache is not None and not spec.kwargs.get("keep_trace"):
                keys[i] = self.cache.key_for(spec)
                if keys[i] is not None:
                    hit = self.cache.load(keys[i])
                    if hit is not None:
                        if _cached_result_ok(hit[0], spec):
                            results[i] = hit[0]
                            continue
                        # A corrupt or implausible entry (truncated
                        # pickle survives unpickling, stale physics,
                        # foreign payload): drop it and recompute.
                        self.rejected += 1
                        self.cache.invalidate(keys[i])
            pending.append(i)
        self._execute(specs, pending, results)
        if self.cache is not None:
            for i in pending:
                if keys[i] is not None:
                    self.cache.store(keys[i], results[i])
        return results

    def _execute(self, specs, pending, results):
        raise NotImplementedError


def _cached_result_ok(run, spec):
    """Validate a cached result before reuse (cheap plausibility pass).

    Cached entries skip the simulator entirely, so a bad entry would
    feed every downstream table silently; this applies the
    :func:`repro.validate.invariants.check_single_run` invariants
    against the spec's machine before trusting it.
    """
    from repro.validate.invariants import check_single_run

    machine = spec.kwargs.get("machine")
    n_logical = machine.logical_cpus if machine is not None else None
    return not check_single_run(run, n_logical=n_logical)


class SerialExecutor(_CachingExecutor):
    """Run specs one after another in the current process."""

    jobs = 1

    def _execute(self, specs, pending, results):
        for i in pending:
            results[i] = execute_spec(specs[i])
            self.executed += 1


class ParallelExecutor(_CachingExecutor):
    """Fan specs out over a process pool.

    Results are bit-identical to :class:`SerialExecutor` because each
    grid point is fully seed-determined and owns its environment; the
    determinism regression test in ``tests/test_executor.py`` asserts
    it.  Unpicklable specs run in-process rather than failing.
    """

    def __init__(self, jobs=0, cache=None):
        super().__init__(cache)
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = auto)")
        self.jobs = jobs or default_jobs()

    def _execute(self, specs, pending, results):
        remote, local = [], []
        for i in pending:
            (remote if self.jobs > 1 and _picklable(specs[i])
             else local).append(i)
        if len(remote) == 1:
            local.append(remote.pop())
        if remote:
            from repro.harness.transport import decode_from_pipe

            pool = _ProcessPool(max_workers=min(self.jobs, len(remote)))
            futures = []
            try:
                futures = [(i, pool.submit(execute_spec_transported,
                                           specs[i]))
                           for i in remote]
                for i, future in futures:
                    try:
                        results[i] = decode_from_pipe(future.result())
                    except Exception as exc:
                        # The pool re-raises worker exceptions with the
                        # remote traceback only as a chained cause that
                        # plain `str(exc)` loses; pin it on the
                        # exception so callers can report where in the
                        # worker the run actually died.
                        if exc.__cause__ is not None:
                            exc.remote_traceback = str(exc.__cause__)
                        raise
            except BaseException:
                # KeyboardInterrupt or a worker failure: drop queued
                # work and do not block on stragglers — callers (the
                # supervisor journal above us) need control back now.
                # Results that already completed but will never be
                # consumed are unlinked so their shared-memory
                # segments do not outlive the sweep.
                from repro.harness.transport import ShmHandle, discard_result

                for _i, future in futures:
                    if future.done() and not future.cancelled():
                        try:
                            payload = future.result()
                        except Exception:
                            continue
                        if isinstance(payload, ShmHandle):
                            discard_result(payload)
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown(wait=True)
        for i in local:
            results[i] = execute_spec(specs[i])
        self.executed += len(pending)


def _picklable(spec):
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


def resolve_executor(jobs=None, executor=None, cache=None):
    """Map the harness keyword surface onto an executor backend.

    ``executor`` wins when given (``jobs`` must then be unset);
    ``jobs=None`` or ``1`` selects the serial backend, ``jobs=0``
    auto-sizes a process pool, ``jobs>1`` pins its worker count.
    """
    if executor is not None:
        if jobs is not None:
            raise ValueError("pass either jobs or executor, not both")
        return executor
    if jobs is None or jobs == 1:
        return SerialExecutor(cache=cache)
    if jobs == 0 and default_jobs() == 1:
        # Auto mode on a single usable CPU: a process pool is pure
        # IPC/startup overhead (the 0.67x pool result in
        # BENCH_hotpath.json), so auto degrades to serial.  An
        # explicit jobs=N pool is still honoured.
        return SerialExecutor(cache=cache)
    return ParallelExecutor(jobs=jobs, cache=cache)
