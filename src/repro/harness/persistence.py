"""Persist measurement results to JSON and load them back.

Long characterization campaigns (the paper's public repository keeps
its collected data) need results that outlive the Python process:
``save_suite``/``load_suite`` round-trip everything Table II and the
comparison figures need — per-app TLP/GPU summaries, concurrency
fractions, iteration values — without the heavyweight traces.
"""

import json

from repro.metrics import Summary


def _summary_to_dict(summary):
    return {"mean": summary.mean, "std": summary.std, "n": summary.n,
            "min": summary.minimum, "max": summary.maximum}


def _summary_from_dict(data):
    return Summary(mean=data["mean"], std=data["std"], n=data["n"],
                   minimum=data["min"], maximum=data["max"])


def app_result_to_dict(result):
    """Serialize an :class:`~repro.harness.runner.AppResult`."""
    return {
        "app_name": result.app_name,
        "display_name": result.display_name,
        "category": result.category.value,
        "tlp": _summary_to_dict(result.tlp),
        "gpu_util": _summary_to_dict(result.gpu_util),
        "fractions": list(result.fractions),
        "max_instantaneous": result.max_instantaneous,
        "gpu_capped": result.gpu_capped,
        "partial": getattr(result, "partial", False),
        "iteration_tlp": [run.tlp.tlp for run in result.runs],
        "iteration_gpu": [run.gpu_util.utilization_pct
                          for run in result.runs],
        "outputs": {key: value for key, value in result.outputs.items()
                    if isinstance(value, (int, float, str, bool))},
    }


class StoredAppResult:
    """A loaded result: same reading surface as a live AppResult."""

    def __init__(self, data):
        from repro.apps.base import Category

        self.app_name = data["app_name"]
        self.display_name = data["display_name"]
        self.category = Category(data["category"])
        self.tlp = _summary_from_dict(data["tlp"])
        self.gpu_util = _summary_from_dict(data["gpu_util"])
        self.fractions = list(data["fractions"])
        self.max_instantaneous = data["max_instantaneous"]
        self.gpu_capped = data["gpu_capped"]
        self.partial = data.get("partial", False)
        self.iteration_tlp = list(data["iteration_tlp"])
        self.iteration_gpu = list(data["iteration_gpu"])
        self.outputs = dict(data["outputs"])


def save_suite(suite_result, path, metadata=None):
    """Write a :class:`~repro.harness.suite.SuiteResult` to JSON.

    The document is rendered by the same payload builder and canonical
    encoder the sweep service uses, so a saved file is byte-identical
    to the service's ``GET /sweeps/{id}/result`` body for the same
    specs and metadata.
    """
    from repro.reporting.payloads import canonical_json_bytes, suite_payload

    with open(path, "wb") as fh:
        fh.write(canonical_json_bytes(suite_payload(suite_result,
                                                    metadata=metadata)))


def load_suite(path):
    """Load a stored suite; returns a SuiteResult over StoredAppResult."""
    from repro.harness.suite import SuiteResult
    from repro.reporting.payloads import SUITE_FORMAT

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != SUITE_FORMAT:
        raise ValueError(f"{path} is not a repro suite result file")
    from repro.harness.supervisor import RunFailure

    return SuiteResult(
        results={
            name: StoredAppResult(data)
            for name, data in payload["results"].items()
        },
        failures=[RunFailure.from_payload(data)
                  for data in payload.get("failures", ())])
