"""Experiment runner: boot machine, run testbench, measure, repeat.

One :func:`run_app_once` call is the paper's Fig. 1 workflow end to
end: start trace -> run testbench -> stop trace -> WPA extraction ->
TLP / GPU-utilization computation.  :func:`run_app` repeats it for N
iterations with derived seeds and reports mean / sigma, exactly like
the three-iteration protocol behind Table II.
"""

from dataclasses import dataclass, field

from repro.automation import AUTOIT, InputDriver
from repro.apps.base import AppRuntime
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.harness.executor import make_spec, resolve_executor
from repro.metrics import (
    FrameStats,
    OnlineMetricsEngine,
    Summary,
    measure_gpu_utilization,
    measure_tlp,
    summarize,
)
from repro.os import Kernel
from repro.sim import SECOND, Environment
from repro.trace import CpuUsagePreciseTable, GpuUtilizationTable, TraceSession

#: Default testbench length (simulated).  The paper traces runs of a
#: few minutes; 60 simulated seconds keeps every behavioural phase
#: while staying fast to simulate.
DEFAULT_DURATION_US = 60 * SECOND
#: Iterations per measurement, as in the paper.
DEFAULT_ITERATIONS = 3


@dataclass
class SingleRun:
    """Raw artifacts of one traced testbench run."""

    app_name: str
    seed: int
    duration_us: int
    tlp: object                 # metrics.TlpResult
    gpu_util: object            # metrics.GpuUtilResult
    outputs: dict
    process_names: set
    memory_counters: object     # os.ProcessCounters (aggregated)
    energy: object = None       # os.EnergyReport for the app's processes
    #: ``{(work_class, clock_factor): µs}`` for the app's processes —
    #: the exact integral the energy report was computed from, kept so
    #: the DSE engine can re-score this run under other energy
    #: coefficients without re-simulating (see repro.analysis.dse).
    activity: dict = None
    #: Total GPU engine-busy microseconds over the run's window (the
    #: numerator of the energy model's GPU busy fraction).
    gpu_busy_us: int = 0
    trace: object = None        # EtlTrace, only when keep_trace=True
    cpu_table: object = None
    gpu_table: object = None
    frames: list = field(default_factory=list)
    marks: list = field(default_factory=list)
    frame_stats: object = None  # metrics.FrameStats
    #: True when metrics cover a salvaged prefix, not the full window.
    partial: bool = False
    salvage: object = None      # trace.salvage.SalvageInfo when partial


@dataclass
class AppResult:
    """Mean/sigma across iterations — one row of Table II."""

    app_name: str
    display_name: str
    category: object
    tlp: Summary
    gpu_util: Summary
    fractions: list             # mean c_0..c_n across iterations
    max_instantaneous: int
    gpu_capped: bool
    runs: list
    #: True when any surviving iteration is partial (salvaged) or some
    #: iterations were lost to quarantined failures.
    partial: bool = False

    @property
    def outputs(self):
        """Outputs of the first iteration (deterministic headline run)."""
        return self.runs[0].outputs


def run_app_once(app, machine=None, duration_us=DEFAULT_DURATION_US,
                 seed=0, driver_mode=AUTOIT, keep_trace=False,
                 gpu_method="sum", background_services=True, turbo=True,
                 dispatch_policy="spread", quantum=None, streaming=False,
                 validate=False, salvage=False, fault=None, fault_seed=0):
    """Run one traced iteration of ``app`` and measure it.

    ``streaming=True`` computes TLP / GPU utilization / frame stats
    with the in-simulation :class:`OnlineMetricsEngine` instead of
    recording a trace and post-processing it — bit-identical results
    in O(1) memory.  Incompatible with ``keep_trace`` (there is no
    trace to keep); per-record artifacts (``frames``, ``marks``,
    tables) are empty in this mode.

    ``validate=True`` checks the run against the trace-invariant
    catalogue (:mod:`repro.validate`): the live occupancy-edge stream
    is validated online in every mode, and the recorded trace is
    additionally validated post-hoc when one exists.  Violations raise
    :class:`~repro.validate.invariants.TraceValidationError`; the
    checks only observe, so results stay bit-identical.

    ``salvage=True`` degrades instead of aborting: a trace the
    validator rejects is cut back to its longest valid prefix
    (:func:`repro.trace.salvage.salvage_prefix`) and a simulation that
    dies mid-run keeps whatever the session recorded; either way the
    metrics are recomputed over the shorter window and the result
    comes back ``partial=True`` with a
    :class:`~repro.trace.salvage.SalvageInfo` attached.  Salvage
    implies post-hoc validation (there is nothing to salvage *from*
    otherwise) and needs a recorded trace, so it is incompatible with
    ``streaming``.

    ``fault`` injects a seeded failure for chaos testing: a trace
    fault from :data:`repro.validate.faults.FAULTS` corrupts the
    recorded trace post-hoc (deterministically under ``fault_seed``),
    an execution fault (``worker-crash``, ``worker-hang``,
    ``flaky-…``) detonates inside the simulation itself.
    """
    if streaming and keep_trace:
        raise ValueError("streaming=True does not retain a trace; "
                         "drop keep_trace")
    if streaming and salvage:
        raise ValueError("salvage recovers a prefix of the recorded "
                         "trace; incompatible with streaming")
    machine = machine or paper_machine()
    exec_fault = False
    if fault is not None:
        from repro.validate.faults import FAULTS, is_exec_fault

        exec_fault = is_exec_fault(fault)
        if not exec_fault:
            if fault not in FAULTS:
                raise ValueError(f"unknown fault: {fault!r}")
            if streaming:
                raise ValueError("trace faults corrupt the recorded "
                                 "trace; incompatible with streaming")
    env = Environment()
    session = TraceSession(env, machine_name=machine.cpu.name,
                           retain_records=not streaming)
    kernel = Kernel(env, machine, session=session, seed=seed, turbo=turbo,
                    dispatch_policy=dispatch_policy, quantum=quantum)
    if background_services:
        kernel.start_background_services()
    gpu = GpuDevice(env, machine.gpu, session)
    driver = InputDriver(kernel, mode=driver_mode, seed=seed + 7)
    runtime = AppRuntime(kernel, gpu, driver, duration_us, seed=seed)
    processes = runtime.process_names
    engine = None
    online_validator = None
    if validate:
        from repro.validate import OnlineValidator

        online_validator = OnlineValidator(session, machine.logical_cpus)
    if streaming:
        # The live process-name set stands in for post-hoc filtering:
        # names are registered at spawn, before any thread runs.
        engine = OnlineMetricsEngine(session, machine.logical_cpus,
                                     processes=processes)

    session.start()
    if exec_fault:
        from repro.validate.faults import install_exec_fault

        install_exec_fault(env, duration_us, fault)
    crash_exc = None
    if salvage:
        try:
            app.build(runtime)
            env.run(until=runtime.end_time)
            trace = session.stop()
        except Exception as exc:
            # Crash-salvage: keep whatever the session recorded.  The
            # abort seals the partial capture; a crash before any
            # simulated time elapsed leaves nothing to measure, so the
            # original error propagates.
            trace = session.abort()
            if trace is None or trace.stop_time <= trace.start_time:
                raise
            crash_exc = exc
    else:
        app.build(runtime)
        env.run(until=runtime.end_time)
        trace = session.stop()

    if fault is not None and not exec_fault and not streaming:
        from repro.validate.faults import inject_fault

        trace = inject_fault(trace, fault, seed=fault_seed)

    salvage_info = None
    if validate and online_validator is not None and crash_exc is None:
        # With salvage, the post-hoc pass below governs: an online
        # violation would abort the run the salvage asked to keep.
        if not salvage:
            online_validator.raise_if_failed()
    if (validate or salvage) and not streaming:
        from repro.trace.salvage import salvage_prefix
        from repro.validate import TraceValidator

        report = TraceValidator(machine.logical_cpus).validate(trace)
        prefix = None
        if not report.ok:
            if not salvage:
                report.raise_if_failed()
            prefix = salvage_prefix(trace, machine.logical_cpus,
                                    report=report)
            if prefix is None:
                # Nothing recoverable: surface the crash that caused
                # the mess, or the validation verdict itself.
                if crash_exc is not None:
                    raise crash_exc
                report.raise_if_failed()
            trace = prefix.trace
        salvage_info = _salvage_info(trace, runtime.end_time,
                                     crash_exc, prefix)

    if streaming:
        tlp = engine.tlp_result()
        gpu_util = engine.gpu_result(method=gpu_method)
        frame_stats = engine.frame_stats()
        cpu_table = gpu_table = None
        frames = []
        marks = []
    else:
        cpu_table = CpuUsagePreciseTable.from_trace(trace)
        gpu_table = GpuUtilizationTable.from_trace(trace)
        tlp = measure_tlp(cpu_table, machine.logical_cpus,
                          processes=processes)
        gpu_util = measure_gpu_utilization(gpu_table, processes=processes,
                                           method=gpu_method)
        frames = [f for f in trace.frames if f.process in processes]
        marks = [m for m in trace.marks if m.process in processes]
        frame_stats = FrameStats.from_records(frames)
    memory = _aggregate_counters(kernel.memory_model, processes)
    # A crashed run only consumed energy until the crash instant (the
    # environment starts at 0, so `env.now` is the elapsed window).
    energy = kernel.energy_model.report(
        duration_us if crash_exc is None else env.now,
        gpu_device=gpu, processes=processes)
    return SingleRun(
        app_name=app.name,
        seed=seed,
        duration_us=duration_us,
        tlp=tlp,
        gpu_util=gpu_util,
        outputs=dict(runtime.outputs),
        process_names=set(processes),
        memory_counters=memory,
        energy=energy,
        activity=kernel.energy_model.activity(processes),
        gpu_busy_us=gpu.busy_us(),
        trace=trace if keep_trace else None,
        cpu_table=cpu_table if keep_trace else None,
        gpu_table=gpu_table if keep_trace else None,
        frames=frames,
        marks=marks,
        frame_stats=frame_stats,
        partial=salvage_info is not None,
        salvage=salvage_info,
    )


def _salvage_info(trace, intended_stop, crash_exc, prefix):
    """Build the :class:`~repro.trace.salvage.SalvageInfo` of a
    degraded run, or ``None`` when the trace survived intact."""
    from repro.trace.salvage import SalvageInfo

    if crash_exc is None and prefix is None:
        return None
    if crash_exc is not None:
        reason = "crash"
        detail = f"{type(crash_exc).__name__}: {crash_exc}"
    else:
        reason = "invalid-trace"
        detail = "violated: " + ", ".join(prefix.invariants)
    return SalvageInfo(
        reason=reason,
        cut_time=trace.stop_time,
        original_stop=intended_stop,
        salvaged_us=trace.stop_time - trace.start_time,
        dropped_cswitches=prefix.dropped_cswitches if prefix else 0,
        dropped_gpu_packets=prefix.dropped_gpu_packets if prefix else 0,
        invariants=tuple(prefix.invariants) if prefix else (),
        detail=detail,
    )


def _aggregate_counters(memory_model, processes):
    """Merge per-process memory counters over the app's processes."""
    from repro.os.memmodel import ProcessCounters

    merged = ProcessCounters()
    for name in processes:
        counters = memory_model.counters(name)
        merged.work_us += counters.work_us
        merged.contended_us += counters.contended_us
        merged.llc_misses += counters.llc_misses
        merged.l1_stall_us += counters.l1_stall_us
        for work_class, amount in counters.by_class.items():
            merged.by_class[work_class] = (
                merged.by_class.get(work_class, 0) + amount)
    return merged


def iteration_specs(app, machine=None, duration_us=DEFAULT_DURATION_US,
                    iterations=DEFAULT_ITERATIONS, base_seed=100,
                    driver_mode=AUTOIT, keep_trace=False, gpu_method="sum",
                    turbo=True, dispatch_policy="spread", quantum=None,
                    streaming=False, validate=False, salvage=False,
                    fault=None, fault_seed=0):
    """The N seed-derived grid points of one ``run_app`` measurement."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    return [
        make_spec(app, machine=machine, duration_us=duration_us,
                  seed=base_seed + 17 * k, driver_mode=driver_mode,
                  keep_trace=keep_trace, gpu_method=gpu_method,
                  turbo=turbo, dispatch_policy=dispatch_policy,
                  quantum=quantum, streaming=streaming, validate=validate,
                  salvage=salvage, fault=fault, fault_seed=fault_seed)
        for k in range(iterations)
    ]


def summarize_runs(app, runs):
    """Aggregate per-iteration runs into one Table II row.

    Under the supervised executor some entries of ``runs`` may be
    quarantined :class:`~repro.harness.supervisor.RunFailure` records
    rather than runs; the row is computed over the surviving
    iterations and flagged ``partial``.  A measurement that lost every
    iteration has no row — that raises.
    """
    good = [r for r in runs if isinstance(r, SingleRun)]
    if not good:
        raise RuntimeError(
            f"all {len(runs)} iterations of {app.name} failed")
    n_levels = max(len(r.tlp.fractions) for r in good)
    fractions = [
        sum(r.tlp.fractions[i] if i < len(r.tlp.fractions) else 0.0
            for r in good) / len(good)
        for i in range(n_levels)
    ]
    return AppResult(
        app_name=app.name,
        display_name=app.display_name,
        category=app.category,
        tlp=summarize([r.tlp.tlp for r in good]),
        gpu_util=summarize([r.gpu_util.utilization_pct for r in good]),
        fractions=fractions,
        max_instantaneous=max(r.tlp.max_instantaneous for r in good),
        gpu_capped=any(r.gpu_util.capped for r in good),
        runs=good,
        partial=len(good) < len(runs) or any(r.partial for r in good),
    )


def run_app(app, machine=None, duration_us=DEFAULT_DURATION_US,
            iterations=DEFAULT_ITERATIONS, base_seed=100,
            driver_mode=AUTOIT, keep_trace=False, gpu_method="sum",
            turbo=True, dispatch_policy="spread", quantum=None,
            jobs=None, executor=None, cache=None, streaming=False,
            validate=False, salvage=False):
    """Run ``iterations`` seeded repetitions and summarize them.

    ``jobs`` selects the execution backend (``None``/1 serial, 0 an
    auto-sized process pool, N a pool of N workers); alternatively
    pass a prebuilt ``executor``.  ``cache`` is an optional
    :class:`~repro.harness.cache.ResultCache` consulted per iteration.
    ``validate=True`` runs every iteration under the trace-invariant
    checker (see :func:`run_app_once`).
    """
    specs = iteration_specs(
        app, machine=machine, duration_us=duration_us,
        iterations=iterations, base_seed=base_seed,
        driver_mode=driver_mode, keep_trace=keep_trace,
        gpu_method=gpu_method, turbo=turbo,
        dispatch_policy=dispatch_policy, quantum=quantum,
        streaming=streaming, validate=validate, salvage=salvage)
    runs = resolve_executor(jobs=jobs, executor=executor, cache=cache).map(specs)
    return summarize_runs(app, runs)
