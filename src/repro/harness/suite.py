"""Full-suite execution: the Table II protocol.

Runs every application in the registry for N iterations on the paper
machine and aggregates per-category averages, the overall average TLP
and the TLP > 4 count the paper's abstract headlines.

The whole protocol is one flat grid of independent simulations
(30 applications x 3 iterations), so it submits through the execution
engine in a single batch: ``jobs=N`` fans the grid out over N worker
processes with bit-identical results, and a ``cache`` skips grid
points a previous campaign already computed.
"""

from dataclasses import dataclass, field

from repro.apps import CATEGORIES, SUITE, create_app
from repro.harness.executor import resolve_executor
from repro.harness.runner import (
    DEFAULT_DURATION_US,
    DEFAULT_ITERATIONS,
    iteration_specs,
    summarize_runs,
)
from repro.metrics import mean


@dataclass
class SuiteResult:
    """Results for every application plus the aggregate views.

    Under a :class:`~repro.harness.supervisor.SupervisedExecutor` a
    sweep can lose individual grid points; ``failures`` carries their
    quarantined :class:`~repro.harness.supervisor.RunFailure` records,
    and an app whose every iteration failed has no row in ``results``
    (the aggregates are honest about what was actually measured).
    """

    results: dict                # app key -> AppResult
    failures: list = field(default_factory=list)

    def partial_apps(self):
        """App keys whose row is partial (salvaged or lost iterations)."""
        return [name for name, result in self.results.items()
                if getattr(result, "partial", False)]

    def category_averages(self):
        """{Category: (avg TLP, avg GPU util)} — Table II's last columns."""
        averages = {}
        for category, names in CATEGORIES.items():
            rows = [self.results[name] for name in names
                    if name in self.results]
            if rows:
                averages[category] = (
                    mean(r.tlp.mean for r in rows),
                    mean(r.gpu_util.mean for r in rows),
                )
        return averages

    def overall_average_tlp(self):
        """The abstract's headline: average TLP across all apps."""
        return mean(r.tlp.mean for r in self.results.values())

    def apps_with_tlp_above(self, threshold=4.0):
        """The paper reports 6 of 30 applications above TLP 4."""
        return [name for name, r in self.results.items()
                if r.tlp.mean > threshold]

    def apps_reaching_max_tlp(self, n_logical=12):
        """Applications whose instantaneous TLP touches the maximum."""
        return [name for name, r in self.results.items()
                if r.max_instantaneous >= n_logical]


def suite_spans(names, machine=None, duration_us=DEFAULT_DURATION_US,
                iterations=DEFAULT_ITERATIONS, **kwargs):
    """The flat spec grid of one suite, plus its per-app spans.

    Returns ``(spans, specs)`` where ``spans`` is ``[(app, lo, hi),
    ...]`` naming the slice of ``specs`` that measures each app.  The
    sweep service submits through this too, so a service sweep and a
    CLI suite of the same request are the *same* grid points — equal
    cache keys, equal digests, equal results.
    """
    specs, spans = [], []
    for name in names:
        app = create_app(name)
        app_specs = iteration_specs(app, machine=machine,
                                    duration_us=duration_us,
                                    iterations=iterations, **kwargs)
        spans.append((app, len(specs), len(specs) + len(app_specs)))
        specs.extend(app_specs)
    return spans, specs


def aggregate_results(spans, runs):
    """Fold executor output back into ``{app name: AppResult}`` rows.

    An app whose every iteration was quarantined has no row
    (``summarize_runs`` raises for it) — shared by :func:`run_suite`
    and the sweep service so both aggregate identically.
    """
    results = {}
    for app, lo, hi in spans:
        try:
            results[app.name] = summarize_runs(app, runs[lo:hi])
        except RuntimeError:
            # Every iteration quarantined; the caller's failure
            # records are the only honest row for this app.
            continue
    return results


def run_suite(names=SUITE, machine=None, duration_us=DEFAULT_DURATION_US,
              iterations=DEFAULT_ITERATIONS, jobs=None, executor=None,
              cache=None, **kwargs):
    """Run the Table II protocol over ``names`` and aggregate."""
    executor = resolve_executor(jobs=jobs, executor=executor, cache=cache)
    spans, specs = suite_spans(names, machine=machine,
                               duration_us=duration_us,
                               iterations=iterations, **kwargs)
    runs = executor.map(specs)
    return SuiteResult(
        results=aggregate_results(spans, runs),
        failures=list(getattr(executor, "failures", ())))
