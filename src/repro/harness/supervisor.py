"""Supervised experiment execution: the crash-tolerant campaign runner.

The plain executors (:mod:`repro.harness.executor`) are one-shot: a
single hung simulation stalls the sweep forever, a single raising
worker aborts it, and a killed process loses every completed grid
point.  That is fine for a 90-run Table II pass; it is not fine for
the campaign-scale sweeps of the core-scaling and SMT grids, where
*supervision* — not speed — decides whether the sweep finishes (the
same argument parallel GPU-simulator campaigns make for restartable
fan-out).  This module wraps both backends in a supervisor that keeps
the sweep alive through every failure mode the harness can encounter:

* **Deadlines** — each run attempt gets a wall-clock budget; a
  watchdog terminates the worker that blows it and respawns a fresh
  one, so one wedged simulation costs one deadline, not the sweep.
* **Bounded retries** — failed attempts are re-queued up to
  ``retries`` times with deterministic seeded exponential backoff
  (``random.Random(f"{seed}:{index}:{attempt}")``), so transient
  faults heal without ever making the sweep nondeterministic.
* **Quarantine** — a run that exhausts its attempts becomes a
  structured :class:`RunFailure` in the result list (taxonomy:
  ``crash | deadline | invalid-trace | cache-corrupt``) while every
  other grid point completes normally.
* **Checkpoint journal** — every resolved run is appended to a
  flushed-and-fsynced JSONL journal; ``resume=`` restarts a killed
  sweep, restoring completed runs through the content-addressed
  result cache and re-running only what is missing.  Because every
  grid point is seed-determined, the resumed sweep is bit-identical
  to an uninterrupted one.

The process pool here is deliberately *not*
``concurrent.futures.ProcessPoolExecutor``: killing one hung worker
of a futures pool poisons the whole executor.  Instead the supervisor
owns a small set of persistent :mod:`multiprocessing` workers joined
by pipes, multiplexed with :func:`multiprocessing.connection.wait`,
each individually terminable and respawnable.  Workers stay alive
across runs, so supervision adds pipe traffic and a poll tick — not a
process spawn — per grid point (the ``BENCH_supervisor`` benchmark
holds the overhead under 3% on the 150-run grid).
"""

import hashlib
import json
import multiprocessing
import os
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    _cached_result_ok,
    _picklable,
    default_jobs,
    execute_spec,
)
from repro.harness.transport import (
    decode_from_pipe,
    discard_result,
    encode_for_pipe,
    ShmHandle,
)

#: The complete failure taxonomy, in the order the docs present it.
FAILURE_KINDS = ("crash", "deadline", "invalid-trace", "cache-corrupt")

#: First line of every journal file.
JOURNAL_FORMAT = "repro-sweep-journal-v1"

#: Supervisor poll tick (seconds): bounds deadline-detection latency
#: and backoff wake-ups without measurable idle cost.
_TICK_S = 0.05


@dataclass(frozen=True)
class RunFailure:
    """One quarantined grid point.

    Takes the failed run's slot in the executor's result list (callers
    distinguish it from a run by type) and is collected on
    ``executor.failures``; ``kind`` is one of :data:`FAILURE_KINDS`.
    """

    index: int
    app: str
    seed: int
    kind: str
    attempts: int
    detail: str
    spec_key: str = None
    remote_traceback: str = ""

    def to_payload(self):
        return {
            "index": self.index,
            "app": self.app,
            "seed": self.seed,
            "kind": self.kind,
            "attempts": self.attempts,
            "detail": self.detail,
            "spec_key": self.spec_key,
        }

    @classmethod
    def from_payload(cls, data):
        return cls(
            index=data["index"], app=data["app"], seed=data["seed"],
            kind=data["kind"], attempts=data["attempts"],
            detail=data["detail"], spec_key=data.get("spec_key"))


def sweep_digest(keys):
    """Identity of a sweep: SHA-256 over its ordered spec keys.

    Uncacheable specs (key ``None``) keep their position under a
    placeholder, so two sweeps differing only in cacheable content
    still get distinct digests.  Stored in the journal header and
    verified on resume — resuming the wrong journal is an error, not
    a silently wrong sweep.
    """
    blob = json.dumps([key or "?" for key in keys],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-only JSONL checkpoint file of one sweep.

    Line 1 is a header (``format``, sweep ``digest``, ``total`` run
    count); every later line resolves one run index (``status`` of
    ``ok`` or ``failed``, the spec's cache ``key``, and the failure
    payload when quarantined).  Each line is flushed and fsynced
    before the sweep moves on, so a SIGKILL loses at most the line
    being written — and :meth:`load` tolerates exactly that one
    half-written final line.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh = None

    def start(self, digest, total, fresh=True):
        """Open for writing; ``fresh=False`` appends (resume)."""
        self._fh = open(self.path, "w" if fresh else "a",
                        encoding="utf-8")
        if fresh:
            self._write({"format": JOURNAL_FORMAT, "digest": digest,
                         "total": total})

    def record(self, index, key, status, partial=False, failure=None):
        self._write({"index": index, "key": key, "status": status,
                     "partial": partial, "failure": failure})

    def _write(self, entry):
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @staticmethod
    def load(path):
        """``(header, {index: last entry})`` of a journal on disk."""
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        header, entries = None, {}
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    break       # torn final line: the kill caught us mid-write
                raise ValueError(
                    f"corrupt sweep journal {path!r} at line {lineno + 1}")
            if header is None:
                if entry.get("format") != JOURNAL_FORMAT:
                    raise ValueError(f"{path!r} is not a sweep journal")
                header = entry
            else:
                entries[entry["index"]] = entry
        if header is None:
            raise ValueError(f"{path!r} is empty")
        return header, entries


def _worker_main(conn):
    """Persistent worker loop: recv a chunk of specs, send back one
    batched outcome message.

    A job is ``(indices, specs)`` — K grid points resolved in one pipe
    round-trip, so per-run IPC latency is paid once per chunk rather
    than once per run (the campaign-scale fix for per-run dispatch
    overhead dominating small simulations).  The reply is ``(indices,
    "batch", outcomes)`` with one outcome per spec, in order:
    ``("ok", payload)`` or ``("err", type name, message, formatted
    traceback)``.  Exceptions never cross the pipe as objects (a
    custom exception class may not unpickle in the parent); the
    formatted worker-side traceback is what survives for reporting.

    Result payloads cross either directly (pickle channel) or as a
    :class:`~repro.harness.transport.ShmHandle` naming a shared-memory
    segment the run was laid out in columnar form
    (``REPRO_TRANSPORT``); the parent's reap path decodes both.
    """
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        indices, specs = job
        outcomes = []
        for spec in specs:
            try:
                outcome = ("ok", encode_for_pipe(execute_spec(spec)))
            except KeyboardInterrupt:
                return
            except BaseException as exc:
                outcome = ("err", type(exc).__name__, str(exc),
                           traceback.format_exc())
            outcomes.append(outcome)
        try:
            conn.send((indices, "batch", outcomes))
        except KeyboardInterrupt:
            return
        except Exception as exc:
            # Some payload would not pickle: degrade every slot to an
            # error rather than wedging the pipe.
            try:
                conn.send((indices, "batch", [
                    ("err", type(exc).__name__,
                     f"result not transferable: {exc}",
                     traceback.format_exc())
                    for _ in specs]))
            except Exception:
                return


class _Worker:
    """One supervised worker process and its command pipe."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.job = None         # ([(index, attempt), ...], deadline | None)
        self._spawn()

    def _spawn(self):
        self.conn, child = self.ctx.Pipe()
        self.proc = self.ctx.Process(
            target=_worker_main, args=(child,), daemon=True)
        self.proc.start()
        child.close()

    def assign(self, entries, specs, deadline_s):
        """Send a chunk: ``entries`` is ``[(index, attempt), ...]``.

        The chunk's wall-clock budget is ``deadline_s`` per member —
        K serial runs legitimately take K deadlines, so the watchdog
        scales with the chunk rather than killing healthy batches.
        """
        deadline = (time.monotonic() + deadline_s * len(entries)
                    if deadline_s is not None else None)
        self.conn.send(([index for index, _ in entries], specs))
        self.job = (list(entries), deadline)

    def overdue(self, now):
        return self.job is not None and self.job[1] is not None \
            and now >= self.job[1]

    def respawn(self):
        self.discard()
        self._spawn()

    def discard(self):
        """Terminate the process (SIGTERM, then SIGKILL) and close up."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5)
        self.job = None

    def shutdown(self):
        """Polite exit for an idle worker; force for a busy one."""
        if self.job is None and self.proc.is_alive():
            try:
                self.conn.send(None)
                self.proc.join(timeout=1)
            except (OSError, ValueError):
                pass
        self.discard()


class SupervisedExecutor:
    """Deadline/retry/quarantine/checkpoint wrapper over both backends.

    Drop-in for the plain executors' ``map`` contract, with one
    extension: slots of runs that exhausted their attempts hold
    :class:`RunFailure` records instead of results (also collected on
    ``failures``; ``incidents`` holds non-fatal ``cache-corrupt``
    recoveries).  ``jobs`` follows :func:`resolve_executor` semantics
    — except that a ``deadline_s`` forces process isolation even for
    ``jobs=1``, because an in-process run cannot be killed.

    ``chunk`` batches K specs per worker pipe round-trip: results come
    back as one message per chunk, so per-run dispatch latency is paid
    ``1/K`` times — the campaign-scale knob for sweeps of many small
    runs.  Deadlines scale with the chunk (K runs get K budgets) and
    retries always re-run as singletons.

    ``journal`` writes a fresh checkpoint journal; ``resume`` loads an
    existing one, verifies it describes this exact sweep, restores
    completed runs via the result cache and continues appending to the
    same file.  Either implies a cache (an anonymous
    ``<journal>.cache`` if the caller passed none) — a journal without
    a cache could say *that* a run completed but not restore *what* it
    produced.
    """

    def __init__(self, jobs=None, cache=None, retries=0, deadline_s=None,
                 backoff_s=0.0, seed=0, journal=None, resume=None,
                 chunk=1):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if jobs is not None and jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = auto)")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if journal is not None and resume is not None:
            raise ValueError("pass either journal (fresh) or resume, "
                             "not both")
        self.jobs = jobs
        self.chunk = chunk
        self.retries = retries
        self.deadline_s = deadline_s
        self.backoff_s = backoff_s
        self.seed = seed
        self.journal_path = str(journal) if journal is not None else None
        self.resume_path = str(resume) if resume is not None else None
        checkpoint = self.journal_path or self.resume_path
        if cache is None and checkpoint is not None:
            cache = ResultCache(checkpoint + ".cache")
        self.cache = cache
        self.executed = 0       # simulation attempts actually run
        self.rejected = 0       # cached entries failing plausibility
        self.resumed = 0        # runs restored via journal + cache
        self.retried = 0        # attempts re-queued after a failure
        self.failures = []      # final RunFailure records
        self.incidents = []     # non-fatal recoveries (cache-corrupt)

    @property
    def cache_hits(self):
        """Grid points restored from the content-addressed cache —
        the counter that proves a recovered sweep re-simulated nothing
        it had already finished."""
        return self.cache.hits if self.cache is not None else 0

    # -- map -----------------------------------------------------------

    def map(self, specs):
        """Run every spec; result slots hold runs or RunFailures."""
        specs = list(specs)
        keys = [self._key_for(spec) for spec in specs]
        digest = sweep_digest(keys)
        results = [None] * len(specs)
        done = [False] * len(specs)
        completed_before = self._load_resume(specs, keys, digest)
        journal = None
        if self.journal_path or self.resume_path:
            journal = SweepJournal(self.journal_path or self.resume_path)
            journal.start(digest, len(specs),
                          fresh=self.resume_path is None)
        try:
            pending = []
            for index, spec in enumerate(specs):
                restored = self._restore_cached(
                    specs, keys, index, results, journal,
                    from_journal=index in completed_before)
                if restored:
                    done[index] = True
                else:
                    pending.append(index)
            if pending:
                self._execute(specs, keys, pending, results, journal)
        finally:
            if journal is not None:
                journal.close()
        return results

    def _key_for(self, spec):
        if self.cache is None or spec.kwargs.get("keep_trace"):
            return None
        return self.cache.key_for(spec)

    def _load_resume(self, specs, keys, digest):
        """Indices the resumed journal marks complete (``ok``)."""
        if self.resume_path is None:
            return frozenset()
        header, entries = SweepJournal.load(self.resume_path)
        if header["digest"] != digest or header["total"] != len(specs):
            raise ValueError(
                f"journal {self.resume_path!r} describes a different "
                f"sweep (digest/run-count mismatch); not resuming")
        # `failed` entries are deliberately not restored: a resume is
        # a fresh chance for runs that were quarantined last time.
        return frozenset(index for index, entry in entries.items()
                         if entry["status"] == "ok")

    def _restore_cached(self, specs, keys, index, results, journal,
                        from_journal):
        """Try to satisfy one grid point from the cache.

        Returns True when restored.  A corrupt entry is recorded as a
        non-fatal ``cache-corrupt`` incident (the classified load
        already deleted the bad file) and the run recomputes; an
        implausible entry is invalidated and recomputes.
        """
        key = keys[index]
        if key is None:
            return False
        status, hit = self.cache.load_classified(key)
        if status == "corrupt":
            self.incidents.append(RunFailure(
                index=index, app=_app_name(specs[index]),
                seed=specs[index].kwargs.get("seed", 0),
                kind="cache-corrupt", attempts=0, spec_key=key,
                detail="cache entry unreadable; deleted and recomputed"))
            return False
        if status != "hit":
            return False
        if not _cached_result_ok(hit[0], specs[index]):
            self.rejected += 1
            self.cache.invalidate(key)
            return False
        results[index] = hit[0]
        if from_journal:
            self.resumed += 1
        if journal is not None:
            journal.record(index, key, "ok",
                           partial=getattr(hit[0], "partial", False))
        return True

    # -- execution backends --------------------------------------------

    def _execute(self, specs, keys, pending, results, journal):
        pool_size = self._pool_size(len(pending))
        if pool_size == 0:
            self._run_serial(specs, keys, pending, results, journal)
            return
        remote = [i for i in pending if _picklable(specs[i])]
        local = [i for i in pending if not _picklable(specs[i])]
        if remote:
            self._run_pool(specs, keys, remote, results, journal,
                           min(pool_size, len(remote)))
        if local:
            self._run_serial(specs, keys, local, results, journal)

    def planned_backend(self, n_pending):
        """Human-readable backend a sweep of ``n_pending`` runs gets.

        ``"serial"`` or ``"pool-N"``.  Evaluated at call time — the
        auto-mode CPU clamp inside :meth:`_pool_size` consults the
        *current* usable-CPU count, so a long-running daemon that asks
        per sweep submission tracks affinity changes instead of
        freezing the startup-time answer (the PR-7 clamp would
        otherwise be decided exactly once).
        """
        size = self._pool_size(n_pending)
        return "serial" if size == 0 else f"pool-{size}"

    def _pool_size(self, n_pending):
        """Worker count, or 0 for in-process serial execution."""
        jobs = self.jobs
        if jobs == 0:
            # Auto mode clamps to the usable CPUs, and a one-CPU
            # machine gets no pool at all: a single pipe worker is
            # pure IPC overhead (the 0.67x pool-shm result in
            # BENCH_hotpath.json).  Explicit jobs=N keeps its pool.
            jobs = default_jobs()
            if jobs == 1:
                jobs = None
        if jobs is None or jobs == 1:
            # Serial — unless a deadline demands a killable worker.
            return 1 if self.deadline_s is not None else 0
        return min(jobs, n_pending)

    def _run_serial(self, specs, keys, items, results, journal):
        for index in items:
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = execute_spec(specs[index])
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    self.executed += 1
                    if self._retry(index, attempt):
                        continue
                    self._fail(specs, keys, index, _classify(exc),
                               attempt, f"{type(exc).__name__}: {exc}",
                               results, journal,
                               tb=traceback.format_exc())
                    break
                self.executed += 1
                self._complete(specs, keys, index, result, results,
                               journal)
                break

    def _run_pool(self, specs, keys, items, results, journal, n_workers):
        ctx = multiprocessing.get_context()
        queue = deque((index, 1, 0.0) for index in items)
        outstanding = len(items)
        workers = [_Worker(ctx) for _ in range(n_workers)]
        try:
            while outstanding:
                now = time.monotonic()
                self._dispatch(specs, workers, queue, now)
                busy = {w.conn: w for w in workers if w.job is not None}
                if not busy:
                    # Everything left is waiting out a backoff window.
                    time.sleep(min(_TICK_S, max(
                        0.0, min(nb for _, _, nb in queue) - now)))
                    continue
                for conn in _mpconn.wait(list(busy), timeout=_TICK_S):
                    outstanding -= self._reap(
                        specs, keys, busy[conn], results, journal, queue)
                now = time.monotonic()
                for worker in list(busy.values()):
                    if worker.overdue(now):
                        outstanding -= self._expire(
                            specs, keys, worker, results, journal, queue)
        finally:
            for worker in workers:
                worker.shutdown()

    def _dispatch(self, specs, workers, queue, now):
        for worker in workers:
            if worker.job is not None or not queue:
                continue
            entries = self._take_chunk(queue, now)
            if not entries:
                continue
            try:
                worker.assign(entries, [specs[i] for i, _ in entries],
                              self.deadline_s)
            except (OSError, ValueError):
                # The worker died between runs; give the chunk back
                # and bring up a replacement.
                for index, attempt in reversed(entries):
                    queue.appendleft((index, attempt, now))
                worker.respawn()

    def _take_chunk(self, queue, now):
        """Pop up to ``chunk`` ready first-attempt entries (one rotation
        of the queue), or a single ready retry.

        Retries always travel alone: a singleton keeps the deadline
        budget per-run precise and a flaky spec from re-poisoning a
        whole batch.
        """
        entries = []
        for _ in range(len(queue)):
            if len(entries) >= self.chunk:
                break
            index, attempt, not_before = queue.popleft()
            if not_before > now or (attempt > 1 and entries):
                queue.append((index, attempt, not_before))
                continue
            entries.append((index, attempt))
            if attempt > 1:
                break
        return entries

    def _reap(self, specs, keys, worker, results, journal, queue):
        """Handle one ready pipe: a batched outcome or a dead worker.

        Returns the number of grid points finally resolved (the rest
        were re-queued for another attempt).
        """
        entries, _ = worker.job
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-chunk (segfault, OOM-kill, hard
            # exit).  Results are batched per chunk, so nothing from
            # this chunk survived; every member is charged one failed
            # attempt (retries re-run as singletons).
            exitcode = worker.proc.exitcode
            worker.respawn()
            resolved = 0
            for index, attempt in entries:
                self.executed += 1
                if self._retry(index, attempt, queue):
                    continue
                self._fail(specs, keys, index, "crash", attempt,
                           f"worker process died (exit code {exitcode})",
                           results, journal)
                resolved += 1
            return resolved
        worker.job = None
        _, _, outcomes = message
        resolved = 0
        for (index, attempt), outcome in zip(entries, outcomes):
            self.executed += 1
            resolved += self._settle(specs, keys, index, attempt,
                                     outcome, results, journal, queue)
        return resolved

    def _settle(self, specs, keys, index, attempt, outcome, results,
                journal, queue):
        """Resolve one chunk member's outcome; 1 if final, 0 if retried."""
        if outcome[0] == "ok":
            try:
                result = decode_from_pipe(outcome[1])
            except Exception as exc:
                # The segment vanished or would not decode: treat it
                # like any other failed attempt (retry, then
                # quarantine) rather than crashing the sweep.
                if self._retry(index, attempt, queue):
                    return 0
                self._fail(specs, keys, index, "crash", attempt,
                           f"result transport failed: "
                           f"{type(exc).__name__}: {exc}",
                           results, journal, tb=traceback.format_exc())
                return 1
            self._complete(specs, keys, index, result, results,
                           journal)
            return 1
        _, exc_name, exc_message, remote_tb = outcome
        if self._retry(index, attempt, queue):
            return 0
        self._fail(specs, keys, index,
                   "invalid-trace" if exc_name == "TraceValidationError"
                   else "crash",
                   attempt, f"{exc_name}: {exc_message}",
                   results, journal, tb=remote_tb)
        return 1

    def _expire(self, specs, keys, worker, results, journal, queue):
        """Kill a worker that blew its deadline; retry or quarantine."""
        entries, _ = worker.job
        # The chunk may have finished in the race window between the
        # deadline check and now; drain the pipe so shared-memory
        # results that will never be decoded are unlinked, not leaked.
        try:
            while worker.conn.poll(0):
                message = worker.conn.recv()
                for outcome in message[2]:
                    if outcome[0] == "ok" and isinstance(outcome[1],
                                                         ShmHandle):
                        discard_result(outcome[1])
        except (EOFError, OSError):
            pass
        worker.respawn()
        resolved = 0
        for index, attempt in entries:
            self.executed += 1
            if self._retry(index, attempt, queue):
                continue
            self._fail(specs, keys, index, "deadline", attempt,
                       f"chunk exceeded its {self.deadline_s:g}s-per-run "
                       f"wall-clock deadline; worker terminated",
                       results, journal)
            resolved += 1
        return resolved

    # -- bookkeeping ---------------------------------------------------

    def _retry(self, index, attempt, queue=None):
        """Re-queue after a failed attempt if the budget allows."""
        if attempt > self.retries:
            return False
        self.retried += 1
        delay = self._backoff_delay(index, attempt)
        if queue is None:       # serial backend blocks in place
            if delay > 0:
                time.sleep(delay)
        else:
            queue.append((index, attempt + 1,
                          time.monotonic() + delay))
        return True

    def _backoff_delay(self, index, attempt):
        """Deterministic jittered exponential backoff, in seconds."""
        if self.backoff_s <= 0:
            return 0.0
        rng = random.Random(f"{self.seed}:{index}:{attempt}")
        return self.backoff_s * (2 ** (attempt - 1)) * (0.5 + rng.random())

    def _complete(self, specs, keys, index, result, results, journal):
        results[index] = result
        key = keys[index]
        if key is not None:
            self.cache.store(key, result)
        if journal is not None:
            journal.record(index, key, "ok",
                           partial=getattr(result, "partial", False))

    def _fail(self, specs, keys, index, kind, attempts, detail, results,
              journal, tb=""):
        failure = RunFailure(
            index=index, app=_app_name(specs[index]),
            seed=specs[index].kwargs.get("seed", 0), kind=kind,
            attempts=attempts, detail=detail, spec_key=keys[index],
            remote_traceback=tb)
        results[index] = failure
        self.failures.append(failure)
        if journal is not None:
            journal.record(index, keys[index], "failed",
                           failure=failure.to_payload())


def _classify(exc):
    """Failure kind of an in-process exception (name-based so the
    check works identically on pipe-serialized worker errors)."""
    return ("invalid-trace" if type(exc).__name__ == "TraceValidationError"
            else "crash")


def _app_name(spec):
    return spec.app if isinstance(spec.app, str) else spec.app.name
