"""Parameter sweeps: core scaling, SMT, GPU swap.

These drive the paper's architectural-decision experiments:

* :func:`core_scaling_sweep` — Fig. 4 (TLP at 4/8/12 logical CPUs) and
  the per-application time plots of Figs. 5-7.
* :func:`smt_sweep` — Fig. 8 (transcode rate and GPU utilization at
  2/4/6 physical cores, SMT on/off, two GPUs).
* :func:`gpu_swap_sweep` — Figs. 9-10 (GTX 680 vs GTX 1080 Ti).
"""

from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.harness.runner import DEFAULT_DURATION_US, run_app, run_app_once


def core_scaling_sweep(app_factory, logical_cpus=(4, 8, 12), machine=None,
                       duration_us=DEFAULT_DURATION_US, iterations=1,
                       **kwargs):
    """Run an app at several logical-CPU counts (SMT enabled).

    ``app_factory`` is a zero-argument callable returning a *fresh*
    application model (models may carry per-run state).  Returns an
    ordered dict ``{count: AppResult}``.
    """
    base = machine or paper_machine()
    results = {}
    for count in logical_cpus:
        results[count] = run_app(
            app_factory(), machine=base.with_logical_cpus(count),
            duration_us=duration_us, iterations=iterations, **kwargs)
    return results


def smt_sweep(app_factory, physical_cores=(2, 4, 6), gpus=None,
              duration_us=DEFAULT_DURATION_US, seed=11, **kwargs):
    """The Fig. 8 grid: physical cores x SMT on/off x GPU model.

    Returns ``{(gpu_name, smt_enabled, cores): SingleRun}``.  With SMT
    on, ``cores`` physical cores expose ``2*cores`` logical CPUs; with
    SMT off they expose ``cores``.
    """
    gpus = gpus or (GTX_1080_TI, GTX_680)
    results = {}
    for gpu in gpus:
        base = paper_machine().with_gpu(gpu)
        for smt in (True, False):
            for cores in physical_cores:
                machine = base.with_smt(smt).with_logical_cpus(
                    cores * (2 if smt else 1))
                results[(gpu.name, smt, cores)] = run_app_once(
                    app_factory(), machine=machine,
                    duration_us=duration_us, seed=seed, **kwargs)
    return results


def gpu_swap_sweep(app_factory, gpus=None, duration_us=DEFAULT_DURATION_US,
                   iterations=1, **kwargs):
    """Run an app on each GPU; returns ``{gpu_name: AppResult}``."""
    gpus = gpus or (GTX_680, GTX_1080_TI)
    results = {}
    for gpu in gpus:
        results[gpu.name] = run_app(
            app_factory(), machine=paper_machine().with_gpu(gpu),
            duration_us=duration_us, iterations=iterations, **kwargs)
    return results
