"""Parameter sweeps: core scaling, SMT, GPU swap.

These drive the paper's architectural-decision experiments:

* :func:`core_scaling_sweep` — Fig. 4 (TLP at 4/8/12 logical CPUs) and
  the per-application time plots of Figs. 5-7.
* :func:`smt_sweep` — Fig. 8 (transcode rate and GPU utilization at
  2/4/6 physical cores, SMT on/off, two GPUs).
* :func:`gpu_swap_sweep` — Figs. 9-10 (GTX 680 vs GTX 1080 Ti).

Every grid point is an independent simulation, so each sweep builds
its full grid of :class:`~repro.harness.executor.RunSpec` up front
and submits it through the execution engine in one batch — ``jobs=N``
/ ``executor=`` / ``cache=`` work exactly as in ``run_suite``.
"""

from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.harness.executor import make_spec, resolve_executor
from repro.harness.runner import (
    DEFAULT_DURATION_US,
    iteration_specs,
    summarize_runs,
)


def core_scaling_sweep(app_factory, logical_cpus=(4, 8, 12), machine=None,
                       duration_us=DEFAULT_DURATION_US, iterations=1,
                       jobs=None, executor=None, cache=None, **kwargs):
    """Run an app at several logical-CPU counts (SMT enabled).

    ``app_factory`` is a zero-argument callable returning a *fresh*
    application model (models may carry per-run state).  Returns an
    ordered dict ``{count: AppResult}``.
    """
    base = machine or paper_machine()
    executor = resolve_executor(jobs=jobs, executor=executor, cache=cache)
    specs, spans = [], []
    for count in logical_cpus:
        app = app_factory()
        app_specs = iteration_specs(app,
                                    machine=base.with_logical_cpus(count),
                                    duration_us=duration_us,
                                    iterations=iterations, **kwargs)
        spans.append((count, app, len(specs), len(specs) + len(app_specs)))
        specs.extend(app_specs)
    runs = executor.map(specs)
    return {count: summarize_runs(app, runs[lo:hi])
            for count, app, lo, hi in spans}


def smt_sweep(app_factory, physical_cores=(2, 4, 6), gpus=None,
              duration_us=DEFAULT_DURATION_US, seed=11, jobs=None,
              executor=None, cache=None, **kwargs):
    """The Fig. 8 grid: physical cores x SMT on/off x GPU model.

    Returns ``{(gpu_name, smt_enabled, cores): SingleRun}``.  With SMT
    on, ``cores`` physical cores expose ``2*cores`` logical CPUs; with
    SMT off they expose ``cores``.
    """
    gpus = gpus or (GTX_1080_TI, GTX_680)
    executor = resolve_executor(jobs=jobs, executor=executor, cache=cache)
    keys, specs = [], []
    for gpu in gpus:
        base = paper_machine().with_gpu(gpu)
        for smt in (True, False):
            for cores in physical_cores:
                machine = base.with_smt(smt).with_logical_cpus(
                    cores * (2 if smt else 1))
                keys.append((gpu.name, smt, cores))
                specs.append(make_spec(app_factory(), machine=machine,
                                       duration_us=duration_us, seed=seed,
                                       **kwargs))
    return dict(zip(keys, executor.map(specs)))


def gpu_swap_sweep(app_factory, gpus=None, duration_us=DEFAULT_DURATION_US,
                   iterations=1, jobs=None, executor=None, cache=None,
                   **kwargs):
    """Run an app on each GPU; returns ``{gpu_name: AppResult}``."""
    gpus = gpus or (GTX_680, GTX_1080_TI)
    executor = resolve_executor(jobs=jobs, executor=executor, cache=cache)
    specs, spans = [], []
    for gpu in gpus:
        app = app_factory()
        app_specs = iteration_specs(
            app, machine=paper_machine().with_gpu(gpu),
            duration_us=duration_us, iterations=iterations, **kwargs)
        spans.append((gpu.name, app, len(specs), len(specs) + len(app_specs)))
        specs.extend(app_specs)
    runs = executor.map(specs)
    return {name: summarize_runs(app, runs[lo:hi])
            for name, app, lo, hi in spans}
