"""Zero-copy columnar result transport between worker and parent.

Both process backends (the futures pool in
:mod:`repro.harness.executor` and the supervised pipe workers in
:mod:`repro.harness.supervisor`) ship each finished
:class:`~repro.harness.runner.SingleRun` back to the parent.  The
default channel is a pipe, which means the whole result — including a
retained trace's column stores — is pickled, chunked through the pipe
and re-materialized on the other side.

This module replaces that with a :mod:`multiprocessing.shared_memory`
segment per result.  The worker lays the run out as::

    [8-byte meta length][pickled metadata][raw column buffers ...]

where the metadata holds the small parts of the run (metrics, name
tables, layout descriptors) and every columnar ``array('q')`` buffer
of a retained trace is written as raw bytes — one ``memoryview`` copy
into the segment, no per-record pickling.  Only the tiny
:class:`ShmHandle` crosses the pipe; the parent maps the segment,
rebuilds the stores with bulk ``frombytes`` copies and unlinks it.

Selection is via the ``REPRO_TRANSPORT`` environment variable (or the
``--transport`` CLI flag, which sets it): ``auto`` (default) and
``shm`` use shared memory when the platform provides it, ``pickle``
forces the legacy pipe payloads.  Encoding falls back to the pickle
channel transparently whenever a result cannot be laid out (no shared
memory support, unpicklable metadata), so the transport is never a
correctness risk — results are bit-identical either way, which the
pool equivalence tests pin.

Lifecycle notes: this interpreter's ``resource_tracker`` registers a
segment on *attach* as well as on create, and would unlink segments
still in flight when the registering process exits.  Ownership is
therefore explicit: the worker creates, unregisters (its tracker must
not reap a segment the parent has yet to read) and closes; the parent
attaches, decodes, closes and unlinks — ``unlink`` balances the
attach-side registration itself, and it runs even on a failed decode,
so a bad segment cannot leak.
"""

import os
import pickle
import struct
from array import array
from dataclasses import dataclass, replace

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - shared_memory ships with 3.8+
    _resource_tracker = None
    _shared_memory = None

#: Environment switch for the result transport.
TRANSPORT_ENV = "REPRO_TRANSPORT"
TRANSPORT_CHOICES = ("auto", "shm", "pickle")

_LENGTH = struct.Struct("<Q")


def shm_available():
    """True when shared-memory segments can be created here."""
    return _shared_memory is not None


def transport_backend(override=None):
    """Resolve the transport selection to ``"shm"`` or ``"pickle"``."""
    value = override if override is not None else os.environ.get(
        TRANSPORT_ENV, "auto")
    value = value.strip().lower()
    if value not in TRANSPORT_CHOICES:
        raise ValueError(
            f"unknown transport {value!r}; choose from {TRANSPORT_CHOICES}")
    if value == "pickle":
        return "pickle"
    if value == "auto":
        # Mirror the executors' auto rule: on a single usable CPU the
        # pools degrade to in-process execution, so segment setup per
        # result would be pure overhead — auto rides the pipe there.
        # An explicit ``shm`` still forces shared memory.
        from repro.harness.executor import default_jobs

        if default_jobs() == 1:
            return "pickle"
    return "shm" if shm_available() else "pickle"


def shm_enabled(override=None):
    """True when results should cross via shared memory."""
    return transport_backend(override) == "shm"


@dataclass(frozen=True)
class ShmHandle:
    """The picklable token that crosses the pipe instead of the run."""

    name: str
    size: int


def _unregister(segment):
    """Detach ``segment`` from the resource tracker (manual ownership).

    Uses the segment's internal name — on POSIX that carries a leading
    slash the public ``name`` property strips, and the tracker knows
    it only under the internal form.
    """
    if _resource_tracker is not None:
        try:
            _resource_tracker.unregister(
                getattr(segment, "_name", segment.name), "shared_memory")
        except Exception:  # pragma: no cover - tracker variants differ
            pass


def _store_payload(store):
    """``(descriptor, buffers)`` of one column store.

    The descriptor carries the store's class, its name tables (small
    Python lists, pickled with the metadata) and the typecode/length
    of each array column; ``buffers`` holds the columns' raw bytes in
    descriptor order.
    """
    from repro.trace.columns import NameTable

    columns = []
    names = {}
    buffers = []
    for attr in type(store).__slots__:
        value = getattr(store, attr)
        if isinstance(value, array):
            view = memoryview(value).cast("B")
            columns.append((attr, value.typecode, len(view)))
            buffers.append(view)
        elif isinstance(value, NameTable):
            names[attr] = list(value.names)
    return {
        "class": type(store).__name__,
        "columns": columns,
        "names": names,
    }, buffers


def _rebuild_store(descriptor, buf, offset):
    """Reconstruct a column store from its descriptor and segment."""
    from repro.trace import columns as _columns

    store = getattr(_columns, descriptor["class"])()
    for attr, name_list in descriptor["names"].items():
        table = getattr(store, attr)
        table.names = list(name_list)
        table._ids = {name: i for i, name in enumerate(name_list)}
    for attr, typecode, nbytes in descriptor["columns"]:
        column = array(typecode)
        column.frombytes(buf[offset:offset + nbytes])
        setattr(store, attr, column)
        offset += nbytes
    return store, offset


def _columnar_groups(trace):
    """``{group: store}`` of a trace's still-columnar record groups."""
    from repro.trace.columns import _ColumnStore

    return {group: source
            for group, source in trace._sources.items()
            if isinstance(source, _ColumnStore)
            and group not in trace._materialized}


def encode_result(run):
    """Lay ``run`` out in a fresh shared-memory segment.

    Returns the :class:`ShmHandle` to send across the pipe, or
    ``None`` when the result should take the pickle channel instead
    (no shared-memory support, or the run resists pickling).  The
    caller owns nothing: the segment is closed worker-side and the
    parent's :func:`decode_result` unlinks it.
    """
    if _shared_memory is None:
        return None
    trace = getattr(run, "trace", None)
    descriptors = []
    buffers = []
    trace_meta = None
    core = run
    if trace is not None:
        groups = _columnar_groups(trace)
        if groups:
            for group, store in sorted(groups.items()):
                descriptor, store_buffers = _store_payload(store)
                descriptor["group"] = group
                descriptors.append(descriptor)
                buffers.extend(store_buffers)
            trace_meta = {
                "start_time": trace.start_time,
                "stop_time": trace.stop_time,
                "machine_name": trace.machine_name,
                "plain": {group: trace._group(group)
                          for group in trace._sources
                          if group not in groups},
            }
            # The tables are views over the same stores; rebuilt from
            # the reconstructed trace on the other side.
            core = replace(run, trace=None, cpu_table=None, gpu_table=None)
    try:
        meta = pickle.dumps((core, trace_meta, descriptors),
                            protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    payload = sum(len(view) for view in buffers)
    total = _LENGTH.size + len(meta) + payload
    try:
        segment = _shared_memory.SharedMemory(create=True, size=total)
    except Exception:  # pragma: no cover - e.g. /dev/shm unavailable
        return None
    try:
        _unregister(segment)
        buf = segment.buf
        buf[:_LENGTH.size] = _LENGTH.pack(len(meta))
        offset = _LENGTH.size
        buf[offset:offset + len(meta)] = meta
        offset += len(meta)
        for view in buffers:
            buf[offset:offset + len(view)] = view
            offset += len(view)
        return ShmHandle(name=segment.name, size=total)
    finally:
        segment.close()


def decode_result(handle):
    """Rebuild the run from ``handle``'s segment and unlink it.

    The segment is consumed: it is unlinked whether or not decoding
    succeeds, so a failed decode cannot leak shared memory.
    """
    from repro.trace.etl import EtlTrace

    # Attaching registers with the resource tracker; the unlink below
    # unregisters, so no manual bookkeeping is needed on this side.
    segment = _shared_memory.SharedMemory(name=handle.name)
    try:
        buf = segment.buf
        (meta_len,) = _LENGTH.unpack(buf[:_LENGTH.size])
        offset = _LENGTH.size
        core, trace_meta, descriptors = pickle.loads(
            buf[offset:offset + meta_len])
        offset += meta_len
        if trace_meta is None:
            return core
        groups = dict(trace_meta["plain"])
        for descriptor in descriptors:
            store, offset = _rebuild_store(descriptor, buf, offset)
            groups[descriptor["group"]] = store
        trace = EtlTrace(
            trace_meta["start_time"], trace_meta["stop_time"],
            machine_name=trace_meta["machine_name"], **groups)
        run = replace(core, trace=trace)
        if getattr(core, "cpu_table", True) is None:
            from repro.trace import CpuUsagePreciseTable, GpuUtilizationTable

            run = replace(run,
                          cpu_table=CpuUsagePreciseTable.from_trace(trace),
                          gpu_table=GpuUtilizationTable.from_trace(trace))
        return run
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double consume
            _unregister(segment)


def discard_result(handle):
    """Unlink a segment whose result will never be decoded (e.g. the
    supervisor quarantined the run after the worker replied)."""
    if _shared_memory is None:
        return
    try:
        segment = _shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()


def encode_for_pipe(run):
    """Worker-side helper: the payload to send over the pipe.

    A :class:`ShmHandle` when the shared-memory transport is on and
    the run could be laid out, else the run itself (pickle channel).
    """
    if not shm_enabled():
        return run
    handle = encode_result(run)
    return run if handle is None else handle


def decode_from_pipe(payload):
    """Parent-side inverse of :func:`encode_for_pipe`."""
    if isinstance(payload, ShmHandle):
        return decode_result(payload)
    return payload
