"""Live measurement of real processes (Linux /proc TLP sampler)."""

from repro.live.sampler import LinuxTlpSampler, child_pids, running_threads

__all__ = ["LinuxTlpSampler", "child_pids", "running_threads"]
