"""Live TLP measurement of *real* processes on Linux via ``/proc``.

Everything else in this package measures simulated workloads; this
module closes the loop with the paper's actual methodology on real
hardware.  Where the paper samples ETW context switches, on Linux the
same application-level concurrency is visible in
``/proc/<pid>/task/<tid>/stat``: a thread whose state field is ``R``
is running (or runnable) right now.  Sampling that at a fixed interval
yields the ``c_0..c_n`` execution-time breakdown, and Equation 1 gives
TLP — no psutil or ETW required.

Caveats (inherent to sampling):

* ``R`` includes *runnable* threads that are queued, so on an
  oversubscribed machine the sampled concurrency can exceed the number
  of logical CPUs; values are clamped to ``n_logical`` like the
  simulated metric.
* Python threads of a CPython workload share the GIL, so a
  multi-threaded pure-Python process legitimately samples near TLP 1 —
  use multiple processes to see real width (the tests do).
"""

import os
import time

from repro.metrics.tlp import TlpResult, tlp_from_fractions

#: Field index of the state letter in /proc/<pid>/task/<tid>/stat,
#: counted after the parenthesised comm field.
_STATE_FIELD = 0


def _read_thread_states(pid):
    """State letters of every thread of ``pid`` (missing -> empty)."""
    states = []
    task_dir = f"/proc/{pid}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return states
    for tid in tids:
        try:
            with open(f"{task_dir}/{tid}/stat", "r") as fh:
                raw = fh.read()
        except OSError:
            continue
        # comm may contain spaces/parens: state follows the last ')'.
        after = raw.rpartition(")")[2].split()
        if after:
            states.append(after[_STATE_FIELD])
    return states


def running_threads(pids):
    """Number of currently running/runnable threads across ``pids``."""
    return sum(1 for pid in pids
               for state in _read_thread_states(pid) if state == "R")


def child_pids(pid):
    """Direct and transitive children of ``pid`` (via /proc children)."""
    found = []
    frontier = [pid]
    while frontier:
        current = frontier.pop()
        task_dir = f"/proc/{current}/task"
        try:
            tids = os.listdir(task_dir)
        except OSError:
            continue
        for tid in tids:
            try:
                with open(f"{task_dir}/{tid}/children", "r") as fh:
                    children = [int(p) for p in fh.read().split()]
            except (OSError, ValueError):
                continue
            for child in children:
                if child not in found:
                    found.append(child)
                    frontier.append(child)
    return found


class LinuxTlpSampler:
    """Sample application-level TLP of live processes (Eq. 1)."""

    def __init__(self, pids, n_logical=None, include_children=True):
        self.root_pids = list(pids)
        if not self.root_pids:
            raise ValueError("need at least one pid")
        self.include_children = include_children
        self.n_logical = n_logical or os.cpu_count() or 1
        self.samples = []

    def target_pids(self):
        pids = list(self.root_pids)
        if self.include_children:
            for pid in self.root_pids:
                pids.extend(p for p in child_pids(pid) if p not in pids)
        return pids

    def sample_once(self):
        """Take one sample; returns the clamped running-thread count."""
        count = min(running_threads(self.target_pids()), self.n_logical)
        self.samples.append(count)
        return count

    def run(self, duration_s, interval_s=0.01):
        """Sample for ``duration_s`` wall seconds; returns self."""
        if duration_s <= 0 or interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        deadline = time.monotonic() + duration_s
        while time.monotonic() < deadline:
            self.sample_once()
            time.sleep(interval_s)
        return self

    def result(self):
        """Fold the samples into a :class:`~repro.metrics.TlpResult`."""
        if not self.samples:
            raise ValueError("no samples collected")
        fractions = [0.0] * (self.n_logical + 1)
        for count in self.samples:
            fractions[count] += 1.0 / len(self.samples)
        return TlpResult(
            tlp=tlp_from_fractions(fractions),
            fractions=fractions,
            max_instantaneous=max(self.samples),
            window_us=0,
        )
