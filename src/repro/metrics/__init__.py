"""Measurement metrics: TLP (Eq. 1), GPU utilization, time series."""

from repro.metrics.gpu import (
    GpuUtilResult,
    cross_validate,
    gpu_result_from_totals,
    measure_gpu_utilization,
)
from repro.metrics.intervals import (
    FusedSweep,
    clip,
    concurrency_profile,
    fused_sweep,
    interval_events,
    max_concurrency,
    union_length,
)
from repro.metrics.kernels import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    build_event_arrays,
    clipped_busy_sum,
    fused_sweep_arrays,
    kernel_backend,
    max_concurrency_arrays,
    occupancy_sweep,
    union_length_arrays,
    vector_enabled,
)
from repro.metrics.online import FrameStats, OnlineMetricsEngine, OnlineSweep
from repro.metrics.responsiveness import (
    ResponseLatency,
    pair_marks,
    percentile,
    response_summary,
    tail_latency,
)
from repro.metrics.stats import Summary, mean, relative_difference_pct, summarize
from repro.metrics.timeseries import (
    TimeSeries,
    frame_rate_series,
    instantaneous_gpu_utilization,
    instantaneous_tlp,
)
from repro.metrics.tlp import (
    TlpResult,
    busy_intervals_by_cpu,
    measure_tlp,
    tlp_from_fractions,
    tlp_result_from_profile,
)

__all__ = [
    "FrameStats",
    "FusedSweep",
    "GpuUtilResult",
    "KERNEL_CHOICES",
    "KERNEL_ENV",
    "build_event_arrays",
    "clipped_busy_sum",
    "fused_sweep_arrays",
    "kernel_backend",
    "max_concurrency_arrays",
    "occupancy_sweep",
    "union_length_arrays",
    "vector_enabled",
    "OnlineMetricsEngine",
    "OnlineSweep",
    "ResponseLatency",
    "Summary",
    "TimeSeries",
    "TlpResult",
    "busy_intervals_by_cpu",
    "clip",
    "concurrency_profile",
    "cross_validate",
    "frame_rate_series",
    "fused_sweep",
    "gpu_result_from_totals",
    "instantaneous_gpu_utilization",
    "interval_events",
    "instantaneous_tlp",
    "max_concurrency",
    "mean",
    "pair_marks",
    "percentile",
    "measure_gpu_utilization",
    "measure_tlp",
    "relative_difference_pct",
    "response_summary",
    "summarize",
    "tail_latency",
    "tlp_from_fractions",
    "tlp_result_from_profile",
    "union_length",
]
