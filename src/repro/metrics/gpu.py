"""GPU utilization — the paper's §III-B definition.

"For GPU utilization, we consider the amount of time spent by work
packets actually running over a period of time ... measured by
aggregating for all packets the ratio of packet running time to total
time."

The aggregate-of-ratios (``sum`` method) can nominally exceed 100%
when engines overlap — the paper flags PhoenixMiner, where two packets
executed simultaneously throughout, as "*100.0".  We reproduce that:
the value is capped at 100 and ``capped`` is set.  A ``union`` method
(fraction of time at least one packet is running) is also provided for
cross-validation.
"""

from dataclasses import dataclass

from repro.metrics.intervals import fused_sweep, interval_events
from repro.metrics.kernels import occupancy_sweep, vector_enabled


@dataclass
class GpuUtilResult:
    """A GPU utilization measurement."""

    utilization_pct: float
    method: str
    #: Peak number of simultaneously executing packets.
    max_concurrent_packets: int
    #: True when the sum-of-ratios exceeded 100% and was capped
    #: (the paper's PhoenixMiner asterisk).
    capped: bool
    window_us: int


def gpu_result_from_totals(busy_sum, union_length, peak, total, method):
    """Build a :class:`GpuUtilResult` from integer totals.

    Shared by :func:`measure_gpu_utilization` and the streaming
    :class:`~repro.metrics.online.OnlineMetricsEngine`, so both paths
    compute the percentage (and the PhoenixMiner cap) identically.
    """
    if method not in ("sum", "union"):
        raise ValueError(f"unknown method {method!r}")
    if total <= 0:
        raise ValueError("empty measurement window")
    if method == "union":
        value, capped = 100.0 * union_length / total, False
    else:
        value = 100.0 * busy_sum / total
        capped = value > 100.0
        if capped:
            value = 100.0
    return GpuUtilResult(
        utilization_pct=value,
        method=method,
        max_concurrent_packets=peak,
        capped=capped,
        window_us=total,
    )


def measure_gpu_utilization(gpu_table, processes=None, window=None,
                            method="sum"):
    """Compute utilization from a GPU Utilization (FM) table."""
    if method not in ("sum", "union"):
        raise ValueError(f"unknown method {method!r}")
    start, stop = window or (gpu_table.trace_start, gpu_table.trace_stop)
    if stop <= start:
        raise ValueError("empty measurement window")
    total = stop - start
    # Fast paths: the fused sweep over the table's memoized event data
    # yields union length and peak concurrency in one traversal; the
    # batched occupancy sweep (REPRO_KERNEL) additionally integrates
    # the concurrency level, which equals the clipped busy sum — one
    # pass over flat buffers replaces both the sweep and the
    # sum-of-ratios span walk.
    if vector_enabled() and hasattr(gpu_table, "packet_event_arrays"):
        times, deltas = gpu_table.packet_event_arrays(processes)
        sweep, busy = occupancy_sweep(times, deltas, start, stop)
    else:
        if hasattr(gpu_table, "packet_events"):
            events = gpu_table.packet_events(processes)
            spans = gpu_table.packet_spans(processes)
        else:
            spans = sorted((s, e) for _engine, s, e
                           in gpu_table.packet_intervals(processes=processes))
            events = interval_events(spans)
        sweep = fused_sweep((), start, stop, events=events)
        busy = sum(min(e, stop) - max(s, start) for s, e in spans
                   if min(e, stop) > max(s, start))
    return gpu_result_from_totals(busy, sweep.union_length,
                                  sweep.max_concurrency, total, method)


def cross_validate(gpu_table, device, processes=None, tolerance_pct=1.0):
    """Check the trace-derived busy time against device-side counters.

    Mirrors the paper's "we cross-validate the GPU data with those
    reported by WPA".  Returns the absolute difference in utilization
    percentage points; raises ``ValueError`` beyond ``tolerance_pct``.

    Only meaningful without process filtering (device counters are
    global); pass ``processes=None`` for a strict check.
    """
    window = (gpu_table.trace_start, gpu_table.trace_stop)
    total = window[1] - window[0]
    if total <= 0:
        raise ValueError("empty trace window")
    trace_busy = sum(e - s for _eng, s, e
                     in gpu_table.packet_intervals(processes=processes))
    trace_pct = 100.0 * trace_busy / total
    device_pct = device.utilization_pct(total)
    delta = abs(trace_pct - device_pct)
    if processes is None and delta > tolerance_pct:
        raise ValueError(
            f"GPU cross-validation failed: trace={trace_pct:.2f}% "
            f"device={device_pct:.2f}% (tolerance {tolerance_pct}%)")
    return delta
