"""Sweep-line helpers over time intervals.

Everything in the metrics layer reduces to questions about sets of
``(start, stop)`` busy intervals: how long were exactly *k* of them
active (concurrency profile), and how long was at least one active
(union length).
"""


def clip(intervals, window_start, window_stop):
    """Clip intervals to a window, dropping empty results."""
    clipped = []
    for start, stop in intervals:
        lo = max(start, window_start)
        hi = min(stop, window_stop)
        if hi > lo:
            clipped.append((lo, hi))
    return clipped


def concurrency_profile(intervals, window_start, window_stop):
    """Time spent at each concurrency level within the window.

    Returns a dict ``{level: microseconds}`` where ``level`` counts how
    many intervals overlap; level 0 covers the remainder of the window.
    """
    if window_stop < window_start:
        raise ValueError("window_stop before window_start")
    total = window_stop - window_start
    profile = {0: total}
    events = []
    for start, stop in clip(intervals, window_start, window_stop):
        events.append((start, 1))
        events.append((stop, -1))
    if not events:
        return profile
    events.sort()
    level = 0
    covered = 0
    prev_time = events[0][0]
    for time, delta in events:
        if time > prev_time:
            span = time - prev_time
            profile[level] = profile.get(level, 0) + span
            if level > 0:
                covered += span
            prev_time = time
        level += delta
    profile[0] = total - covered
    return profile


def union_length(intervals, window_start, window_stop):
    """Length of the union of intervals within the window."""
    profile = concurrency_profile(intervals, window_start, window_stop)
    return sum(length for level, length in profile.items() if level > 0)


def max_concurrency(intervals, window_start, window_stop):
    """Peak number of simultaneously active intervals in the window."""
    profile = concurrency_profile(intervals, window_start, window_stop)
    active_levels = [level for level, length in profile.items()
                     if level > 0 and length > 0]
    return max(active_levels, default=0)
