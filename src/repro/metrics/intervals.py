"""Sweep-line helpers over time intervals.

Everything in the metrics layer reduces to questions about sets of
``(start, stop)`` busy intervals: how long were exactly *k* of them
active (concurrency profile), how long was at least one active (union
length), and how many were ever active at once (max concurrency).

All of them are answered by one fused sweep over the sorted
``(time, +1/-1)`` event stream.  Instead of clipping intervals to the
measurement window up front, the sweep clamps each event time into
the window as it goes: an interval entirely outside the window
degenerates to a ``+1``/``-1`` pair at the same boundary instant,
which contributes zero measure and is ignored by the
positive-span-only peak tracking — exactly the clip-first semantics,
without rebuilding and re-sorting the event list per query.  That
clamping is what lets callers (``measure_tlp`` over hundreds of
time-series windows) reuse one cached, pre-sorted event array for
every window.
"""

from collections import namedtuple

#: Result of :func:`fused_sweep`: the ``{level: microseconds}``
#: concurrency profile, the union length, and the peak concurrency —
#: all from a single traversal.
FusedSweep = namedtuple("FusedSweep",
                        ("profile", "union_length", "max_concurrency"))


def clip(intervals, window_start, window_stop):
    """Clip intervals to a window, dropping empty results."""
    clipped = []
    for start, stop in intervals:
        lo = max(start, window_start)
        hi = min(stop, window_stop)
        if hi > lo:
            clipped.append((lo, hi))
    return clipped


def interval_events(intervals):
    """Sorted ``(time, +1/-1)`` edge events of ``intervals``.

    Ties sort ``-1`` before ``+1`` so touching intervals never count
    as concurrent.  Build once, reuse across windows via the
    ``events=`` parameter of the sweep functions.
    """
    events = []
    for start, stop in intervals:
        events.append((start, 1))
        events.append((stop, -1))
    events.sort()
    return events


def fused_sweep(intervals, window_start, window_stop, *, events=None):
    """Concurrency profile, union length and peak in one traversal.

    Pass pre-sorted ``events`` (from :func:`interval_events`) to skip
    the per-call extract-and-sort; ``intervals`` is ignored then.

    Edge cases are well-defined rather than accidental: a zero-width
    window yields ``FusedSweep({0: 0}, 0, 0)`` (no measure, no peak),
    zero-width intervals contribute nothing, and an inverted window
    raises ``ValueError``.  Callers that need a *non-empty* window
    (Eq.-1 TLP divides by it) raise the documented ``ValueError:
    empty measurement window`` themselves — see
    :func:`repro.metrics.tlp.measure_tlp`.
    """
    if window_stop < window_start:
        raise ValueError("window_stop before window_start")
    if window_stop == window_start:
        return FusedSweep({0: 0}, 0, 0)
    if events is None:
        events = interval_events(intervals)
    total = window_stop - window_start
    profile = {0: total}
    level = 0
    covered = 0
    peak = 0
    prev = window_start
    for time, delta in events:
        if time < window_start:
            time = window_start
        elif time > window_stop:
            time = window_stop
        if time > prev:
            span = time - prev
            profile[level] = profile.get(level, 0) + span
            if level > 0:
                covered += span
                if level > peak:
                    peak = level
            prev = time
        level += delta
    profile[0] = total - covered
    return FusedSweep(profile, covered, peak)


def first_time_above(events, bound):
    """Earliest instant at which more than ``bound`` intervals overlap
    for a positive span, or ``None`` if the level never exceeds it.

    Zero-width excursions above the bound (a ``+1``/``-1`` pair at the
    same instant) are ignored, matching the positive-span-only peak
    tracking of :func:`fused_sweep`.  Used by the trace validator to
    timestamp CPU-oversubscription violations — which is what lets the
    salvage pass (:mod:`repro.trace.salvage`) cut a corrupted trace
    exactly where it first became inconsistent.
    """
    level = 0
    above_since = None
    for time, delta in events:
        if above_since is not None and time > above_since:
            return above_since
        level += delta
        if level > bound:
            if above_since is None:
                above_since = time
        else:
            above_since = None
    return None


def concurrency_profile(intervals, window_start, window_stop, *, events=None):
    """Time spent at each concurrency level within the window.

    Returns a dict ``{level: microseconds}`` where ``level`` counts how
    many intervals overlap; level 0 covers the remainder of the window.
    """
    return fused_sweep(intervals, window_start, window_stop,
                       events=events).profile


def union_length(intervals, window_start, window_stop, *, events=None):
    """Length of the union of intervals within the window.

    Single pass: accumulates covered time on every ``1 -> 0`` level
    transition instead of materializing the full profile dict.  A
    zero-width window covers nothing and returns 0.
    """
    if window_stop < window_start:
        raise ValueError("window_stop before window_start")
    if window_stop == window_start:
        return 0
    if events is None:
        events = interval_events(intervals)
    level = 0
    covered = 0
    open_since = 0
    for time, delta in events:
        if time < window_start:
            time = window_start
        elif time > window_stop:
            time = window_stop
        if delta > 0:
            if level == 0:
                open_since = time
            level += 1
        else:
            level -= 1
            if level == 0:
                covered += time - open_since
    return covered


def max_concurrency(intervals, window_start, window_stop, *, events=None):
    """Peak number of simultaneously active intervals in the window.

    Single pass: tracks the running level, counting a level only once
    it has persisted for a positive span inside the window (zero-width
    boundary spikes from out-of-window intervals are ignored, matching
    the clip-first definition).  A zero-width window has no positive
    span, so its peak is 0.
    """
    if window_stop < window_start:
        raise ValueError("window_stop before window_start")
    if window_stop == window_start:
        return 0
    if events is None:
        events = interval_events(intervals)
    level = 0
    peak = 0
    prev = None
    for time, delta in events:
        if time < window_start:
            time = window_start
        elif time > window_stop:
            time = window_stop
        if prev is not None and time > prev and level > peak:
            peak = level
        prev = time
        level += delta
    return peak
