"""Batched sweep kernels over whole event buffers.

The scalar helpers in :mod:`repro.metrics.intervals` walk Python lists
of ``(time, +1/-1)`` tuples one element at a time.  For a recorded run
that list is born from columnar ``array('q')`` buffers
(:mod:`repro.trace.columns`), so the per-tuple boxing and the
interpreted sweep loop are pure overhead.  This module keeps the data
flat end to end: the WPA tables hand over parallel ``(times, deltas)``
buffers and the kernels sweep them wholesale.

Two backends implement the same kernels bit-identically:

* ``numpy`` (when importable): clip/diff/cumsum/bincount over int64
  views of the buffers — no per-event Python bytecode at all.
* batched pure Python: the scalar sweep loop run over ``zip``-ed
  memoryviews of the buffers; used when numpy is absent so the
  ``vector`` mode never becomes a hard dependency.

Selection is via the ``REPRO_KERNEL`` environment variable (or the
``--kernel`` CLI flag, which sets it): ``auto`` (default) and
``vector`` use the batched kernels, ``scalar`` forces the legacy
tuple-list path everywhere — the benchmark baseline.  All three
produce bit-identical metrics; the golden-fingerprint suite pins that.
"""

import os
from array import array

from repro.metrics.intervals import FusedSweep, fused_sweep as _scalar_sweep

#: Environment switch for the sweep-kernel backend.
KERNEL_ENV = "REPRO_KERNEL"
KERNEL_CHOICES = ("auto", "vector", "scalar")

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def numpy_available():
    """True when the numpy backend can be used."""
    return _np is not None


def kernel_backend(override=None):
    """Resolve the kernel selection to ``"vector"`` or ``"scalar"``.

    ``override`` (a choice string) wins over the environment; an
    unrecognized value raises rather than silently falling back, so a
    typo in ``REPRO_KERNEL`` cannot masquerade as a benchmark mode.
    """
    value = override if override is not None else os.environ.get(
        KERNEL_ENV, "auto")
    value = value.strip().lower()
    if value not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {value!r}; choose from {KERNEL_CHOICES}")
    return "vector" if value in ("auto", "vector") else "scalar"


def vector_enabled(override=None):
    """True when the batched kernels should be used."""
    return kernel_backend(override) == "vector"


def _as_int64(buffer):
    """int64 view of a buffer — zero-copy for ``array('q')``/ndarray,
    a conversion for plain sequences (the row-list fallback path)."""
    if isinstance(buffer, _np.ndarray):
        return buffer
    if isinstance(buffer, array) and buffer.itemsize == 8:
        if len(buffer) == 0:
            return _np.empty(0, dtype=_np.int64)
        return _np.frombuffer(buffer, dtype=_np.int64)
    return _np.asarray(buffer, dtype=_np.int64)


def build_event_arrays(starts, stops, mask=None):
    """Sorted parallel ``(times, deltas)`` buffers for interval
    endpoint columns — the batched counterpart of
    :func:`repro.metrics.intervals.interval_events`.

    ``starts``/``stops`` are parallel ``array('q')`` (or ndarray)
    columns; ``mask`` optionally selects a row subset (a bool ndarray
    or any sequence of 0/1 flags).  Ties order ``-1`` before ``+1``,
    matching the tuple sort of ``interval_events`` (-1 < +1).
    """
    if _np is not None:
        s = _as_int64(starts)
        e = _as_int64(stops)
        if mask is not None:
            mask = _np.asarray(mask, dtype=bool)
            s = s[mask]
            e = e[mask]
        times = _np.concatenate([s, e])
        deltas = _np.concatenate([
            _np.ones(len(s), dtype=_np.int64),
            _np.full(len(e), -1, dtype=_np.int64),
        ])
        order = _np.lexsort((deltas, times))
        return times[order], deltas[order]
    if mask is not None:
        pairs = [(s, e) for s, e, keep in zip(starts, stops, mask) if keep]
    else:
        pairs = list(zip(starts, stops))
    events = []
    for s, e in pairs:
        events.append((s, 1))
        events.append((e, -1))
    events.sort()
    times = array("q", (t for t, _ in events))
    deltas = array("q", (d for _, d in events))
    return times, deltas


def occupancy_sweep(times, deltas, window_start, window_stop):
    """One traversal returning ``(FusedSweep, busy_sum)``.

    ``busy_sum`` integrates the concurrency level over the window —
    by Fubini exactly the sum of the intervals' window-clipped
    lengths, the numerator of the paper's §III-B sum-of-ratios GPU
    utilization (integer arithmetic throughout, so the identity is
    exact, not approximate).

    The sweep itself is bit-identical to :func:`repro.metrics.
    intervals.fused_sweep` over the equivalent ``(time, delta)`` tuple
    list (the property suite pins this on adversarial edge cases).
    ``times`` must be sorted ascending with ``-1`` deltas first at
    ties — the contract of :func:`build_event_arrays`.
    """
    if window_stop < window_start:
        raise ValueError("window_stop before window_start")
    if window_stop == window_start:
        return FusedSweep({0: 0}, 0, 0), 0
    if _np is None or len(times) == 0:
        sweep = _scalar_sweep((), window_start, window_stop,
                              events=zip(times, deltas))
        return sweep, _busy_from_profile(sweep.profile)
    t = _np.clip(_as_int64(times), window_start, window_stop)
    d = _as_int64(deltas)
    # Clamped times are non-decreasing and >= window_start, so the
    # scalar sweep's running ``prev`` is simply the previous clamped
    # time: the spans are one diff, the level under each span one
    # exclusive cumsum.
    bounds = _np.empty(len(t) + 1, dtype=_np.int64)
    bounds[0] = window_start
    bounds[1:] = t
    spans = _np.diff(bounds)
    levels = _np.empty(len(d), dtype=_np.int64)
    levels[0] = 0
    _np.cumsum(d[:-1], out=levels[1:])
    if bool((spans[levels < 0] > 0).any()):
        # Malformed input (an end before its start accruing measure):
        # defer to the scalar loop so the defensive semantics stay in
        # exactly one place.
        sweep = _scalar_sweep((), window_start, window_stop,
                              events=zip(times, deltas))
        return sweep, _busy_from_profile(sweep.profile)
    busy = (spans > 0) & (levels > 0)
    busy_spans = spans[busy]
    busy_levels = levels[busy]
    covered = int(busy_spans.sum())
    peak = int(busy_levels.max(initial=0))
    busy_sum = int((busy_spans * busy_levels).sum())
    total = window_stop - window_start
    profile = {0: total - covered}
    counts = _np.bincount(busy_levels, weights=busy_spans)
    for level in _np.nonzero(counts)[0]:
        profile[int(level)] = int(counts[level])
    return FusedSweep(profile, covered, peak), busy_sum


def _busy_from_profile(profile):
    """Level-weighted measure of a sweep profile (= clipped busy sum)."""
    return sum(level * span for level, span in profile.items() if level > 0)


def fused_sweep_arrays(times, deltas, window_start, window_stop):
    """Concurrency profile, union length and peak over event buffers
    (the :func:`occupancy_sweep` without its busy integral)."""
    return occupancy_sweep(times, deltas, window_start, window_stop)[0]


def union_length_arrays(times, deltas, window_start, window_stop):
    """Union length over event buffers (see ``fused_sweep_arrays``)."""
    return fused_sweep_arrays(times, deltas, window_start,
                              window_stop).union_length


def max_concurrency_arrays(times, deltas, window_start, window_stop):
    """Peak concurrency over event buffers (see ``fused_sweep_arrays``)."""
    return fused_sweep_arrays(times, deltas, window_start,
                              window_stop).max_concurrency


def clipped_busy_sum(starts, stops, window_start, window_stop):
    """Sum of interval lengths clipped to the window — the GPU
    occupancy numerator of the paper's sum-of-ratios utilization.

    Bit-identical to ``sum(min(e, stop) - max(s, start))`` over the
    spans with positive clipped length (integer arithmetic, order
    independent).
    """
    if _np is None:
        total = 0
        for s, e in zip(starts, stops):
            lo = s if s > window_start else window_start
            hi = e if e < window_stop else window_stop
            if hi > lo:
                total += hi - lo
        return total
    lo = _np.maximum(_as_int64(starts), window_start)
    hi = _np.minimum(_as_int64(stops), window_stop)
    spans = hi - lo
    return int(spans[spans > 0].sum())


def batch_active_energy(t_us, class_idx, clock_factors, active_power_w,
                        exponents, kernel=None):
    """Active CPU joules of one activity histogram under N coefficient
    sets — the DSE re-scoring primitive.

    The histogram (see :meth:`repro.os.energy.EnergyModel.activity`)
    arrives flattened into K parallel entries: ``t_us[k]`` integer
    microseconds, ``class_idx[k]`` a column index into the per-config
    power table, ``clock_factors[k]`` the turbo multiplier.  Configs
    are the other axis: ``active_power_w[n][c]`` watts for config ``n``
    and class column ``c``, ``exponents[n]`` the dynamic-power
    exponent.  Returns a list of N joule totals, each

    ``sum_k  active_power_w[n][class_idx[k]]
             * clock_factors[k] ** exponents[n] * t_us[k] / 1e6``

    accumulated in ``k`` order on both backends.  The vector backend
    runs one fused numpy pass per histogram entry over all N configs
    (K is tiny — work classes x clock levels — while N is the campaign
    grid, so the N axis is the one worth vectorizing).  Unlike the
    integer sweep kernels above, the two backends agree to float
    tolerance rather than bit-for-bit: ``numpy`` may fuse ``**`` with
    SIMD rounding.  The DSE equivalence suite compares with a relative
    tolerance accordingly.
    """
    n_configs = len(exponents)
    if _np is not None and vector_enabled(kernel) and n_configs:
        power = _np.asarray(active_power_w, dtype=_np.float64)
        alpha = _np.asarray(exponents, dtype=_np.float64)
        totals = _np.zeros(n_configs, dtype=_np.float64)
        for k, wall_us in enumerate(t_us):
            totals += (power[:, class_idx[k]]
                       * clock_factors[k] ** alpha
                       * wall_us / 1e6)
        return totals.tolist()
    totals = [0.0] * n_configs
    for k, wall_us in enumerate(t_us):
        col = class_idx[k]
        factor = clock_factors[k]
        for n in range(n_configs):
            totals[n] += (active_power_w[n][col]
                          * factor ** exponents[n] * wall_us / 1e6)
    return totals


def interned_mask(ids, name_table, processes):
    """Row mask selecting rows whose interned ``ids`` name one of
    ``processes`` (numpy backend only; returns ``None`` otherwise)."""
    if _np is None:
        return None
    wanted = [name_table._ids[name] for name in processes
              if name in name_table._ids]
    if not wanted:
        return _np.zeros(len(ids), dtype=bool)
    return _np.isin(_as_int64(ids), _np.asarray(wanted, dtype=_np.int64))
