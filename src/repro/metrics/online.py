"""Streaming (in-simulation) metrics — the per-run hot path.

The post-hoc pipeline records every context switch and GPU packet,
builds WPA tables, then sweeps sorted edge events (Fig. 1 of the
paper).  For long measurement runs that means memory proportional to
trace length just to compute a handful of aggregate numbers.  This
module computes the same numbers *while the simulation runs*, in O(1)
memory, and is asserted bit-identical to the post-hoc path.

Exactness rests on three observations:

1. **Occupancy edges arrive in simulation-time order.**  The scheduler
   and GPU engines report busy/idle transitions as they happen
   (:meth:`TraceSession.emit_cpu_busy` and friends), unlike trace
   records, which are emitted at *switch-out* and therefore arrive
   sorted by interval end.  A time-ordered edge stream can be folded
   through the exact :func:`~repro.metrics.intervals.fused_sweep` loop
   body without any sorting.

2. **Edge order within one timestamp is irrelevant.**  The fused sweep
   only accumulates spans between *distinct* times; every edge at an
   equal timestamp contributes zero measure and only shifts the level.
   So the arrival order of simultaneous edges (which differs from the
   post-hoc sort's ``(time, -1 first)`` tie-break) cannot change the
   profile, union length or peak.

3. **Post-hoc traces drop intervals still in flight at stop.**  A
   slice or packet that has not ended when the session stops never
   emits a record.  :class:`OnlineSweep` mirrors that by folding an
   interval only once it *closes* (the committed-edge queue below);
   edges of still-open intervals are skipped when the window result is
   taken — and kept, so an interval straddling two recording windows
   is counted in the later window exactly as the post-hoc path would.
"""

from collections import deque
from dataclasses import dataclass

from repro.metrics.gpu import gpu_result_from_totals
from repro.metrics.intervals import FusedSweep
from repro.metrics.tlp import tlp_result_from_profile


class OnlineSweep:
    """Fused sweep over a live, time-ordered stream of busy intervals.

    ``open(key, time)`` / ``close(key, time)`` report that the resource
    identified by ``key`` (a logical CPU index, a GPU engine name)
    became busy / idle.  Edges are queued as ``[time, delta,
    committed]`` entries; an open edge is committed only when its close
    arrives, and only the committed prefix of the queue is folded into
    the running profile.  The queue length is therefore bounded by the
    edges inside the longest still-open interval — constant for any
    scheduler with a preemption quantum — never by trace length.

    ``begin(w0)`` starts a measurement window; ``result(stop)`` folds
    the committed backlog (skipping open intervals, which post-hoc
    traces also drop) and returns the same :class:`FusedSweep` triple
    ``fused_sweep`` would produce from the recorded interval set.
    Pre-window history needs no special casing: edge times clamp to
    ``w0`` exactly like the post-hoc sweep clamps record times, so the
    pre-window portion of a straddling interval contributes zero
    measure while its level bookkeeping stays consistent.
    """

    def __init__(self):
        self._pending = deque()
        self._open = {}
        self._level = 0
        self.begin(0)

    def begin(self, window_start):
        """Reset accumulators for a window starting at ``window_start``.

        ``_level`` and the edge queue deliberately survive: they
        describe intervals still in flight, whose pre-window edges
        clamp to zero measure when they eventually fold.
        """
        self._w0 = window_start
        self._prev = window_start
        self._profile = {}
        self._covered = 0
        self._peak = 0

    def open(self, key, time):
        """Resource ``key`` became busy at ``time``."""
        if key in self._open:
            # Defensive: a missed idle edge would pin the queue open
            # forever; treat re-open as close-then-open at this instant.
            self.close(key, time)
        entry = [time, 1, False]
        self._open[key] = entry
        self._pending.append(entry)

    def close(self, key, time):
        """Resource ``key`` became idle at ``time``.

        Returns the matching open time, or ``None`` when the open edge
        was filtered out (callers close unconditionally; opens are
        gated on the measured process set).
        """
        entry = self._open.pop(key, None)
        if entry is None:
            return None
        pending = self._pending
        if len(pending) == 1 and pending[0] is entry:
            # Fast path — the closing interval is the only one in
            # flight (the common case at desktop-app TLP levels): fold
            # its two edges inline instead of round-tripping the queue.
            # This duplicates :meth:`_fold` for the pair; the
            # hypothesis equivalence tests exercise both paths.
            pending.clear()
            w0 = self._w0
            opened = entry[0]
            if opened < w0:
                opened = w0
            closed = time if time > w0 else w0
            prev = self._prev
            level = self._level
            profile = self._profile
            if opened > prev:
                span = opened - prev
                profile[level] = profile.get(level, 0) + span
                if level > 0:
                    self._covered += span
                    if level > self._peak:
                        self._peak = level
                prev = opened
            level += 1
            if closed > prev:
                span = closed - prev
                profile[level] = profile.get(level, 0) + span
                self._covered += span
                if level > self._peak:
                    self._peak = level
                prev = closed
            self._prev = prev
            self._level = level - 1
        else:
            entry[2] = True
            pending.append([time, -1, True])
            if pending[0][2]:
                self._drain()
            # else: the head is an uncommitted open of another key, so
            # nothing can fold yet — skip the call entirely.
        return entry[0]

    def _drain(self):
        pending = self._pending
        while pending and pending[0][2]:
            time, delta, _ = pending.popleft()
            self._fold(time, delta)

    def _fold(self, time, delta):
        # The fused_sweep loop body.  No upper clamp is needed: edges
        # are folded at or before the window stop by construction.
        if time < self._w0:
            time = self._w0
        if time > self._prev:
            span = time - self._prev
            level = self._level
            self._profile[level] = self._profile.get(level, 0) + span
            if level > 0:
                self._covered += span
                if level > self._peak:
                    self._peak = level
            self._prev = time
        self._level += delta

    def result(self, window_stop):
        """Fold the committed backlog and return the window's sweep.

        Open intervals are skipped — their records would never have
        been emitted — but their edges stay queued so a later window
        counts them from its own start, like the post-hoc path does.
        """
        remaining = deque()
        pending = self._pending
        while pending:
            entry = pending.popleft()
            if entry[2]:
                self._fold(entry[0], entry[1])
            else:
                remaining.append(entry)
        self._pending = remaining
        total = window_stop - self._w0
        profile = self._profile
        profile[0] = total - self._covered
        return FusedSweep(profile, self._covered, self._peak)

    @property
    def pending_edges(self):
        """Queue length — bounded by open-interval depth, not trace
        length (asserted by the memory-guard test)."""
        return len(self._pending)


@dataclass(frozen=True, slots=True)
class FrameStats:
    """Order-independent summary of frame presents in a window."""

    count: int = 0
    reprojected: int = 0
    first_present: int = None
    last_present: int = None

    @classmethod
    def from_records(cls, frames):
        """Summarize :class:`FramePresentRecord` objects (post-hoc)."""
        frames = list(frames)
        if not frames:
            return cls()
        times = [f.present_time for f in frames]
        return cls(
            count=len(frames),
            reprojected=sum(1 for f in frames if f.reprojected),
            first_present=min(times),
            last_present=max(times),
        )

    @property
    def span_us(self):
        return (self.last_present - self.first_present) if self.count else 0


class OnlineMetricsEngine:
    """Streaming subscriber computing TLP / GPU / frame aggregates.

    Subscribe once per :class:`~repro.trace.session.TraceSession`;
    every ``start()``/``stop()`` pair defines one measurement window.
    ``processes`` is the *live* set of application process names
    (``AppRuntime.process_names`` — it only grows, and a process is
    registered before any of its threads runs, so open-time filtering
    equals the post-hoc filter over the finished trace).  ``None``
    measures everything, like the unfiltered WPA tables.
    """

    def __init__(self, session, n_logical, processes=None):
        if n_logical < 1:
            raise ValueError("n_logical must be >= 1")
        self.n_logical = n_logical
        self.processes = processes
        self.cpu = OnlineSweep()
        self.gpu = OnlineSweep()
        self._active = False
        self._w0 = 0
        self._window_us = 0
        self._gpu_busy_sum = 0
        self._cpu_sweep = None
        self._gpu_sweep = None
        self._frame_count = 0
        self._frame_reprojected = 0
        self._frame_first = None
        self._frame_last = None
        session.subscribe(self)

    def _measured(self, process):
        return self.processes is None or process in self.processes

    # -- session window callbacks --------------------------------------

    def on_window_start(self, now):
        self._active = True
        self._w0 = now
        self._window_us = 0
        self._gpu_busy_sum = 0
        self._cpu_sweep = None
        self._gpu_sweep = None
        self._frame_count = 0
        self._frame_reprojected = 0
        self._frame_first = None
        self._frame_last = None
        self.cpu.begin(now)
        self.gpu.begin(now)

    def on_window_stop(self, now):
        if not self._active:
            return
        self._active = False
        self._window_us = now - self._w0
        self._cpu_sweep = self.cpu.result(now)
        self._gpu_sweep = self.gpu.result(now)

    # -- occupancy edges -----------------------------------------------

    def on_cpu_busy(self, process, cpu, now):
        if self._measured(process):
            self.cpu.open(cpu, now)

    def on_cpu_idle(self, process, cpu, now):
        self.cpu.close(cpu, now)

    def on_engine_busy(self, process, engine, now):
        if self._measured(process):
            self.gpu.open(engine, now)

    def on_engine_idle(self, process, engine, now):
        start = self.gpu.close(engine, now)
        if start is not None and self._active:
            # Sum-of-ratios numerator: packet span clipped to the
            # window, same as measure_gpu_utilization's span clipping.
            lo = start if start > self._w0 else self._w0
            if now > lo:
                self._gpu_busy_sum += now - lo

    # -- record-style events (only delivered while recording) ----------

    def on_frame(self, process, pid, present_time, target_fps,
                 reprojected=False):
        if not (self._active and self._measured(process)):
            return
        self._frame_count += 1
        if reprojected:
            self._frame_reprojected += 1
        if self._frame_first is None or present_time < self._frame_first:
            self._frame_first = present_time
        if self._frame_last is None or present_time > self._frame_last:
            self._frame_last = present_time

    def on_mark(self, process, pid, time, label):
        pass  # responsiveness pairing needs the post-hoc trace

    # -- results -------------------------------------------------------

    def _sealed(self, sweep):
        if sweep is None:
            raise RuntimeError(
                "no sealed measurement window (session still recording "
                "or never started)")
        return sweep

    def tlp_result(self):
        """Equation-1 TLP of the last window — bit-identical to
        ``measure_tlp`` over the equivalent recorded trace."""
        sweep = self._sealed(self._cpu_sweep)
        return tlp_result_from_profile(
            sweep.profile, sweep.max_concurrency,
            self.n_logical, self._window_us)

    def gpu_result(self, method="sum"):
        """GPU utilization of the last window — bit-identical to
        ``measure_gpu_utilization`` over the equivalent trace."""
        sweep = self._sealed(self._gpu_sweep)
        return gpu_result_from_totals(
            self._gpu_busy_sum, sweep.union_length, sweep.max_concurrency,
            self._window_us, method)

    def frame_stats(self):
        """Frame-present summary of the last (or current) window."""
        return FrameStats(
            count=self._frame_count,
            reprojected=self._frame_reprojected,
            first_present=self._frame_first,
            last_present=self._frame_last,
        )

    @property
    def pending_edges(self):
        """Total queued edges across both sweeps (memory introspection)."""
        return self.cpu.pending_edges + self.gpu.pending_edges
