"""Interactive response latency from trace marks.

The paper's predecessor (Flautner et al. 2000) framed multiprocessing
largely in terms of *responsiveness*: even when average TLP stayed
below 2, "a second processor improved the responsiveness of
interactive applications".  Application models emit ``input:<label>``
and ``response:<label>`` marks around every handled user input; this
module pairs them into latencies so that claim can be tested on the
simulated 2018 machine too.
"""

import math
from dataclasses import dataclass

from repro.metrics.stats import Summary, summarize


@dataclass(frozen=True)
class ResponseLatency:
    """One completed interaction."""

    label: str
    input_time: int
    response_time: int

    @property
    def latency_us(self):
        return self.response_time - self.input_time


def pair_marks(marks, processes=None):
    """Pair input/response marks into :class:`ResponseLatency` records.

    Marks are matched per process in FIFO order per label prefix; an
    unmatched trailing input (cut off by the end of the trace) is
    dropped.
    """
    pending = {}
    latencies = []
    for mark in sorted(marks, key=lambda m: m.time):
        if processes is not None and mark.process not in processes:
            continue
        kind, _, label = mark.label.partition(":")
        key = (mark.process, label)
        if kind == "input":
            pending.setdefault(key, []).append(mark.time)
        elif kind == "response" and pending.get(key):
            start = pending[key].pop(0)
            latencies.append(ResponseLatency(label, start, mark.time))
    return latencies


def response_summary(marks, processes=None):
    """Mean/σ of interactive response latency (µs) over a trace."""
    latencies = [r.latency_us for r in pair_marks(marks, processes)]
    if not latencies:
        raise ValueError("no completed interactions in trace")
    return summarize(latencies)


def percentile(values, fraction):
    """Nearest-rank percentile of a sequence (``fraction`` in (0, 1])."""
    if not values:
        raise ValueError("no values")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def tail_latency(marks, fraction=0.95, processes=None):
    """Tail (e.g. p95) response latency in µs."""
    latencies = [r.latency_us for r in pair_marks(marks, processes)]
    return percentile(latencies, fraction)
