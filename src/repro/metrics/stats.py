"""Small statistics helpers for multi-iteration experiments.

The paper runs every testbench three times and reports mean and
standard deviation (Table II's "Avg." and "sigma" columns), concluding
from the low sigmas that the measurements are consistent.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Summary:
    """Mean / population standard deviation over iterations."""

    mean: float
    std: float
    n: int
    minimum: float
    maximum: float

    def __str__(self):
        return f"{self.mean:.1f} ± {self.std:.2f} (n={self.n})"


def summarize(values):
    """Summarize an iterable of numbers (population sigma, as a
    fixed small sample of repeated runs)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    mean = sum(data) / len(data)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return Summary(
        mean=mean,
        std=math.sqrt(variance),
        n=len(data),
        minimum=min(data),
        maximum=max(data),
    )


def mean(values):
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot average an empty sequence")
    return sum(data) / len(data)


def relative_difference_pct(a, b):
    """Percent difference of ``a`` relative to ``b``."""
    if b == 0:
        raise ValueError("reference value is zero")
    return 100.0 * (a - b) / b
