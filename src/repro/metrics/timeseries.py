"""Windowed time series: instantaneous TLP, GPU utilization, frame rate.

These back the paper's time-resolved plots — Figs. 5-7 (instantaneous
TLP and GPU utilization over time for HandBrake / Photoshop / Project
CARS 2) and Fig. 13 (instantaneous frame rate per VR headset).
"""

from dataclasses import dataclass

from repro.metrics.gpu import measure_gpu_utilization
from repro.metrics.tlp import measure_tlp
from repro.sim import SECOND


@dataclass
class TimeSeries:
    """Evenly-spaced samples starting at ``start_us``."""

    start_us: int
    step_us: int
    values: list

    def times_seconds(self):
        """Sample timestamps in seconds (window starts)."""
        return [(self.start_us + i * self.step_us) / SECOND
                for i in range(len(self.values))]

    def __len__(self):
        return len(self.values)

    def maximum(self):
        return max(self.values) if self.values else 0.0

    def mean(self):
        return sum(self.values) / len(self.values) if self.values else 0.0


def _windows(start, stop, step):
    if step <= 0:
        raise ValueError("step must be positive")
    lo = start
    while lo < stop:
        yield lo, min(lo + step, stop)
        lo += step


def instantaneous_tlp(cpu_table, n_logical, processes=None,
                      step_us=100_000):
    """Per-window TLP (Eq. 1 applied inside each window)."""
    values = [
        measure_tlp(cpu_table, n_logical, processes=processes,
                    window=(lo, hi)).tlp
        for lo, hi in _windows(cpu_table.trace_start, cpu_table.trace_stop,
                               step_us)
    ]
    return TimeSeries(cpu_table.trace_start, step_us, values)


def instantaneous_gpu_utilization(gpu_table, processes=None,
                                  step_us=100_000, method="sum"):
    """Per-window GPU utilization percentage."""
    values = [
        measure_gpu_utilization(gpu_table, processes=processes,
                                window=(lo, hi), method=method).utilization_pct
        for lo, hi in _windows(gpu_table.trace_start, gpu_table.trace_stop,
                               step_us)
    ]
    return TimeSeries(gpu_table.trace_start, step_us, values)


def frame_rate_series(frames, trace_start, trace_stop, processes=None,
                      step_us=SECOND):
    """Frames presented per second, windowed.

    ``frames`` is an iterable of
    :class:`~repro.trace.records.FramePresentRecord`.
    """
    presents = sorted(
        f.present_time for f in frames
        if processes is None or f.process in processes)
    values = []
    index = 0
    for lo, hi in _windows(trace_start, trace_stop, step_us):
        count = 0
        while index < len(presents) and presents[index] < hi:
            if presents[index] >= lo:
                count += 1
            index += 1
        values.append(count * SECOND / (hi - lo))
    return TimeSeries(trace_start, step_us, values)
