"""Thread-Level Parallelism — Equation 1 of the paper.

    TLP = (sum_{i=1..n} c_i * i) / (1 - c0)

where ``c_i`` is the fraction of wall time during which exactly ``i``
logical CPUs are running threads of the application and ``c0`` is the
idle fraction.  Idle time is factored out, so TLP measures *how wide*
the application runs while it runs at all.

The paper measures **application-level** TLP (filtering the trace to
the processes of the application under test), unlike the system-wide
TLP of the 2000/2010 prior work — we do the same by passing
``processes=...``.
"""

from dataclasses import dataclass, field

from repro.metrics.intervals import fused_sweep, interval_events
from repro.metrics.kernels import fused_sweep_arrays, vector_enabled


@dataclass
class TlpResult:
    """A TLP measurement with its underlying concurrency breakdown."""

    tlp: float
    #: ``fractions[i]`` is c_i: fraction of wall time with exactly i
    #: logical CPUs running application threads (index 0 = idle).
    fractions: list = field(default_factory=list)
    max_instantaneous: int = 0
    window_us: int = 0

    @property
    def idle_fraction(self):
        return self.fractions[0] if self.fractions else 1.0

    def fraction_at_level(self, level):
        """c_level (0.0 if the level never occurred)."""
        if 0 <= level < len(self.fractions):
            return self.fractions[level]
        return 0.0


def tlp_from_fractions(fractions):
    """Apply Equation 1 to a list ``[c0, c1, ..., cn]``.

    Returns 0.0 for a fully idle window (the paper's applications are
    never fully idle, but synthetic traces can be).
    """
    if not fractions:
        return 0.0
    total = sum(fractions)
    if total <= 0:
        return 0.0
    c0 = fractions[0] / total
    if c0 >= 1.0:
        return 0.0
    weighted = sum(i * c / total for i, c in enumerate(fractions) if i > 0)
    # Clamp against float round-off: TLP can never exceed the number
    # of concurrency levels.
    return min(weighted / (1.0 - c0), float(len(fractions) - 1))


def busy_intervals_by_cpu(cpu_table, processes=None):
    """Per-CPU run intervals of the selected processes.

    Intervals on one CPU never overlap (a CPU runs one thread at a
    time), so concurrency across the resulting set counts busy CPUs.
    """
    return list(cpu_table.busy_intervals(processes=processes))


def tlp_result_from_profile(profile, peak, n_logical, total):
    """Build a :class:`TlpResult` from a concurrency profile.

    Shared by the post-hoc path (:func:`measure_tlp`, over a fused
    sweep of the WPA table) and the streaming path
    (:class:`~repro.metrics.online.OnlineMetricsEngine`), so both
    produce bit-identical fractions from the same integer profile.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be >= 1")
    if total <= 0:
        raise ValueError("empty measurement window")
    fractions = [profile.get(level, 0) / total for level in range(n_logical + 1)]
    overflow = sum(length for level, length in profile.items()
                   if level > n_logical)
    if overflow:
        # Defensive: more overlapping intervals than logical CPUs would
        # mean a malformed trace; fold the excess into the top level.
        fractions[n_logical] += overflow / total
    return TlpResult(
        tlp=tlp_from_fractions(fractions),
        fractions=fractions,
        max_instantaneous=min(peak, n_logical),
        window_us=total,
    )


def measure_tlp(cpu_table, n_logical, processes=None, window=None):
    """Compute :class:`TlpResult` from a CPU Usage (Precise) table.

    ``n_logical`` is the number of logical CPUs in the machine (sizes
    the c_i vector).  ``window`` defaults to the whole trace.

    Raises ``ValueError("empty measurement window")`` for a zero-width
    or inverted window (including the whole-trace window of a trace
    whose session stopped the instant it started): Eq. 1 divides by
    the window length, so there is no well-defined TLP to return.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be >= 1")
    start, stop = window or (cpu_table.trace_start, cpu_table.trace_stop)
    if stop <= start:
        raise ValueError("empty measurement window")
    # Fast paths: one fused traversal of the table's memoized sorted
    # event data computes the profile and the peak together — windowed
    # callers (instantaneous TLP) never re-extract or re-sort rows.
    # Under the batched kernels (REPRO_KERNEL) the traversal runs over
    # flat (times, deltas) buffers instead of a tuple list.
    if vector_enabled() and hasattr(cpu_table, "busy_event_arrays"):
        times, deltas = cpu_table.busy_event_arrays(processes)
        sweep = fused_sweep_arrays(times, deltas, start, stop)
    else:
        if hasattr(cpu_table, "busy_events"):
            events = cpu_table.busy_events(processes)
        else:
            events = interval_events(
                [(s, e) for _cpu, s, e
                 in cpu_table.busy_intervals(processes=processes)])
        sweep = fused_sweep((), start, stop, events=events)
    return tlp_result_from_profile(sweep.profile, sweep.max_concurrency,
                                   n_logical, stop - start)
