"""Simulated OS: processes, threads, SMT-aware scheduler, sync, memory.

The Windows-10 substitute of the reproduction.  The scheduler emits
context-switch records into a :mod:`repro.trace` session — the same
records the paper extracts from ETW's CPU Usage (Precise) analysis.
"""

from repro.os.energy import EnergyModel, EnergyReport
from repro.os.kernel import Kernel, boot
from repro.os.memmodel import MemoryModel, ProcessCounters
from repro.os.scheduler import (
    DEFAULT_QUANTUM,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    LogicalCpu,
    RESAMPLE_PERIOD,
    Scheduler,
    build_topology,
)
from repro.os.sync import Barrier, CountdownLatch, Lock, MessageQueue, Semaphore
from repro.os.threads import OsProcess, Thread, ThreadContext, ThreadState
from repro.os.work import DEFAULT_SMT_THROUGHPUT, WorkClass, smt_pair_throughput

__all__ = [
    "Barrier",
    "EnergyModel",
    "EnergyReport",
    "CountdownLatch",
    "DEFAULT_QUANTUM",
    "DEFAULT_SMT_THROUGHPUT",
    "Kernel",
    "Lock",
    "LogicalCpu",
    "MemoryModel",
    "MessageQueue",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "OsProcess",
    "ProcessCounters",
    "RESAMPLE_PERIOD",
    "Scheduler",
    "Semaphore",
    "Thread",
    "ThreadContext",
    "ThreadState",
    "boot",
    "build_topology",
    "smt_pair_throughput",
    "WorkClass",
]
