"""A first-order CPU/GPU energy model.

The paper touches energy twice: dark silicon / TDP motivates the whole
study, and §V-E cites Microsoft's measurement that Edge consumes 36%
less power than Chrome and 53% less than Firefox during browsing.  We
add a simple activity-based energy estimator so those comparisons can
be made inside the simulation:

* each logical CPU draws ``idle`` power always, plus ``active`` power
  scaled by the work class (FU-bound code lights up more of the core)
  and the current clock,
* the GPU draws idle power plus a share of its TDP proportional to
  engine busy time.

Absolute joules are nominal; the model is for *comparisons* (which
browser, which core count, SMT on/off), like every other metric here.

The coefficients are **parametric**: an :class:`EnergyCoefficients`
bundle (per-class active watts, package idle watts, the clock
exponent, GPU TDP override) can be attached to a machine spec — the
design-space-exploration grid (:mod:`repro.analysis.dse`) sweeps these
coefficients without re-simulating, because they never influence the
schedule.  A machine without coefficients uses the module defaults,
bit-identically to the pre-parametric model.

The model also keeps an **activity histogram** — microseconds of CPU
time per ``(process, work class, clock factor)`` triple.  The
histogram is the exact integral the energy report is computed from,
exposed so post-hoc re-scoring under *different* coefficients can
reproduce a full re-simulation's energy without re-running the
scheduler (the DSE fast path; the property suite pins the
equivalence).
"""

from dataclasses import dataclass, field

from repro.os.work import WorkClass

#: Nominal per-logical-CPU active power (W) by work class, at base clock.
_ACTIVE_POWER_W = {
    WorkClass.FU_BOUND: 8.5,
    WorkClass.MEMORY_BOUND: 5.5,
    WorkClass.BALANCED: 7.0,
    WorkClass.UI: 6.0,
}
#: Package idle power (W) split across logical CPUs.
_CPU_IDLE_W = 6.0
#: Dynamic power scales roughly with f^2 at fixed voltage headroom.
_CLOCK_EXPONENT = 2.0

#: GPU TDPs (W) by architecture for the busy share.
_GPU_TDP_W = {"Pascal": 250.0, "Kepler": 195.0, "Tesla": 204.0}
_GPU_IDLE_W = 12.0


@dataclass(frozen=True)
class EnergyCoefficients:
    """The tunable constants of the energy model, as one value.

    ``active_power_w`` maps a :class:`~repro.os.work.WorkClass` to the
    per-logical-CPU active watts at base clock; ``clock_exponent`` is
    the dynamic-power exponent applied to the turbo clock factor;
    ``gpu_tdp_w=None`` falls back to the per-architecture table.
    These knobs are *trace-invariant*: they change reported joules,
    never the schedule, which is what lets the DSE engine sweep them
    by re-scoring instead of re-simulating.
    """

    active_power_w: dict = field(
        default_factory=lambda: dict(_ACTIVE_POWER_W))
    cpu_idle_w: float = _CPU_IDLE_W
    clock_exponent: float = _CLOCK_EXPONENT
    gpu_tdp_w: float = None
    gpu_idle_w: float = _GPU_IDLE_W


def default_coefficients():
    """The module-default coefficient bundle (the pre-parametric model)."""
    return EnergyCoefficients()


def gpu_tdp_for(coefficients, gpu_spec):
    """Effective GPU TDP (W): the override, else the architecture table."""
    if coefficients.gpu_tdp_w is not None:
        return coefficients.gpu_tdp_w
    return _GPU_TDP_W.get(gpu_spec.architecture, 220.0)


@dataclass
class EnergyReport:
    """Joules consumed over a measurement window."""

    cpu_active_j: float
    cpu_idle_j: float
    gpu_active_j: float
    gpu_idle_j: float
    window_us: int

    @property
    def cpu_j(self):
        return self.cpu_active_j + self.cpu_idle_j

    @property
    def gpu_j(self):
        return self.gpu_active_j + self.gpu_idle_j

    @property
    def total_j(self):
        return self.cpu_j + self.gpu_j

    @property
    def average_power_w(self):
        if self.window_us <= 0:
            return 0.0
        return self.total_j / (self.window_us / 1_000_000.0)


class EnergyModel:
    """Accumulates CPU slice energy; reads GPU energy from the device.

    ``coefficients`` defaults to the machine spec's ``coefficients``
    attribute when it carries one (parametric machines from
    :func:`repro.hardware.catalog.parametric_machine` do), else to the
    module defaults — so catalog machines keep their historical joule
    values bit-for-bit.
    """

    def __init__(self, machine, coefficients=None):
        self.machine = machine
        if coefficients is None:
            coefficients = getattr(machine, "coefficients", None)
        self.coefficients = coefficients or default_coefficients()
        self._active_j = 0.0
        self._by_process = {}
        #: ``(work_class, clock_factor) -> power``: the float ``**`` is
        #: the costliest operation of the per-slice hot path and both
        #: key components take only a handful of values, so each power
        #: level is computed once and reused bit-for-bit.
        self._power_cache = {}
        #: ``(process, work_class, clock_factor) -> µs``, the exact
        #: integer integral behind ``_active_j`` (see module docstring).
        self._activity = {}

    def record_slice(self, process_name, work_class, wall_us, clock_factor):
        """Called per scheduling slice (same stream the memory model
        sees); ``clock_factor`` is the turbo multiplier at dispatch."""
        power = self._power_cache.get((work_class, clock_factor))
        if power is None:
            power = (self.coefficients.active_power_w[work_class]
                     * clock_factor ** self.coefficients.clock_exponent)
            self._power_cache[(work_class, clock_factor)] = power
        joules = power * wall_us / 1_000_000.0
        self._active_j += joules
        self._by_process[process_name] = (
            self._by_process.get(process_name, 0.0) + joules)
        key = (process_name, work_class, clock_factor)
        self._activity[key] = self._activity.get(key, 0) + wall_us

    def process_active_j(self, process_name):
        """Active CPU joules attributed to one process."""
        return self._by_process.get(process_name, 0.0)

    def activity(self, processes=None):
        """``{(work_class, clock_factor): µs}`` aggregated over
        ``processes`` (all processes when ``None``).

        Integer microseconds, deterministically ordered by key — the
        lossless input of analytic energy re-scoring.
        """
        histogram = {}
        for (name, work_class, factor), wall_us in self._activity.items():
            if processes is not None and name not in processes:
                continue
            key = (work_class, factor)
            histogram[key] = histogram.get(key, 0) + wall_us
        return dict(sorted(histogram.items()))

    def report(self, window_us, gpu_device=None, processes=None):
        """Build an :class:`EnergyReport` for a window.

        With ``processes`` set, active CPU energy is restricted to
        those processes (idle power is still whole-package — it exists
        whether or not the app runs, like in a wall-plug measurement).
        """
        if processes is None:
            active = self._active_j
        else:
            active = sum(self._by_process.get(name, 0.0)
                         for name in processes)
        seconds = window_us / 1_000_000.0
        cpu_idle = self.coefficients.cpu_idle_w * seconds
        gpu_active = 0.0
        gpu_idle = self.coefficients.gpu_idle_w * seconds
        if gpu_device is not None:
            tdp = gpu_tdp_for(self.coefficients, gpu_device.spec)
            busy_fraction = min(1.0, gpu_device.busy_us() / max(1, window_us))
            gpu_active = (tdp - self.coefficients.gpu_idle_w) \
                * busy_fraction * seconds
        return EnergyReport(
            cpu_active_j=active,
            cpu_idle_j=cpu_idle,
            gpu_active_j=gpu_active,
            gpu_idle_j=gpu_idle,
            window_us=window_us,
        )
