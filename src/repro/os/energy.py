"""A first-order CPU/GPU energy model.

The paper touches energy twice: dark silicon / TDP motivates the whole
study, and §V-E cites Microsoft's measurement that Edge consumes 36%
less power than Chrome and 53% less than Firefox during browsing.  We
add a simple activity-based energy estimator so those comparisons can
be made inside the simulation:

* each logical CPU draws ``idle`` power always, plus ``active`` power
  scaled by the work class (FU-bound code lights up more of the core)
  and the current clock,
* the GPU draws idle power plus a share of its TDP proportional to
  engine busy time.

Absolute joules are nominal; the model is for *comparisons* (which
browser, which core count, SMT on/off), like every other metric here.
"""

from dataclasses import dataclass

from repro.os.work import WorkClass

#: Nominal per-logical-CPU active power (W) by work class, at base clock.
_ACTIVE_POWER_W = {
    WorkClass.FU_BOUND: 8.5,
    WorkClass.MEMORY_BOUND: 5.5,
    WorkClass.BALANCED: 7.0,
    WorkClass.UI: 6.0,
}
#: Package idle power (W) split across logical CPUs.
_CPU_IDLE_W = 6.0
#: Dynamic power scales roughly with f^2 at fixed voltage headroom.
_CLOCK_EXPONENT = 2.0

#: GPU TDPs (W) by architecture for the busy share.
_GPU_TDP_W = {"Pascal": 250.0, "Kepler": 195.0, "Tesla": 204.0}
_GPU_IDLE_W = 12.0


@dataclass
class EnergyReport:
    """Joules consumed over a measurement window."""

    cpu_active_j: float
    cpu_idle_j: float
    gpu_active_j: float
    gpu_idle_j: float
    window_us: int

    @property
    def cpu_j(self):
        return self.cpu_active_j + self.cpu_idle_j

    @property
    def gpu_j(self):
        return self.gpu_active_j + self.gpu_idle_j

    @property
    def total_j(self):
        return self.cpu_j + self.gpu_j

    @property
    def average_power_w(self):
        if self.window_us <= 0:
            return 0.0
        return self.total_j / (self.window_us / 1_000_000.0)


class EnergyModel:
    """Accumulates CPU slice energy; reads GPU energy from the device."""

    def __init__(self, machine):
        self.machine = machine
        self._active_j = 0.0
        self._by_process = {}
        #: ``(work_class, clock_factor) -> power``: the float ``**`` is
        #: the costliest operation of the per-slice hot path and both
        #: key components take only a handful of values, so each power
        #: level is computed once and reused bit-for-bit.
        self._power_cache = {}

    def record_slice(self, process_name, work_class, wall_us, clock_factor):
        """Called per scheduling slice (same stream the memory model
        sees); ``clock_factor`` is the turbo multiplier at dispatch."""
        power = self._power_cache.get((work_class, clock_factor))
        if power is None:
            power = (_ACTIVE_POWER_W[work_class]
                     * clock_factor ** _CLOCK_EXPONENT)
            self._power_cache[(work_class, clock_factor)] = power
        joules = power * wall_us / 1_000_000.0
        self._active_j += joules
        self._by_process[process_name] = (
            self._by_process.get(process_name, 0.0) + joules)

    def process_active_j(self, process_name):
        """Active CPU joules attributed to one process."""
        return self._by_process.get(process_name, 0.0)

    def report(self, window_us, gpu_device=None, processes=None):
        """Build an :class:`EnergyReport` for a window.

        With ``processes`` set, active CPU energy is restricted to
        those processes (idle power is still whole-package — it exists
        whether or not the app runs, like in a wall-plug measurement).
        """
        if processes is None:
            active = self._active_j
        else:
            active = sum(self._by_process.get(name, 0.0)
                         for name in processes)
        seconds = window_us / 1_000_000.0
        cpu_idle = _CPU_IDLE_W * seconds
        gpu_active = 0.0
        gpu_idle = _GPU_IDLE_W * seconds
        if gpu_device is not None:
            tdp = _GPU_TDP_W.get(gpu_device.spec.architecture, 220.0)
            busy_fraction = min(1.0, gpu_device.busy_us() / max(1, window_us))
            gpu_active = (tdp - _GPU_IDLE_W) * busy_fraction * seconds
        return EnergyReport(
            cpu_active_j=active,
            cpu_idle_j=cpu_idle,
            gpu_active_j=gpu_active,
            gpu_idle_j=gpu_idle,
            window_us=window_us,
        )
