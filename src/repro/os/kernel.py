"""The simulated OS kernel facade.

Owns the process table, the scheduler, the memory model and the hooks
into the trace session.  Application models talk to this object to
spawn processes and threads; the harness creates one kernel per run.
"""

import random

from repro.os.energy import EnergyModel
from repro.os.memmodel import MemoryModel
from repro.os.scheduler import Scheduler
from repro.os.threads import OsProcess
from repro.os.work import WorkClass
from repro.sim import MS, SECOND
from repro.trace.session import NullSession


class Kernel:
    """One booted instance of the simulated operating system."""

    def __init__(self, env, machine, session=None, seed=0, turbo=True,
                 dispatch_policy="spread", quantum=None, epoch=None):
        self.env = env
        self.machine = machine
        self.session = session if session is not None else NullSession()
        self.rng = random.Random(seed)
        self.memory_model = MemoryModel()
        self.energy_model = EnergyModel(machine)
        scheduler_kwargs = {"memory_model": self.memory_model,
                            "energy_model": self.energy_model,
                            "turbo": turbo,
                            "dispatch_policy": dispatch_policy,
                            "epoch": epoch}
        if quantum is not None:
            scheduler_kwargs["quantum"] = quantum
        self.scheduler = Scheduler(env, machine, self.session,
                                   **scheduler_kwargs)
        self.processes = []
        self._next_pid = 4  # Windows starts user PIDs above the System PID
        #: Inventory of sync primitives constructed against this kernel.
        self.sync_primitives = []
        self._sync_counts = {}

    @property
    def now(self):
        return self.env.now

    @property
    def logical_cpus(self):
        """Number of active logical CPUs in this boot configuration."""
        return len(self.scheduler.lcpus)

    def spawn_process(self, name, image=None):
        """Create a new (threadless) process."""
        self._next_pid += 4
        process = OsProcess(self, self._next_pid, name, image=image)
        self.processes.append(process)
        return process

    def find_processes(self, prefix):
        """All processes whose name starts with ``prefix``."""
        return [p for p in self.processes if p.name.startswith(prefix)]

    def register_sync(self, primitive, kind, name=None):
        """Record a sync primitive; returns its (auto-assigned) name.

        Auto-names are stable per kernel (``lock-1``, ``semaphore-2``,
        ...) so diagnostics and lint findings stay deterministic.
        """
        index = self._sync_counts.get(kind, 0) + 1
        self._sync_counts[kind] = index
        self.sync_primitives.append(primitive)
        return name if name is not None else f"{kind}-{index}"

    def note_sync_op(self, primitive, op, token=None):
        """Observation hook for sync operations.

        A no-op on the real kernel; the shadow-build kernel in
        :mod:`repro.analysis.static.shadow` overrides it to record
        acquisition sites without simulating.
        """

    def start_background_services(self, duty_cycle=0.004, services=None):
        """Spawn light OS background activity (System, svchost, dwm).

        The paper ends "unrelated background processes" before tracing
        but kernel services keep ticking; their presence exercises the
        application-level process filtering in the metrics pipeline.
        ``duty_cycle`` is the fraction of time each service computes.
        """
        names = services if services is not None else (
            "System", "svchost.exe", "dwm.exe")
        spawned = []
        for name in names:
            process = self.spawn_process(name)
            process.spawn_thread(
                self._service_body(duty_cycle), name=f"{name}-tick")
            spawned.append(process)
        return spawned

    def _service_body(self, duty_cycle):
        rng = random.Random(self.rng.getrandbits(32))

        def body(ctx):
            period = SECOND // 2
            busy = max(1, int(period * duty_cycle))
            while True:
                yield ctx.sleep(rng.randint(period // 2, period * 3 // 2))
                yield ctx.cpu(max(1, int(busy * rng.uniform(0.5, 1.5))),
                              WorkClass.UI)

        return body


def boot(env, machine, session=None, seed=0, background_services=True,
         turbo=True):
    """Convenience: construct a kernel and start background services."""
    kernel = Kernel(env, machine, session=session, seed=seed, turbo=turbo)
    if background_services:
        kernel.start_background_services()
    return kernel
