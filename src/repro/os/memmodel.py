"""Analytic cache/memory contention counters — the VTune substitute.

The paper's §V-C.2 backs its SMT analysis with Intel VTune statistics:
enabling SMT *reduces* LLC misses and main-memory wait time (siblings
prefetch shared data for one another) but *raises* the fraction of time
a core is stalled on the L1 cache without missing in it, from 5.3% to
10.7% (functional-unit / load-store contention within the core).

We reproduce those counters from the scheduler's slice stream: every
scheduling interval reports its work class and whether an SMT sibling
was running (and whether it belonged to the same process).
"""

from dataclasses import dataclass, field

from repro.os.work import WorkClass

#: Baseline LLC misses per millisecond of work, per work class.
_LLC_MISS_RATE_PER_MS = {
    WorkClass.FU_BOUND: 45.0,
    WorkClass.MEMORY_BOUND: 220.0,
    WorkClass.BALANCED: 90.0,
    WorkClass.UI: 30.0,
}

#: Fraction of LLC misses removed when the SMT sibling runs the same
#: process (sibling threads bring shared data on-chip for each other).
_SHARED_DATA_MISS_SAVINGS = 0.32

#: Fraction of core time stalled on the L1 (hit-bound stalls) when a
#: thread runs alone vs. co-resident with a busy sibling — the paper's
#: 5.3% -> 10.7% observation for HandBrake.
_L1_STALL_ALONE = 0.053
_L1_STALL_CONTENDED = 0.107

#: Main-memory wait per LLC miss, microseconds.
_MEM_WAIT_PER_MISS_US = 0.09


@dataclass
class ProcessCounters:
    """Accumulated memory-hierarchy statistics for one process."""

    work_us: int = 0
    contended_us: int = 0
    llc_misses: float = 0.0
    l1_stall_us: float = 0.0
    by_class: dict = field(default_factory=dict)

    @property
    def l1_stall_pct(self):
        """Percent of run time stalled on the L1 without missing."""
        if self.work_us == 0:
            return 0.0
        return 100.0 * self.l1_stall_us / self.work_us

    @property
    def mem_wait_us(self):
        """Estimated time waiting on main memory."""
        return self.llc_misses * _MEM_WAIT_PER_MISS_US

    @property
    def llc_misses_per_ms(self):
        if self.work_us == 0:
            return 0.0
        return self.llc_misses / (self.work_us / 1000.0)


class MemoryModel:
    """Aggregates per-process counters from scheduler slices."""

    def __init__(self):
        self._counters = {}

    def record_slice(self, process_name, work_class, wall_us,
                     sibling_busy, sibling_same_process):
        # get-then-insert rather than setdefault: the default argument
        # of setdefault would construct (and discard) a ProcessCounters
        # on every slice of this per-slice hot path.
        counters = self._counters.get(process_name)
        if counters is None:
            counters = self._counters[process_name] = ProcessCounters()
        counters.work_us += wall_us
        wall_ms = wall_us / 1000.0
        misses = _LLC_MISS_RATE_PER_MS[work_class] * wall_ms
        if sibling_busy and sibling_same_process:
            misses *= 1.0 - _SHARED_DATA_MISS_SAVINGS
        counters.llc_misses += misses
        stall = _L1_STALL_CONTENDED if sibling_busy else _L1_STALL_ALONE
        counters.l1_stall_us += stall * wall_us
        if sibling_busy:
            counters.contended_us += wall_us
        counters.by_class[work_class] = (
            counters.by_class.get(work_class, 0) + wall_us)

    def counters(self, process_name):
        """Counters for ``process_name`` (empty counters if unseen)."""
        return self._counters.get(process_name, ProcessCounters())

    def process_names(self):
        return sorted(self._counters)
