"""The CPU scheduler: logical CPUs, SMT-aware dispatch, preemption.

Responsibilities:

* maintain the logical-CPU topology for the active machine
  configuration (core scaling enables whole physical cores first, as
  Windows does when restricting the affinity mask);
* dispatch ready threads to idle logical CPUs, preferring CPUs whose
  SMT sibling is idle (spreading across physical cores first);
* time-slice when runnable threads outnumber CPUs (round-robin with a
  Windows-like quantum);
* scale execution speed for SMT sibling contention and turbo clocks;
* emit one context-switch trace record per scheduling interval.
"""

import math
from collections import deque

from repro.os.threads import ThreadState
from repro.os.work import smt_pair_throughput
from repro.sim import MS
# Re-exported here for backwards compatibility: the epoch switch
# lives with the environment (the GPU engines gate on it too).
from repro.sim.environment import EPOCH_ENV, epoch_enabled  # noqa: F401
from repro.sim.exceptions import Interrupt

#: Windows' foreground quantum is ~2 clock ticks (~31 ms); we use a
#: tighter 15 ms slice, matching the timer-tick granularity the paper's
#: ETW traces resolve.
DEFAULT_QUANTUM = 15 * MS

#: Uncontended threads still re-enter the scheduler at this period so
#: SMT-sibling speed factors are resampled while conditions change.
RESAMPLE_PERIOD = 50 * MS

#: Thread priority levels: latency-critical threads (VR compositor,
#: audio render) are dispatched before normal work when CPUs are scarce.
PRIORITY_NORMAL = 0
PRIORITY_HIGH = 1


class LogicalCpu:
    """One schedulable hardware thread."""

    __slots__ = ("index", "core", "way", "thread", "work_class")

    def __init__(self, index, core, way):
        self.index = index
        self.core = core
        self.way = way
        self.thread = None
        self.work_class = None

    @property
    def idle(self):
        return self.thread is None

    def __repr__(self):
        return f"<LCPU {self.index} core={self.core} way={self.way}>"


def compute_clock_factor(cpu, busy_cores, n_cores, turbo=True):
    """Turbo-boost speed multiplier for ``busy_cores`` active cores.

    With few busy cores the chip sustains its turbo clock; fully
    loaded it drops toward base — the standard Intel behaviour.

    Module-level (not a scheduler method) because this is the *only*
    computation through which absolute clock values reach the
    simulation; the DSE axis partition
    (:func:`repro.analysis.dse.axes.sim_signature`) evaluates the same
    function to decide, bit-for-bit, whether two machine configs can
    share a simulated trace.
    """
    if not turbo:
        return 1.0
    busy = max(1, busy_cores)
    total = max(1, n_cores)
    span = cpu.turbo_clock_ghz - cpu.base_clock_ghz
    frac = (busy - 1) / max(1, total - 1)
    clock = cpu.turbo_clock_ghz - span * frac
    return clock / cpu.base_clock_ghz


def build_topology(machine):
    """Enumerate the active logical CPUs for a machine configuration.

    Logical CPUs are enumerated core-major (core0-way0, core0-way1,
    core1-way0, ...) so that restricting to N logical CPUs with SMT on
    yields N/2 fully-enabled physical cores — the configuration used in
    the paper's core-scaling experiments.
    """
    lcpus = []
    index = 0
    ways = machine.smt_ways
    for core in range(machine.cpu.physical_cores):
        for way in range(ways):
            lcpus.append(LogicalCpu(index, core, way))
            index += 1
    return lcpus[:machine.logical_cpus]


class Scheduler:
    """SMT-aware round-robin scheduler over the active logical CPUs."""

    #: Dispatch policies: "spread" prefers fully-idle physical cores
    #: (Windows-like, the default); "fill" takes the first idle logical
    #: CPU, packing SMT siblings early — kept as an ablation knob for
    #: the SMT analysis.
    POLICIES = ("spread", "fill")

    def __init__(self, env, machine, session, memory_model=None,
                 energy_model=None, quantum=DEFAULT_QUANTUM, turbo=True,
                 dispatch_policy="spread", epoch=None):
        if dispatch_policy not in self.POLICIES:
            raise ValueError(f"unknown dispatch policy {dispatch_policy!r}")
        self.env = env
        self.machine = machine
        self.session = session
        self.memory_model = memory_model
        self.energy_model = energy_model
        self.quantum = quantum
        self.turbo = turbo
        self.dispatch_policy = dispatch_policy
        self.lcpus = build_topology(machine)
        #: Sibling tuples indexed by ``lcpu.index`` — precomputed once
        #: so the per-slice hot paths below never rebuild sibling lists.
        self._siblings = self._map_siblings()
        #: Incremental per-core busy counters (kept in sync by
        #: ``_occupy``/``_vacate``) replace the per-slice set
        #: comprehensions of ``busy_physical_cores``.
        self._core_busy = [0] * (max((l.core for l in self.lcpus),
                                     default=-1) + 1)
        self._busy_cores = 0
        self._n_cores = len({l.core for l in self.lcpus})
        #: Bit i set == lcpu i is idle.  Together with the per-core bit
        #: masks this makes dispatch an O(1) bit scan instead of a walk
        #: over every logical CPU per scheduling decision.
        self._idle_mask = (1 << len(self.lcpus)) - 1
        self._core_lcpu_mask = [0] * len(self._core_busy)
        for lcpu in self.lcpus:
            self._core_lcpu_mask[lcpu.core] |= 1 << lcpu.index
        #: Union of the lcpu bits of fully-idle physical cores — the
        #: candidate set of the "spread" policy.
        self._free_core_lcpu_mask = self._idle_mask
        self._ready = deque()
        #: Total nominal work retired, per process name (for throughput
        #: metrics like transcode rate sanity checks).
        self.retired_work = {}
        #: Epoch-partitioned burst execution (see :meth:`run_burst`).
        self.epoch = epoch_enabled(epoch)
        #: Turbo clock factor is a pure function of the busy-core count;
        #: precomputing the table turns the per-slice call into a list
        #: index.  Index 0 (no busy cores) shares the single-core value
        #: — ``max(1, busy)`` in the formula.
        self._clock_table = [self._compute_clock_factor(busy)
                             for busy in range(self._n_cores + 1)]
        #: ``smt_pair_throughput`` per work class, filled on first use.
        self._pair_cache = {}

    def _map_siblings(self):
        by_core = {}
        for lcpu in self.lcpus:
            by_core.setdefault(lcpu.core, []).append(lcpu)
        return [tuple(m for m in by_core[lcpu.core] if m is not lcpu)
                for lcpu in self.lcpus]

    def _occupy(self, lcpu, thread):
        lcpu.thread = thread
        core = lcpu.core
        self._core_busy[core] += 1
        if self._core_busy[core] == 1:
            self._busy_cores += 1
            self._free_core_lcpu_mask &= ~self._core_lcpu_mask[core]
        self._idle_mask &= ~(1 << lcpu.index)
        # Occupancy edge for streaming consumers; the guard keeps the
        # non-streaming hot path free of the fan-out call.
        if self.session.subscribers:
            self.session.emit_cpu_busy(thread.process.name, lcpu.index)

    def _vacate(self, lcpu):
        if self.session.subscribers:
            self.session.emit_cpu_idle(lcpu.thread.process.name, lcpu.index)
        lcpu.thread = None
        lcpu.work_class = None
        core = lcpu.core
        self._core_busy[core] -= 1
        if self._core_busy[core] == 0:
            self._busy_cores -= 1
            self._free_core_lcpu_mask |= self._core_lcpu_mask[core]
        self._idle_mask |= 1 << lcpu.index

    # -- state inspection ----------------------------------------------

    @property
    def ready_count(self):
        return len(self._ready)

    def busy_physical_cores(self):
        """Number of physical cores with at least one busy sibling."""
        return self._busy_cores

    def _compute_clock_factor(self, busy_cores):
        """Turbo-boost speed multiplier for ``busy_cores`` active cores."""
        return compute_clock_factor(self.machine.cpu, busy_cores,
                                    self._n_cores, turbo=self.turbo)

    def _clock_factor(self):
        """Current turbo multiplier (precomputed per busy-core count)."""
        return self._clock_table[self._busy_cores]

    def speed_of(self, lcpu, work_class):
        """Execution speed (nominal work per wall µs) on ``lcpu`` now."""
        speed = self._clock_table[self._busy_cores]
        busy_siblings = 0
        for s in self._siblings[lcpu.index]:
            if s.thread is not None:
                busy_siblings += 1
        if busy_siblings:
            pair = self._pair_cache.get(work_class)
            if pair is None:
                pair = smt_pair_throughput(self.machine.cpu, work_class)
                self._pair_cache[work_class] = pair
            speed *= pair / (1 + busy_siblings)
        return speed

    # -- dispatch -------------------------------------------------------

    def _pick_idle_lcpu(self, thread=None):
        """Idle LCPU according to the dispatch policy.

        A thread's previously-used CPU is preferred among equivalent
        choices (Windows' "ideal processor" heuristic: warm caches),
        but cache warmth never outranks an idle physical core under
        the spread policy.

        The linear walk over ``self.lcpus`` is replaced by bit scans of
        the incrementally-maintained idle masks: ``mask & -mask``
        isolates the lowest set bit, which is exactly the first idle
        lcpu in enumeration order — the same choice the walk made.
        """
        idle = self._idle_mask
        if not idle:
            return None
        warm = None
        if thread is not None:
            last = getattr(thread, "last_cpu", None)
            if last is not None and last < len(self.lcpus) and (idle >> last) & 1:
                candidate = self.lcpus[last]
                if (self.dispatch_policy == "fill"
                        or self._core_busy[candidate.core] == 0):
                    return candidate
                warm = candidate
        if self.dispatch_policy == "fill":
            return self.lcpus[(idle & -idle).bit_length() - 1]
        free = idle & self._free_core_lcpu_mask
        if free:
            return self.lcpus[(free & -free).bit_length() - 1]
        if warm is not None:
            return warm
        return self.lcpus[(idle & -idle).bit_length() - 1]

    def _dispatch(self):
        while self._ready:
            thread, grant = self._ready[0]
            lcpu = self._pick_idle_lcpu(thread)
            if lcpu is None:
                return
            self._ready.popleft()
            self._occupy(lcpu, thread)
            thread.last_cpu = lcpu.index
            grant.succeed(lcpu)

    def _enqueue(self, thread, grant):
        """Add to the ready queue honouring thread priority.

        ``Thread.priority`` above NORMAL jumps ahead of every queued
        normal-priority thread (Windows-style strict priority classes
        without starvation handling — high-priority work here is tiny:
        compositors, audio).
        """
        if thread.priority > PRIORITY_NORMAL:
            index = 0
            for index, (queued, _grant) in enumerate(self._ready):
                if queued.priority < thread.priority:
                    self._ready.insert(index, (thread, grant))
                    return
            self._ready.append((thread, grant))
        else:
            self._ready.append((thread, grant))

    def run_burst(self, thread, amount, work_class):
        """Generator: run ``amount`` µs of nominal work for ``thread``.

        Delegated to by :meth:`Thread._run`; yields simulation events.
        Handles enqueueing, dispatch, SMT speed scaling, preemption and
        trace emission.

        **Epoch-partitioned execution** (``self.epoch``, the default):
        a thread granted a CPU while the environment is *quiescent* —
        no other event queued at the current instant and no callback
        cascade in flight (:meth:`~repro.sim.environment.Environment.
        quiescent`) — takes the CPU synchronously instead of round-
        tripping a grant event through the global queue.  Between such
        grants the thread advances on its own virtual clock (its slice
        timeouts), merging back into the globally ordered event stream
        at every epoch boundary: a contended ready queue, a same-
        instant event, or a callback fan-out.  Because the fast path
        only triggers when nothing else could have run before the
        grant event would have been processed — and event removal
        preserves the relative (time, priority, eid) order of every
        other event — the schedule, the emitted trace and every metric
        are bit-identical to the legacy loop; the golden suite pins
        that equivalence across all 150 grid points.
        """
        env = self.env
        session = self.session
        remaining = int(amount)
        epoch = self.epoch
        # Locals for the per-slice loop: attribute loads repeated tens
        # of thousands of times per run are bound once.  Only values
        # that never change mid-run may be hoisted — mutable scheduler
        # state (masks, ready queue) is re-read after every yield.
        ready = self._ready
        siblings = self._siblings
        clock_table = self._clock_table
        pair_cache = self._pair_cache
        retired = self.retired_work
        memory_model = self.memory_model
        energy_model = self.energy_model
        quantum = self.quantum
        ceil = math.ceil
        process = thread.process
        process_name = process.name
        state_ready = ThreadState.READY
        state_running = ThreadState.RUNNING
        queue = env._queue
        while remaining > 0:
            thread.state = state_ready
            ready_time = env._now
            # ``env.quiescent()`` inlined (same test, no call).
            if (epoch and not ready and self._idle_mask
                    and env._cb_pending == 0
                    and (not queue or queue[0][0] > ready_time)):
                # Synchronous grant: same CPU choice and occupancy
                # bookkeeping as _dispatch, minus the event round-trip.
                lcpu = self._pick_idle_lcpu(thread)
                self._occupy(lcpu, thread)
                thread.last_cpu = lcpu.index
            else:
                grant = env.event()
                self._enqueue(thread, grant)
                self._dispatch()
                try:
                    lcpu = yield grant
                except Interrupt:
                    # Killed while waiting for a CPU: leave the queue (or
                    # free the CPU that was granted in the same instant).
                    # In place (not a rebind): every in-flight run_burst
                    # frame holds this deque as a local.
                    kept = [entry for entry in self._ready
                            if entry[1] is not grant]
                    ready.clear()
                    ready.extend(kept)
                    if grant.triggered:
                        self._vacate(grant.value)
                        self._dispatch()
                    raise
            thread.state = state_running
            lcpu.work_class = work_class
            # One fused pass over the SMT siblings feeds both the speed
            # factor (busy-sibling count) and the memory-model flags —
            # the legacy code walked the sibling tuple twice per slice.
            busy_siblings = 0
            sibling_same_process = False
            for s in siblings[lcpu.index]:
                other = s.thread
                if other is not None:
                    busy_siblings += 1
                    if other.process is process:
                        sibling_same_process = True
            speed = clock_table[self._busy_cores]
            if busy_siblings:
                pair = pair_cache.get(work_class)
                if pair is None:
                    pair = smt_pair_throughput(self.machine.cpu, work_class)
                    pair_cache[work_class] = pair
                speed *= pair / (1 + busy_siblings)
            cap = quantum if ready else RESAMPLE_PERIOD
            wall = ceil(remaining / speed)
            if wall < 1:
                wall = 1
            elif wall > cap:
                wall = cap
            switch_in = env._now
            interrupted = None
            # ``env.advance(wall)`` inlined — the three-way equivalence
            # test documented there, minus the call overhead.
            target = switch_in + wall
            horizon = env._horizon
            if (epoch and env._cb_pending == 0
                    and (horizon is None or target <= horizon)
                    and (not queue or queue[0][0] > target)):
                env._now = target
            else:
                try:
                    yield env.timeout(wall)
                except Interrupt as exc:
                    # Killed mid-slice: account for the time actually
                    # spent on the CPU, then unwind.
                    interrupted = exc
                    wall = env._now - switch_in
            if wall > 0:
                done = min(remaining, max(1, math.floor(wall * speed)))
                remaining -= done
                retired[process_name] = retired.get(process_name, 0) + done
                session.emit_cswitch(
                    process_name, process.pid, thread.tid,
                    thread.name, lcpu.index, ready_time, switch_in, env._now)
                if memory_model is not None:
                    memory_model.record_slice(
                        process_name, work_class, wall,
                        busy_siblings > 0, sibling_same_process)
                if energy_model is not None:
                    energy_model.record_slice(
                        process_name, work_class, wall,
                        clock_table[self._busy_cores])
            self._vacate(lcpu)
            if ready:
                self._dispatch()
            if interrupted is not None:
                raise interrupted
