"""The CPU scheduler: logical CPUs, SMT-aware dispatch, preemption.

Responsibilities:

* maintain the logical-CPU topology for the active machine
  configuration (core scaling enables whole physical cores first, as
  Windows does when restricting the affinity mask);
* dispatch ready threads to idle logical CPUs, preferring CPUs whose
  SMT sibling is idle (spreading across physical cores first);
* time-slice when runnable threads outnumber CPUs (round-robin with a
  Windows-like quantum);
* scale execution speed for SMT sibling contention and turbo clocks;
* emit one context-switch trace record per scheduling interval.
"""

import math
from collections import deque

from repro.os.threads import ThreadState
from repro.os.work import smt_pair_throughput
from repro.sim import MS
from repro.sim.exceptions import Interrupt

#: Windows' foreground quantum is ~2 clock ticks (~31 ms); we use a
#: tighter 15 ms slice, matching the timer-tick granularity the paper's
#: ETW traces resolve.
DEFAULT_QUANTUM = 15 * MS

#: Uncontended threads still re-enter the scheduler at this period so
#: SMT-sibling speed factors are resampled while conditions change.
RESAMPLE_PERIOD = 50 * MS

#: Thread priority levels: latency-critical threads (VR compositor,
#: audio render) are dispatched before normal work when CPUs are scarce.
PRIORITY_NORMAL = 0
PRIORITY_HIGH = 1


class LogicalCpu:
    """One schedulable hardware thread."""

    __slots__ = ("index", "core", "way", "thread", "work_class")

    def __init__(self, index, core, way):
        self.index = index
        self.core = core
        self.way = way
        self.thread = None
        self.work_class = None

    @property
    def idle(self):
        return self.thread is None

    def __repr__(self):
        return f"<LCPU {self.index} core={self.core} way={self.way}>"


def build_topology(machine):
    """Enumerate the active logical CPUs for a machine configuration.

    Logical CPUs are enumerated core-major (core0-way0, core0-way1,
    core1-way0, ...) so that restricting to N logical CPUs with SMT on
    yields N/2 fully-enabled physical cores — the configuration used in
    the paper's core-scaling experiments.
    """
    lcpus = []
    index = 0
    ways = machine.smt_ways
    for core in range(machine.cpu.physical_cores):
        for way in range(ways):
            lcpus.append(LogicalCpu(index, core, way))
            index += 1
    return lcpus[:machine.logical_cpus]


class Scheduler:
    """SMT-aware round-robin scheduler over the active logical CPUs."""

    #: Dispatch policies: "spread" prefers fully-idle physical cores
    #: (Windows-like, the default); "fill" takes the first idle logical
    #: CPU, packing SMT siblings early — kept as an ablation knob for
    #: the SMT analysis.
    POLICIES = ("spread", "fill")

    def __init__(self, env, machine, session, memory_model=None,
                 energy_model=None, quantum=DEFAULT_QUANTUM, turbo=True,
                 dispatch_policy="spread"):
        if dispatch_policy not in self.POLICIES:
            raise ValueError(f"unknown dispatch policy {dispatch_policy!r}")
        self.env = env
        self.machine = machine
        self.session = session
        self.memory_model = memory_model
        self.energy_model = energy_model
        self.quantum = quantum
        self.turbo = turbo
        self.dispatch_policy = dispatch_policy
        self.lcpus = build_topology(machine)
        #: Sibling tuples indexed by ``lcpu.index`` — precomputed once
        #: so the per-slice hot paths below never rebuild sibling lists.
        self._siblings = self._map_siblings()
        #: Incremental per-core busy counters (kept in sync by
        #: ``_occupy``/``_vacate``) replace the per-slice set
        #: comprehensions of ``busy_physical_cores``.
        self._core_busy = [0] * (max((l.core for l in self.lcpus),
                                     default=-1) + 1)
        self._busy_cores = 0
        self._n_cores = len({l.core for l in self.lcpus})
        #: Bit i set == lcpu i is idle.  Together with the per-core bit
        #: masks this makes dispatch an O(1) bit scan instead of a walk
        #: over every logical CPU per scheduling decision.
        self._idle_mask = (1 << len(self.lcpus)) - 1
        self._core_lcpu_mask = [0] * len(self._core_busy)
        for lcpu in self.lcpus:
            self._core_lcpu_mask[lcpu.core] |= 1 << lcpu.index
        #: Union of the lcpu bits of fully-idle physical cores — the
        #: candidate set of the "spread" policy.
        self._free_core_lcpu_mask = self._idle_mask
        self._ready = deque()
        #: Total nominal work retired, per process name (for throughput
        #: metrics like transcode rate sanity checks).
        self.retired_work = {}

    def _map_siblings(self):
        by_core = {}
        for lcpu in self.lcpus:
            by_core.setdefault(lcpu.core, []).append(lcpu)
        return [tuple(m for m in by_core[lcpu.core] if m is not lcpu)
                for lcpu in self.lcpus]

    def _occupy(self, lcpu, thread):
        lcpu.thread = thread
        core = lcpu.core
        self._core_busy[core] += 1
        if self._core_busy[core] == 1:
            self._busy_cores += 1
            self._free_core_lcpu_mask &= ~self._core_lcpu_mask[core]
        self._idle_mask &= ~(1 << lcpu.index)
        # Occupancy edge for streaming consumers; the guard keeps the
        # non-streaming hot path free of the fan-out call.
        if self.session.subscribers:
            self.session.emit_cpu_busy(thread.process.name, lcpu.index)

    def _vacate(self, lcpu):
        if self.session.subscribers:
            self.session.emit_cpu_idle(lcpu.thread.process.name, lcpu.index)
        lcpu.thread = None
        lcpu.work_class = None
        core = lcpu.core
        self._core_busy[core] -= 1
        if self._core_busy[core] == 0:
            self._busy_cores -= 1
            self._free_core_lcpu_mask |= self._core_lcpu_mask[core]
        self._idle_mask |= 1 << lcpu.index

    # -- state inspection ----------------------------------------------

    @property
    def ready_count(self):
        return len(self._ready)

    def busy_physical_cores(self):
        """Number of physical cores with at least one busy sibling."""
        return self._busy_cores

    def _clock_factor(self):
        """Turbo-boost speed multiplier based on active core count.

        With few busy cores the chip sustains its turbo clock; fully
        loaded it drops toward base — the standard Intel behaviour.
        """
        if not self.turbo:
            return 1.0
        cpu = self.machine.cpu
        busy = max(1, self._busy_cores)
        total = max(1, self._n_cores)
        span = cpu.turbo_clock_ghz - cpu.base_clock_ghz
        frac = (busy - 1) / max(1, total - 1)
        clock = cpu.turbo_clock_ghz - span * frac
        return clock / cpu.base_clock_ghz

    def speed_of(self, lcpu, work_class):
        """Execution speed (nominal work per wall µs) on ``lcpu`` now."""
        speed = self._clock_factor()
        busy_siblings = 0
        for s in self._siblings[lcpu.index]:
            if s.thread is not None:
                busy_siblings += 1
        if busy_siblings:
            pair = smt_pair_throughput(self.machine.cpu, work_class)
            speed *= pair / (1 + busy_siblings)
        return speed

    # -- dispatch -------------------------------------------------------

    def _pick_idle_lcpu(self, thread=None):
        """Idle LCPU according to the dispatch policy.

        A thread's previously-used CPU is preferred among equivalent
        choices (Windows' "ideal processor" heuristic: warm caches),
        but cache warmth never outranks an idle physical core under
        the spread policy.

        The linear walk over ``self.lcpus`` is replaced by bit scans of
        the incrementally-maintained idle masks: ``mask & -mask``
        isolates the lowest set bit, which is exactly the first idle
        lcpu in enumeration order — the same choice the walk made.
        """
        idle = self._idle_mask
        if not idle:
            return None
        warm = None
        if thread is not None:
            last = getattr(thread, "last_cpu", None)
            if last is not None and last < len(self.lcpus) and (idle >> last) & 1:
                candidate = self.lcpus[last]
                if (self.dispatch_policy == "fill"
                        or self._core_busy[candidate.core] == 0):
                    return candidate
                warm = candidate
        if self.dispatch_policy == "fill":
            return self.lcpus[(idle & -idle).bit_length() - 1]
        free = idle & self._free_core_lcpu_mask
        if free:
            return self.lcpus[(free & -free).bit_length() - 1]
        if warm is not None:
            return warm
        return self.lcpus[(idle & -idle).bit_length() - 1]

    def _dispatch(self):
        while self._ready:
            thread, grant = self._ready[0]
            lcpu = self._pick_idle_lcpu(thread)
            if lcpu is None:
                return
            self._ready.popleft()
            self._occupy(lcpu, thread)
            thread.last_cpu = lcpu.index
            grant.succeed(lcpu)

    def _enqueue(self, thread, grant):
        """Add to the ready queue honouring thread priority.

        ``Thread.priority`` above NORMAL jumps ahead of every queued
        normal-priority thread (Windows-style strict priority classes
        without starvation handling — high-priority work here is tiny:
        compositors, audio).
        """
        if thread.priority > PRIORITY_NORMAL:
            index = 0
            for index, (queued, _grant) in enumerate(self._ready):
                if queued.priority < thread.priority:
                    self._ready.insert(index, (thread, grant))
                    return
            self._ready.append((thread, grant))
        else:
            self._ready.append((thread, grant))

    def run_burst(self, thread, amount, work_class):
        """Generator: run ``amount`` µs of nominal work for ``thread``.

        Delegated to by :meth:`Thread._run`; yields simulation events.
        Handles enqueueing, dispatch, SMT speed scaling, preemption and
        trace emission.
        """
        env = self.env
        session = self.session
        remaining = int(amount)
        while remaining > 0:
            thread.state = ThreadState.READY
            ready_time = env.now
            grant = env.event()
            self._enqueue(thread, grant)
            self._dispatch()
            try:
                lcpu = yield grant
            except Interrupt:
                # Killed while waiting for a CPU: leave the queue (or
                # free the CPU that was granted in the same instant).
                self._ready = deque(
                    entry for entry in self._ready if entry[1] is not grant)
                if grant.triggered:
                    self._vacate(grant.value)
                    self._dispatch()
                raise
            thread.state = ThreadState.RUNNING
            lcpu.work_class = work_class
            speed = self.speed_of(lcpu, work_class)
            sibling_busy = False
            sibling_same_process = False
            for s in self._siblings[lcpu.index]:
                other = s.thread
                if other is not None:
                    sibling_busy = True
                    if other.process is thread.process:
                        sibling_same_process = True
                        break
            cap = self.quantum if self._ready else RESAMPLE_PERIOD
            wall = min(max(1, math.ceil(remaining / speed)), cap)
            switch_in = env.now
            interrupted = None
            try:
                yield env.timeout(wall)
            except Interrupt as exc:
                # Killed mid-slice: account for the time actually spent
                # on the CPU, then unwind.
                interrupted = exc
                wall = env.now - switch_in
            if wall > 0:
                done = min(remaining, max(1, math.floor(wall * speed)))
                remaining -= done
                self.retired_work[thread.process.name] = (
                    self.retired_work.get(thread.process.name, 0) + done)
                session.emit_cswitch(
                    thread.process.name, thread.process.pid, thread.tid,
                    thread.name, lcpu.index, ready_time, switch_in, env.now)
                if self.memory_model is not None:
                    self.memory_model.record_slice(
                        thread.process.name, work_class, wall,
                        sibling_busy, sibling_same_process)
                if self.energy_model is not None:
                    self.energy_model.record_slice(
                        thread.process.name, work_class, wall,
                        self._clock_factor())
            self._vacate(lcpu)
            self._dispatch()
            if interrupted is not None:
                raise interrupted
