"""Synchronization primitives for simulated threads.

All primitives hand out kernel events; thread bodies block on them via
``yield ctx.wait(...)``, which parks the thread off-CPU (state
``BLOCKED``) until the primitive grants it.
"""

from collections import deque

from repro.sim.resources import Store


class Lock:
    """A FIFO mutual-exclusion lock."""

    def __init__(self, kernel):
        self.env = kernel.env
        self._owner = None
        self._waiters = deque()

    @property
    def locked(self):
        return self._owner is not None

    def acquire(self, token=None):
        """Event firing once the lock is held by ``token``.

        ``token`` is any hashable identity (typically the thread); it
        must be passed again to :meth:`release`.
        """
        token = token if token is not None else object()
        event = self.env.event()
        if self._owner is None:
            self._owner = token
            event.succeed(token)
        else:
            self._waiters.append((token, event))
        return event

    def release(self, token=None):
        """Release the lock, passing it to the next waiter if any."""
        if self._owner is None:
            raise RuntimeError("release of an unheld lock")
        if token is not None and self._owner is not token:
            raise RuntimeError("lock released by a non-owner")
        if self._waiters:
            self._owner, event = self._waiters.popleft()
            event.succeed(self._owner)
        else:
            self._owner = None


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, kernel, value=0):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.env = kernel.env
        self._value = value
        self._waiters = deque()

    @property
    def value(self):
        return self._value

    def acquire(self):
        """Event firing when a unit has been taken."""
        event = self.env.event()
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self, count=1):
        """Add ``count`` units, waking waiters in FIFO order."""
        for _ in range(count):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1


class Barrier:
    """A reusable N-party barrier (generation-based)."""

    def __init__(self, kernel, parties):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.env = kernel.env
        self.parties = parties
        self._arrived = 0
        self._gate = self.env.event()

    def wait(self):
        """Event firing once ``parties`` threads have arrived."""
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self._gate = self.env.event()
            gate.succeed()
        return gate


class MessageQueue:
    """A bounded FIFO channel between threads (IPC substitute)."""

    def __init__(self, kernel, capacity=None):
        self._store = Store(kernel.env, capacity=capacity)

    def __len__(self):
        return len(self._store)

    def put(self, item):
        """Event firing once ``item`` has been enqueued."""
        return self._store.put(item)

    def get(self):
        """Event firing with the next item."""
        return self._store.get()


class CountdownLatch:
    """Fires an event after being counted down ``count`` times."""

    def __init__(self, kernel, count):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.env = kernel.env
        self._remaining = count
        self.done = self.env.event()

    def count_down(self):
        if self._remaining <= 0:
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.done.succeed()

    def wait(self):
        return self.done
