"""Synchronization primitives for simulated threads.

All primitives hand out kernel events; thread bodies block on them via
``yield ctx.wait(...)``, which parks the thread off-CPU (state
``BLOCKED``) until the primitive grants it.

Every primitive is *named*: pass ``name=`` or the kernel assigns a
stable ``lock-1`` / ``semaphore-2`` style name at construction.  Names
flow into non-owner release errors, ``repro lint`` deadlock findings
and the static lock-order graph, so diagnostics can say which
primitive misbehaved instead of printing object ids.

Two kernel hooks carry the bookkeeping: ``register_sync`` (assigns the
name, records the inventory) and ``note_sync_op`` (called on every
acquire/release/wait/put/get).  On the real kernel the latter is a
no-op; the shadow-build harness in
:mod:`repro.analysis.static.shadow` overrides both to extract each
application's concurrency structure without running the simulation.
"""

from collections import deque

from repro.sim.resources import Store


def token_label(token):
    """Human-readable identity of an acquire token.

    Tokens are usually thread objects, so prefer their ``name``.
    """
    if token is None:
        return "<none>"
    name = getattr(token, "name", None)
    return name if isinstance(name, str) else repr(token)


class _SyncPrimitive:
    """Naming/registration plumbing shared by all sync primitives."""

    kind = "sync"

    def _register(self, kernel, name):
        self.kernel = kernel
        self.env = kernel.env
        register = getattr(kernel, "register_sync", None)
        if register is not None:
            self.name = register(self, self.kind, name)
        else:  # bare test doubles without the kernel-side registry
            self.name = name or f"{self.kind}@{id(self):x}"
        note = getattr(kernel, "note_sync_op", None)
        if note is not None:
            # The base kernel's hook is a documented no-op; observers
            # (the static shadow kernel) override it.  Detecting the
            # no-op here removes a useless call from every sync op.
            from repro.os.kernel import Kernel
            if getattr(type(kernel), "note_sync_op", None) \
                    is Kernel.note_sync_op:
                note = None
        self._note = note

    def _record(self, op, token=None):
        if self._note is not None:
            self._note(self, op, token)


class Lock(_SyncPrimitive):
    """A FIFO mutual-exclusion lock."""

    kind = "lock"

    def __init__(self, kernel, name=None):
        self._register(kernel, name)
        self._owner = None
        self._waiters = deque()

    @property
    def locked(self):
        return self._owner is not None

    @property
    def owner(self):
        """The token currently holding the lock (None when free)."""
        return self._owner

    def acquire(self, token=None):
        """Event firing once the lock is held by ``token``.

        ``token`` is any hashable identity (typically the thread); it
        must be passed again to :meth:`release`.
        """
        token = token if token is not None else object()
        self._record("acquire", token)
        event = self.env.event()
        if self._owner is None:
            self._owner = token
            event.succeed(token)
        else:
            self._waiters.append((token, event))
        return event

    def release(self, token=None):
        """Release the lock, passing it to the next waiter if any."""
        self._record("release", token)
        if self._owner is None:
            raise RuntimeError(
                f"release of unheld lock {self.name!r} "
                f"by {token_label(token)}")
        if token is not None and self._owner is not token:
            raise RuntimeError(
                f"lock {self.name!r} released by non-owner "
                f"{token_label(token)}; currently held by "
                f"{token_label(self._owner)}")
        if self._waiters:
            self._owner, event = self._waiters.popleft()
            event.succeed(self._owner)
        else:
            self._owner = None

    def __repr__(self):
        state = (f"held by {token_label(self._owner)}"
                 if self._owner is not None else "free")
        return (f"<Lock {self.name!r} {state}, "
                f"{len(self._waiters)} waiting>")


class Semaphore(_SyncPrimitive):
    """A counting semaphore with FIFO wakeup."""

    kind = "semaphore"

    def __init__(self, kernel, value=0, name=None):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self._register(kernel, name)
        self._value = value
        self._waiters = deque()

    @property
    def value(self):
        return self._value

    def acquire(self):
        """Event firing when a unit has been taken."""
        self._record("acquire")
        event = self.env.event()
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self, count=1):
        """Add ``count`` units, waking waiters in FIFO order."""
        self._record("release")
        for _ in range(count):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1

    def __repr__(self):
        return (f"<Semaphore {self.name!r} value={self._value}, "
                f"{len(self._waiters)} waiting>")


class Barrier(_SyncPrimitive):
    """A reusable N-party barrier (generation-based)."""

    kind = "barrier"

    def __init__(self, kernel, parties, name=None):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self._register(kernel, name)
        self.parties = parties
        self._arrived = 0
        self._gate = self.env.event()

    def wait(self):
        """Event firing once ``parties`` threads have arrived."""
        self._record("wait")
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self._gate = self.env.event()
            gate.succeed()
        return gate

    def __repr__(self):
        return (f"<Barrier {self.name!r} "
                f"{self._arrived}/{self.parties} arrived>")


class MessageQueue(_SyncPrimitive):
    """A bounded FIFO channel between threads (IPC substitute)."""

    kind = "queue"

    def __init__(self, kernel, capacity=None, name=None):
        self._register(kernel, name)
        self._store = Store(kernel.env, capacity=capacity)

    def __len__(self):
        return len(self._store)

    def put(self, item):
        """Event firing once ``item`` has been enqueued."""
        self._record("put")
        return self._store.put(item)

    def get(self):
        """Event firing with the next item."""
        self._record("get")
        return self._store.get()

    def __repr__(self):
        return f"<MessageQueue {self.name!r} len={len(self._store)}>"


class CountdownLatch(_SyncPrimitive):
    """Fires an event after being counted down ``count`` times."""

    kind = "latch"

    def __init__(self, kernel, count, name=None):
        if count < 1:
            raise ValueError("count must be >= 1")
        self._register(kernel, name)
        self._remaining = count
        self.done = self.env.event()

    def count_down(self):
        self._record("count_down")
        if self._remaining <= 0:
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.done.succeed()

    def wait(self):
        self._record("wait")
        return self.done

    def __repr__(self):
        return f"<CountdownLatch {self.name!r} remaining={self._remaining}>"
