"""Processes, threads and the thread-body programming interface.

Application models express thread behaviour as generator functions
receiving a :class:`ThreadContext`::

    def worker(ctx):
        while True:
            item = yield ctx.wait(queue.get())
            yield ctx.cpu(8 * MS, WorkClass.FU_BOUND)

``ctx.cpu`` consumes CPU time through the scheduler (occupying a
logical CPU, subject to SMT contention and preemption and emitting
context-switch trace records); ``ctx.sleep`` / ``ctx.wait`` block off
the CPU.
"""

from enum import Enum
from heapq import heappop

from repro.os.work import WorkClass
from repro.sim.events import PENDING
from repro.sim.exceptions import Interrupt


class ThreadState(Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class _CpuRequest:
    __slots__ = ("amount", "work_class")

    def __init__(self, amount, work_class):
        if amount <= 0:
            raise ValueError(f"cpu amount must be positive, got {amount}")
        self.amount = int(amount)
        self.work_class = work_class


class _SleepRequest:
    __slots__ = ("duration",)

    def __init__(self, duration):
        if duration < 0:
            raise ValueError(f"negative sleep {duration}")
        self.duration = int(duration)


class _WaitRequest:
    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event


class ThreadContext:
    """The API surface handed to every thread body."""

    def __init__(self, thread):
        self._thread = thread
        self._env = thread.kernel.env

    @property
    def now(self):
        """Current simulation time in microseconds."""
        return self._env._now

    @property
    def thread(self):
        return self._thread

    @property
    def kernel(self):
        return self._thread.kernel

    def cpu(self, amount, work_class=WorkClass.BALANCED):
        """Consume ``amount`` µs of nominal CPU work."""
        return _CpuRequest(amount, work_class)

    def sleep(self, duration):
        """Block off-CPU for ``duration`` µs."""
        return _SleepRequest(duration)

    def wait(self, event):
        """Block until ``event`` fires; returns the event's value."""
        return _WaitRequest(event)


class Thread:
    """A schedulable thread belonging to an :class:`OsProcess`."""

    def __init__(self, kernel, process, tid, name, body, priority=0):
        self.kernel = kernel
        self.process = process
        self.tid = tid
        self.name = name
        self.body = body
        #: Scheduling priority (see scheduler.PRIORITY_*).
        self.priority = priority
        self.state = ThreadState.NEW
        #: Fires with the body's return value when the thread exits.
        self.joined = kernel.env.event()
        self._sim_process = None

    def start(self):
        """Begin executing the thread body."""
        if self._sim_process is not None:
            raise RuntimeError(f"thread {self.name!r} already started")
        self._sim_process = self.kernel.env.process(
            self._run(), name=f"{self.process.name}/{self.name}")
        return self

    def join(self):
        """Event that fires when this thread terminates."""
        return self.joined

    def interrupt(self, cause=None):
        """Deliver an :class:`~repro.sim.Interrupt` to the thread body."""
        if self._sim_process is None or not self._sim_process.is_alive:
            return
        self._sim_process.interrupt(cause)

    @property
    def is_alive(self):
        return self.state not in (ThreadState.NEW, ThreadState.TERMINATED)

    def _run(self):
        ctx = ThreadContext(self)
        generator = self.body(ctx)
        scheduler = self.kernel.scheduler
        env = self.kernel.env
        epoch = scheduler.epoch
        result = None
        try:
            request = next(generator)
            while True:
                try:
                    # Exact-type checks: the request classes are final
                    # by construction and ``type() is`` dispatches the
                    # per-yield hot loop faster than isinstance.
                    kind = type(request)
                    if kind is _CpuRequest:
                        yield from scheduler.run_burst(
                            self, request.amount, request.work_class)
                        value = None
                    elif kind is _SleepRequest:
                        self.state = ThreadState.SLEEPING
                        # Epoch fast path: an uncontended sleep advances
                        # this thread's virtual clock without an event
                        # (see Environment.advance for the equivalence).
                        if not (epoch and env.advance(request.duration)):
                            yield env.timeout(request.duration)
                        value = None
                    elif kind is _WaitRequest:
                        event = request.event
                        self.state = ThreadState.BLOCKED
                        # Epoch fast paths for waits that cannot block:
                        # an uncontended sync op hands back an already-
                        # triggered event whose processing would be the
                        # very next step — consume it synchronously
                        # (popping it from the queue) instead of parking
                        # the thread for one event round-trip.  Failed
                        # events always take the legacy path so throw/
                        # defuse semantics stay in one place.
                        if (epoch and event._ok
                                and event._value is not PENDING
                                and env._cb_pending == 0):
                            queue = env._queue
                            if (event.callbacks is None
                                    and (not queue
                                         or queue[0][0] > env._now)):
                                # Processed earlier: the legacy relay
                                # event would fire next with no other
                                # runnable work — skip it.
                                value = event._value
                            elif (event.callbacks == []
                                    and queue and queue[0][3] is event):
                                # Triggered, unprocessed, head of the
                                # queue, nobody else waiting: process
                                # it here, exactly as the loop would.
                                heappop(queue)
                                event.callbacks = None
                                value = event._value
                            else:
                                value = yield event
                        else:
                            value = yield event
                    else:
                        raise TypeError(
                            f"thread {self.name!r} yielded {request!r}; "
                            "expected ctx.cpu/ctx.sleep/ctx.wait")
                except Interrupt as interrupt:
                    request = generator.throw(interrupt)
                else:
                    request = generator.send(value)
        except StopIteration as stop:
            result = stop.value
        except Interrupt:
            # The body did not catch the interrupt: the thread is
            # killed (OsProcess.terminate semantics).
            result = None
        finally:
            self.state = ThreadState.TERMINATED
            self.process._on_thread_exit(self)
        self.joined.succeed(result)


class OsProcess:
    """A process: a named container of threads (one address space)."""

    def __init__(self, kernel, pid, name, image=None):
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.image = image or name
        self.threads = []
        self._next_tid = 1
        #: Fires when the last thread of the process exits.
        self.exited = kernel.env.event()
        self._live_threads = 0

    def spawn_thread(self, body, name=None, priority=0):
        """Create and start a thread running ``body(ctx)``.

        ``priority`` above zero marks latency-critical threads that the
        scheduler dispatches ahead of queued normal work.
        """
        tid = self.pid * 1000 + self._next_tid
        self._next_tid += 1
        thread = Thread(self.kernel, self, tid,
                        name or f"thread-{self._next_tid - 1}", body,
                        priority=priority)
        self.threads.append(thread)
        self._live_threads += 1
        thread.start()
        return thread

    def terminate(self, cause="terminated"):
        """Kill the process: interrupt every live thread.

        Thread bodies receive an :class:`~repro.sim.Interrupt`; bodies
        that do not catch it unwind immediately (the common case).
        Idempotent — terminating a dead process is a no-op.
        """
        for thread in self.threads:
            if thread.is_alive:
                thread.interrupt(cause)

    def _on_thread_exit(self, _thread):
        self._live_threads -= 1
        if self._live_threads == 0 and not self.exited.triggered:
            self.exited.succeed(self)

    def __repr__(self):
        return f"<OsProcess {self.name!r} pid={self.pid} threads={len(self.threads)}>"
