"""Classification of CPU work for the SMT contention model.

The paper's §V-C.2 explains SMT slowdowns via functional-unit
contention (L1-bound stalls rising 5.3% -> 10.7%) versus the benefit
of siblings prefetching shared data (LLC misses dropping).  Which
effect wins depends on the *kind* of work a thread performs, so every
CPU burst in the simulator carries a :class:`WorkClass`.
"""

from enum import Enum


class WorkClass(str, Enum):
    """What a CPU burst is bound on.

    * ``FU_BOUND`` — saturates functional units (video encode inner
      loops, hashing).  SMT siblings contend and combined throughput
      drops below a lone thread.
    * ``MEMORY_BOUND`` — stalls on DRAM; SMT hides latency well.
    * ``BALANCED`` — typical application code; modest SMT gain.
    * ``UI`` — bursty interactive work; SMT is nearly neutral.
    """

    FU_BOUND = "fu_bound"
    MEMORY_BOUND = "memory_bound"
    BALANCED = "balanced"
    UI = "ui"


#: Fallback combined-sibling throughput if a CpuSpec does not override.
DEFAULT_SMT_THROUGHPUT = {
    WorkClass.FU_BOUND: 0.94,
    WorkClass.MEMORY_BOUND: 1.38,
    WorkClass.BALANCED: 1.18,
    WorkClass.UI: 1.05,
}


def smt_pair_throughput(cpu_spec, work_class):
    """Combined throughput of two siblings on ``cpu_spec`` for a class.

    Returns a multiplier relative to one thread running alone on the
    physical core; each sibling then proceeds at half the combined rate.
    """
    table = cpu_spec.smt_throughput or DEFAULT_SMT_THROUGHPUT
    return table.get(work_class, DEFAULT_SMT_THROUGHPUT[work_class])
