"""Text renderers that regenerate the paper's tables and figures."""

from repro.reporting.figures import (
    fig2_series,
    fig3_series,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_timeseries_figure,
)
from repro.reporting.render import (
    bar,
    bar_chart,
    format_table,
    grouped_bar_chart,
    heat_cell,
    heat_row,
    sparkline,
)
from repro.reporting.tables import (
    render_failures,
    render_lint_findings,
    render_static_bounds,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "bar",
    "bar_chart",
    "fig2_series",
    "fig3_series",
    "format_table",
    "grouped_bar_chart",
    "heat_cell",
    "heat_row",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig8",
    "render_fig9",
    "render_failures",
    "render_lint_findings",
    "render_static_bounds",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_timeseries_figure",
    "sparkline",
]
