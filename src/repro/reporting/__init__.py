"""Text renderers that regenerate the paper's tables and figures."""

from repro.reporting.figures import (
    fig2_series,
    fig3_series,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_timeseries_figure,
)
from repro.reporting.render import (
    bar,
    bar_chart,
    format_table,
    grouped_bar_chart,
    heat_cell,
    heat_row,
    sparkline,
)
from repro.reporting.payloads import (
    SUITE_FORMAT,
    canonical_json_bytes,
    suite_payload,
)
from repro.reporting.tables import (
    render_dse_frontiers,
    render_failures,
    render_lint_findings,
    render_static_bounds,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "SUITE_FORMAT",
    "bar",
    "bar_chart",
    "canonical_json_bytes",
    "suite_payload",
    "fig2_series",
    "fig3_series",
    "format_table",
    "grouped_bar_chart",
    "heat_cell",
    "heat_row",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig8",
    "render_fig9",
    "render_dse_frontiers",
    "render_failures",
    "render_lint_findings",
    "render_static_bounds",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_timeseries_figure",
    "sparkline",
]
