"""Machine-readable exports of suite results: CSV and Markdown.

The text renderers in :mod:`repro.reporting.tables` target terminals;
these exports target spreadsheets and READMEs.
"""

import csv

from repro.apps import CATEGORIES
from repro.data import PAPER_TABLE2


def suite_to_csv(suite_result, path):
    """Write one row per application: measured vs paper values."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "app", "display_name", "category",
            "tlp_mean", "tlp_std", "tlp_paper",
            "gpu_mean", "gpu_std", "gpu_paper",
            "max_instantaneous", "gpu_capped",
        ])
        for category, names in CATEGORIES.items():
            for name in names:
                if name not in suite_result.results:
                    continue
                result = suite_result.results[name]
                paper_tlp, paper_gpu = PAPER_TABLE2[name]
                writer.writerow([
                    name, result.display_name, category.value,
                    f"{result.tlp.mean:.3f}", f"{result.tlp.std:.3f}",
                    paper_tlp,
                    f"{result.gpu_util.mean:.3f}",
                    f"{result.gpu_util.std:.3f}", paper_gpu,
                    result.max_instantaneous, result.gpu_capped,
                ])


def suite_to_markdown(suite_result):
    """Render the suite as a GitHub-flavoured Markdown table."""
    lines = [
        "| Category | Application | TLP | σ | paper | GPU % | σ | paper |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for category, names in CATEGORIES.items():
        for name in names:
            if name not in suite_result.results:
                continue
            result = suite_result.results[name]
            paper_tlp, paper_gpu = PAPER_TABLE2[name]
            gpu_text = f"{result.gpu_util.mean:.1f}"
            if result.gpu_capped:
                gpu_text = "\\*" + gpu_text
            lines.append(
                f"| {category.value} | {result.display_name} "
                f"| {result.tlp.mean:.1f} | {result.tlp.std:.2f} "
                f"| {paper_tlp} | {gpu_text} "
                f"| {result.gpu_util.std:.2f} | {paper_gpu} |")
    averages = suite_result.category_averages()
    lines.append("")
    lines.append("| Category | avg TLP | avg GPU % |")
    lines.append("|---|---|---|")
    for category, (tlp, gpu) in averages.items():
        lines.append(f"| {category.value} | {tlp:.2f} | {gpu:.2f} |")
    return "\n".join(lines)
