"""Renderers for the paper's figures (2-13) as text charts.

Each ``render_figN`` takes measured data (plus the historical datasets
where the figure compares against prior work) and returns a printable
string; the underlying series stay available to benches for asserting
the qualitative shape.
"""

from repro.data import FIG2_LINEAGES, FIG3_LINEAGES, historical_gpu, historical_tlp
from repro.reporting.render import bar_chart, format_table, grouped_bar_chart, sparkline


def fig2_series(measured_tlp):
    """Fig. 2 data: ``[(category, [(label, year, tlp), ...]), ...]``.

    ``measured_tlp`` maps 2018 registry keys to measured TLP values.
    """
    series = []
    for category, entries in FIG2_LINEAGES:
        points = []
        for label, year, source in entries:
            if year == 2018:
                value = measured_tlp[source]
            else:
                value = historical_tlp(source, year)
            points.append((label, year, value))
        series.append((category, points))
    return series


def render_fig2(measured_tlp):
    """Fig. 2: TLP for 2000 vs 2010 vs 2018."""
    groups = [
        (category, [(f"{label} [{year}]", value)
                    for label, year, value in points])
        for category, points in fig2_series(measured_tlp)
    ]
    return ("Fig. 2: TLP of desktop applications, 2000/2010/2018\n"
            + grouped_bar_chart(groups, value_format="{:5.1f}"))


def fig3_series(measured_gpu):
    """Fig. 3 data, same shape as :func:`fig2_series` (GPU util %)."""
    series = []
    for category, entries in FIG3_LINEAGES:
        points = []
        for label, year, source in entries:
            if year == 2018:
                value = measured_gpu[source]
            else:
                value = historical_gpu(source)
            points.append((label, year, value))
        series.append((category, points))
    return series


def render_fig3(measured_gpu):
    """Fig. 3: GPU utilization for 2010 vs 2018."""
    groups = [
        (category, [(f"{label} [{year}]", value)
                    for label, year, value in points])
        for category, points in fig3_series(measured_gpu)
    ]
    return ("Fig. 3: GPU utilization of desktop applications, 2010/2018\n"
            + grouped_bar_chart(groups, value_format="{:6.1f}"))


def render_fig4(scaling, ideal=(4, 8, 12)):
    """Fig. 4: TLP vs logical cores for the category leaders.

    ``scaling`` is ``{app_label: {count: tlp}}``.
    """
    counts = sorted(ideal)
    headers = ("Application",) + tuple(f"{c} LCPUs" for c in counts)
    rows = [("Ideal",) + tuple(f"{c:5.1f}" for c in counts)]
    for label in scaling:
        rows.append((label,) + tuple(
            f"{scaling[label][c]:5.2f}" for c in counts))
    return format_table(headers, rows,
                        title="Fig. 4: impact of core scaling on TLP "
                              "(SMT enabled)")


def render_timeseries_figure(title, series_by_config):
    """Figs. 5-7 & 13: labelled sparkline time series."""
    lines = [title]
    for label, series in series_by_config.items():
        lines.append(f"  {label}")
        lines.append(f"    max={series.maximum():6.2f} "
                     f"mean={series.mean():6.2f}")
        lines.append("    " + sparkline(series.values))
    return "\n".join(lines)


def render_fig8(grid, physical_cores=(2, 4, 6)):
    """Fig. 8: transcode rate + GPU util vs cores, SMT, GPU.

    ``grid`` maps ``(app, gpu_name, smt, cores)`` to
    ``(rate_fps, gpu_util)``.
    """
    headers = ("Series",) + tuple(f"{c} cores" for c in physical_cores)
    rate_rows, util_rows = [], []
    seen = sorted({key[:3] for key in grid})
    for app, gpu_name, smt in seen:
        label = f"{app}-{gpu_name}{'-SMT' if smt else ''}"
        rates, utils = [], []
        for cores in physical_cores:
            rate, util = grid[(app, gpu_name, smt, cores)]
            rates.append(f"{rate:5.1f}")
            utils.append(f"{util:5.1f}")
        rate_rows.append((label,) + tuple(rates))
        util_rows.append((label,) + tuple(utils))
    return "\n\n".join([
        format_table(headers, rate_rows,
                     title="Fig. 8a: transcode rate (FPS)"),
        format_table(headers, util_rows,
                     title="Fig. 8b: GPU utilization (%)"),
    ])


def render_fig9(results):
    """Fig. 9: Premiere Pro CUDA vs non-CUDA on both GPUs.

    ``results`` maps ``(gpu_name, cuda)`` to ``(gpu_util, tlp)``.
    """
    rows = [
        (gpu_name, "CUDA" if cuda else "non-CUDA",
         f"{util:6.2f}", f"{tlp:5.2f}")
        for (gpu_name, cuda), (util, tlp) in sorted(results.items())
    ]
    return format_table(("GPU", "Export mode", "GPU util %", "TLP"), rows,
                        title="Fig. 9: Premiere Pro export, CUDA vs "
                              "non-CUDA")


def render_fig10(results):
    """Fig. 10: GPU utilization, GTX 680 vs GTX 1080 Ti.

    ``results`` maps app label to ``{gpu_name: util}``.
    """
    lines = ["Fig. 10: GPU utilization on GTX 680 vs GTX 1080 Ti"]
    for label, utils in results.items():
        items = [(gpu, value) for gpu, value in utils.items()]
        lines.append(f"[{label}]")
        lines.append(bar_chart(items, value_format="{:6.1f}"))
    return "\n".join(lines)


def render_fig11(results):
    """Fig. 11: browser TLP and GPU utilization across the 4 tests.

    ``results`` maps ``(browser, test)`` to ``(tlp, gpu_util)``.
    """
    tests = sorted({test for _b, test in results})
    browsers = sorted({browser for browser, _t in results})
    headers = ("Browser",) + tuple(tests)
    tlp_rows = [(b,) + tuple(f"{results[(b, t)][0]:5.2f}" for t in tests)
                for b in browsers]
    gpu_rows = [(b,) + tuple(f"{results[(b, t)][1]:5.2f}" for t in tests)
                for b in browsers]
    return "\n\n".join([
        format_table(headers, tlp_rows, title="Fig. 11a: browsing TLP"),
        format_table(headers, gpu_rows,
                     title="Fig. 11b: browsing GPU utilization (%)"),
    ])


def render_fig12(results):
    """Fig. 12: VR TLP + GPU utilization across headsets.

    ``results`` maps ``(game, headset)`` to ``(tlp, gpu_util)``.
    """
    headsets = sorted({headset for _g, headset in results})
    games = sorted({game for game, _h in results})
    headers = ("Game",) + tuple(headsets)
    tlp_rows = [(g,) + tuple(f"{results[(g, h)][0]:5.2f}" for h in headsets)
                for g in games]
    gpu_rows = [(g,) + tuple(f"{results[(g, h)][1]:5.1f}" for h in headsets)
                for g in games]
    return "\n\n".join([
        format_table(headers, tlp_rows, title="Fig. 12a: VR gaming TLP"),
        format_table(headers, gpu_rows,
                     title="Fig. 12b: VR gaming GPU utilization (%)"),
    ])
