"""Canonical JSON payload builders shared by persistence and the service.

The sweep service's read path promises results *byte-identical* to the
CLI's ``--json`` files: a client that fetched ``GET /sweeps/{id}/result``
must be able to diff it against ``repro suite --json out.json`` and see
nothing.  Rather than asserting that identity test-by-test, both sides
render through the same payload builders and the same canonical encoder
here, so the identity holds by construction — a formatting change
cannot drift one consumer without dragging the other along.
"""

import json

#: Format tag of a persisted/served suite result document.
SUITE_FORMAT = "repro-suite-v1"


def canonical_json_bytes(payload):
    """The one true byte encoding of a JSON payload.

    ``indent=2, sort_keys=True`` matches what ``save_suite`` has always
    written, so files persisted by earlier versions diff clean against
    service responses for the same data.
    """
    return json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")


def suite_payload(suite_result, metadata=None):
    """The ``repro-suite-v1`` document of a suite result.

    Shared by :func:`repro.harness.persistence.save_suite` (writes it
    to disk) and the sweep service (serves it over HTTP).
    """
    from repro.harness.persistence import app_result_to_dict

    return {
        "format": SUITE_FORMAT,
        "metadata": metadata or {},
        "results": {name: app_result_to_dict(result)
                    for name, result in suite_result.results.items()},
        "failures": [failure.to_payload() for failure in
                     getattr(suite_result, "failures", ())],
    }
