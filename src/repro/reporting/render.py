"""Low-level text rendering helpers: tables, bars, heat maps."""

#: Shade ramp used for the Table II execution-time heat map.
_SHADES = " ░▒▓█"


def format_table(headers, rows, title=None):
    """Render an aligned text table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def heat_cell(fraction):
    """One heat-map character for a time fraction in [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    index = min(len(_SHADES) - 1, int(fraction * (len(_SHADES) - 1) + 0.9999)
                if fraction > 0 else 0)
    return _SHADES[index]


def heat_row(fractions):
    """The c0..c12 execution-time heat map strip of a Table II row."""
    return "".join(heat_cell(f) for f in fractions)


def bar(value, scale=1.0, width=40, fill="#"):
    """A horizontal ASCII bar for bar-chart figures."""
    length = int(round(min(value * scale, width)))
    return fill * max(0, length)


def bar_chart(items, max_width=40, value_format="{:6.1f}"):
    """Render ``(label, value)`` pairs as a horizontal bar chart."""
    if not items:
        return "(no data)"
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    scale = max_width / peak
    lines = []
    for label, value in items:
        lines.append(f"{label.ljust(label_width)} "
                     f"{value_format.format(value)} |{bar(value, scale)}")
    return "\n".join(lines)


def grouped_bar_chart(groups, max_width=40, value_format="{:6.1f}"):
    """Render ``(group, [(label, value), ...])`` groups."""
    blocks = []
    for group, items in groups:
        blocks.append(f"[{group}]")
        blocks.append(bar_chart(items, max_width=max_width,
                                value_format=value_format))
    return "\n".join(blocks)


def sparkline(values, height_levels=" .:-=+*#%@"):
    """A one-line sparkline for time series (Figs. 5-7, 13)."""
    if not values:
        return ""
    peak = max(values) or 1.0
    steps = len(height_levels) - 1
    return "".join(
        height_levels[min(steps, int(round(v / peak * steps)))]
        for v in values)
