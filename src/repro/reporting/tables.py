"""Renderers for the paper's tables (I, II, III)."""

from repro.apps import CATEGORIES, REGISTRY
from repro.data import PAPER_CATEGORY_AVERAGES, PAPER_TABLE2, PAPER_TABLE3
from repro.reporting.render import format_table, heat_row


def render_table1(machine):
    """Table I: specification of the benchmarking system."""
    rows = [
        ("CPU", f"{machine.cpu.name}, {machine.cpu.base_clock_ghz:.2f}-"
                f"{machine.cpu.turbo_clock_ghz:.2f} GHz, "
                f"{machine.cpu.physical_cores} cores / "
                f"{machine.cpu.logical_cpus} threads"),
        ("Graphics", f"{machine.gpu.name}, {machine.gpu.clock_mhz} MHz, "
                     f"{machine.gpu.cuda_cores} CUDA cores"),
        ("RAM", f"{machine.ram_gb} GB"),
        ("OS", machine.os_name),
    ]
    return format_table(("Component", "Specification"), rows,
                        title="Table I: benchmarking system")


def render_table2(suite_result):
    """Table II: heat map + TLP + GPU utilization for the whole suite."""
    headers = ("Category", "Application", "c0..c12", "TLP", "σ",
               "paper", "GPU%", "σ", "paper")
    rows = []
    for category, names in CATEGORIES.items():
        for name in names:
            if name not in suite_result.results:
                continue
            result = suite_result.results[name]
            paper_tlp, paper_gpu = PAPER_TABLE2[name]
            gpu_text = f"{result.gpu_util.mean:6.1f}"
            if result.gpu_capped:
                gpu_text = "*" + gpu_text.strip()
            display = result.display_name
            if getattr(result, "partial", False):
                display = "~" + display
            rows.append((
                category.value,
                display,
                heat_row(result.fractions),
                f"{result.tlp.mean:5.1f}",
                f"{result.tlp.std:4.2f}",
                f"{paper_tlp:5.1f}",
                gpu_text,
                f"{result.gpu_util.std:4.2f}",
                f"{paper_gpu:6.1f}",
            ))
    lines = [format_table(headers, rows,
                          title="Table II: application TLP and GPU "
                                "utilization (measured vs paper)")]
    lines.append("")
    lines.append("Per-category averages (measured vs paper):")
    for category, (tlp, gpu) in suite_result.category_averages().items():
        paper_tlp, paper_gpu = PAPER_CATEGORY_AVERAGES[category.value]
        lines.append(f"  {category.value:24s} TLP {tlp:5.2f} "
                     f"(paper {paper_tlp:4.1f})   GPU {gpu:6.2f}% "
                     f"(paper {paper_gpu:5.1f}%)")
    lines.append("")
    lines.append(f"Overall average TLP: "
                 f"{suite_result.overall_average_tlp():.2f} (paper 3.1)")
    above = suite_result.apps_with_tlp_above(4.0)
    lines.append(f"Applications with TLP > 4: {len(above)} of "
                 f"{len(suite_result.results)} (paper: 6 of 30): "
                 f"{', '.join(sorted(above))}")
    partial = [name for name, result in suite_result.results.items()
               if getattr(result, "partial", False)]
    if partial:
        lines.append(f"~ partial rows (salvaged traces or lost "
                     f"iterations): {', '.join(sorted(partial))}")
    return "\n".join(lines)


def render_failures(failures):
    """Quarantine report of a supervised sweep (RunFailure records)."""
    if not failures:
        return "supervisor: no quarantined runs"
    rows = [
        (failure.kind, failure.app, failure.seed, failure.attempts,
         failure.detail)
        for failure in failures
    ]
    counts = {}
    for failure in failures:
        counts[failure.kind] = counts.get(failure.kind, 0) + 1
    summary = ", ".join(f"{count} {kind}"
                        for kind, count in sorted(counts.items()))
    table = format_table(
        ("kind", "app", "seed", "attempts", "detail"), rows,
        title="Quarantined runs")
    return f"{table}\n\n{len(failures)} quarantined: {summary}"


def render_dse_frontiers(result, top=None):
    """Per-app Pareto frontiers of a DSE campaign (CampaignResult).

    Shows the campaign's simulation economy (how much of the grid was
    scored analytically), the equivalence-check verdict, then one
    frontier table per app — best Eq.-1 TLP first, energy-delay
    strictly improving down the list.  ``top`` truncates each table.
    """
    stats = result.stats
    lines = [
        f"DSE campaign: {stats.configs} configs x {stats.apps} apps = "
        f"{stats.grid_points} grid points, {stats.signatures} "
        f"trace-changing signatures",
        f"  simulated {stats.simulated_points} points "
        f"({stats.base_runs} base + {stats.equivalence_runs} "
        f"equivalence), scored {stats.analytic_fraction:.1%} "
        f"analytically, {stats.failed_runs} failed",
    ]
    if result.equivalence is not None:
        eq = result.equivalence
        lines.append(
            f"  equivalence: {'ok' if eq.ok else 'FAILED'} "
            f"({eq.samples} re-simulated samples, TLP "
            f"{'exact' if eq.tlp_exact else 'MISMATCH'}, max rel err "
            f"{eq.max_rel_err:.2e} vs rtol {eq.rtol:g})")
    headers = ("cfg", "machine", "LCPU", "nm", "DVFS", "TLP",
               "wall s", "energy J", "EDP J*s")
    for app in result.apps:
        frontier = result.frontiers.get(app, [])
        shown = frontier if top is None else frontier[:top]
        rows = [
            (score.config_index, score.machine_name,
             score.logical_cpus, score.tech_nm,
             f"{score.dvfs_ratio:.3f}", f"{score.tlp:6.2f}",
             f"{score.wall_s:.4f}", f"{score.energy_j:8.2f}",
             f"{score.edp_js:.4g}")
            for score in shown
        ]
        suffix = (f" (top {len(shown)} of {len(frontier)})"
                  if len(shown) < len(frontier) else
                  f" ({len(frontier)} points)")
        lines.append("")
        lines.append(format_table(
            headers, rows,
            title=f"{app}: Pareto frontier, TLP vs energy-delay"
                  f"{suffix}"))
    return "\n".join(lines)


def render_lint_findings(report):
    """Findings table for one ``repro lint`` run (StaticReport)."""
    findings = report.findings
    if not findings:
        return "lint: no findings"
    rows = [
        (finding.severity, finding.code, finding.app or "-",
         finding.location or "-", finding.message)
        for finding in findings
    ]
    counts = report.counts()
    summary = ", ".join(f"{counts[level]} {level}(s)"
                        for level in counts if counts[level])
    table = format_table(
        ("severity", "code", "app", "location", "message"), rows,
        title="Static analysis findings")
    return f"{table}\n\n{summary}"


def render_static_bounds(report):
    """Per-app structure + work/span bound table (StaticReport)."""
    rows = []
    for name, analysis in sorted(report.apps.items()):
        structure = analysis.structure
        work_span = analysis.work_span
        dynamic = sum(1 for t in structure.threads if t.dynamic)
        locks = sum(1 for s in structure.sync if s.kind == "lock")
        rows.append((
            name,
            len(structure.processes),
            f"{work_span.width}(+{dynamic}d)",
            locks,
            len(structure.sync),
            f"{work_span.work_us / 1000:.0f}",
            f"{work_span.span_us / 1000:.0f}",
            f"{work_span.parallelism:6.2f}",
            f"{work_span.tlp_bound:5.1f}",
            "yes" if structure.complete else "NO",
        ))
    table = format_table(
        ("application", "procs", "threads", "locks", "sync",
         "work ms", "span ms", "work/span", "TLP<=", "complete"),
        rows,
        title=f"Static structure and TLP bounds "
              f"({report.machine_name}, {report.logical_cpus} LCPUs)")
    return (f"{table}\n\n"
            "TLP<= is the enforced static ceiling min(LCPUs, threads); "
            "work/span is the structural parallelism estimate.")


def render_table3(rows):
    """Table III: WinX with and without CUDA/NVENC.

    ``rows`` is ``{logical_cores: {metric: value}}`` with metrics
    ``rate_cpu/rate_gpu/tlp_cpu/tlp_gpu/util_cpu/util_gpu``.
    """
    headers = ("Logical cores",
               "Rate noGPU (paper)", "Rate GPU (paper)",
               "TLP noGPU (paper)", "TLP GPU (paper)",
               "Util noGPU (paper)", "Util GPU (paper)")
    body = []
    for cores in sorted(rows):
        measured = rows[cores]
        paper = PAPER_TABLE3[cores]
        body.append((
            cores,
            f"{measured['rate_cpu']:5.1f} ({paper['rate_cpu']})",
            f"{measured['rate_gpu']:5.1f} ({paper['rate_gpu']})",
            f"{measured['tlp_cpu']:5.2f} ({paper['tlp_cpu']})",
            f"{measured['tlp_gpu']:5.2f} ({paper['tlp_gpu']})",
            f"{measured['util_cpu']:5.2f} ({paper['util_cpu']})",
            f"{measured['util_gpu']:5.2f} ({paper['util_gpu']})",
        ))
    return format_table(headers, body,
                        title="Table III: WinX transcode rate / TLP / GPU "
                              "utilization with and without CUDA/NVENC")
