"""Sweep service: the daemon face of the measurement harness.

``repro serve`` exposes the suite/golden/DSE machinery over HTTP —
submissions dedup on the sweep digest, results are content-addressed
(``ETag`` = digest) and byte-identical to ``repro suite --json``
output, and progress streams as NDJSON while the supervised executor
works through the grid.  See ``docs/architecture.md`` ("Sweep
service") for the full design.
"""

from repro.service.daemon import ENDPOINTS, SweepService
from repro.service.http import BadRequest, HttpRequest, HttpResponse
from repro.service.jobs import JobRunner, JobStore, SweepJob, SweepRequest
from repro.service.server import ServiceServer, serve
from repro.service.tables import TableStore

__all__ = [
    "BadRequest",
    "ENDPOINTS",
    "HttpRequest",
    "HttpResponse",
    "JobRunner",
    "JobStore",
    "ServiceServer",
    "serve",
    "SweepJob",
    "SweepRequest",
    "SweepService",
    "TableStore",
]
