"""Sweep service: the daemon face of the measurement harness.

``repro serve`` exposes the suite/golden/DSE machinery over HTTP —
submissions dedup on the sweep digest, results are content-addressed
(``ETag`` = digest) and byte-identical to ``repro suite --json``
output, and progress streams as NDJSON while the supervised executor
works through the grid.  A write-ahead job ledger makes the job index
durable across daemon crashes, a bounded multi-worker dispatcher pool
sheds overload with 429s, and a watchdog respawns crashed or hung
dispatchers.  See ``docs/architecture.md`` ("Sweep service" and
"Durable service") for the full design.
"""

from repro.service.daemon import CircuitBreaker, ENDPOINTS, SweepService
from repro.service.http import BadRequest, HttpRequest, HttpResponse
from repro.service.jobs import (
    DispatcherPool,
    JobRunner,
    JobStore,
    QueueFull,
    SweepJob,
    SweepRequest,
)
from repro.service.ledger import JobLedger, LedgerJob, replay
from repro.service.server import ServiceServer, serve
from repro.service.tables import TableStore

__all__ = [
    "BadRequest",
    "CircuitBreaker",
    "DispatcherPool",
    "ENDPOINTS",
    "HttpRequest",
    "HttpResponse",
    "JobLedger",
    "JobRunner",
    "JobStore",
    "LedgerJob",
    "QueueFull",
    "replay",
    "ServiceServer",
    "serve",
    "SweepJob",
    "SweepRequest",
    "SweepService",
    "TableStore",
]
