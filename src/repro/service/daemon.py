"""The sweep service: routing, dedup, durability, lifecycle.

:class:`SweepService` is the whole daemon minus the sockets — a
synchronous ``dispatch(HttpRequest) -> HttpResponse`` the asyncio
server calls from worker threads, and that tests can call directly
without binding a port.

Endpoints::

    GET  /                      service index
    GET  /healthz               liveness + job/queue/dispatcher counters
    GET  /readyz                admission: accepting new sweeps?
    POST /sweeps                submit a sweep (dedup by digest; 429
                                + Retry-After when the queue is full)
    GET  /sweeps                list jobs
    GET  /sweeps/{id}           job status + progress
    GET  /sweeps/{id}/result    final suite payload (ETag, immutable)
    GET  /sweeps/{id}/stream    NDJSON progress events (chunked)
    GET  /tables/goldens[/app]  committed golden fingerprints
    GET  /frontiers[/app]       committed DSE Pareto frontiers
    POST /goldens               re-record goldens (409 when busy)
    POST /shutdown              drain (bounded) in-flight jobs, stop

Durability: with a ``ledger``, every job transition is written ahead
to a fsynced JSONL file; on boot the ledger replays — finished jobs
re-resolve through the content-addressed result cache (zero
simulation, byte-identical payloads), interrupted ones re-enqueue and
complete, re-simulating only grid points that never finished.

Overload: the dispatcher queue is bounded (429 + ``Retry-After`` at
capacity, ``/readyz`` flips to 503) and a circuit breaker watches for
repeated pool-worker crash quarantines, degrading new submissions to
the serial in-process backend until the pool proves healthy again.

Cache discipline: a sweep result's identity *is* its digest (the grid
is seed-determined), so ``/sweeps/{id}/result`` is immutable and
served with a far-future ``Cache-Control``; the golden tables can be
mutated, so they revalidate via ``ETag`` each time.
"""

import json
import logging
import re
import threading
import time

from repro.harness.cache import ResultCache, spec_key
from repro.harness.supervisor import SupervisedExecutor, sweep_digest
from repro.service.http import (
    BadRequest,
    HttpResponse,
    error_response,
    json_response,
)
from repro.service.jobs import (
    DispatcherPool,
    JobStore,
    QueueFull,
    SweepJob,
    SweepRequest,
)
from repro.service.ledger import JobLedger, replay
from repro.service.tables import TableStore

log = logging.getLogger("repro.service")

#: Immutable content-addressed results: cache forever.
IMMUTABLE = "public, max-age=31536000, immutable"
#: Mutable tables: reuse only after an ETag revalidation.
REVALIDATE = "public, no-cache"

_SWEEP = re.compile(r"^/sweeps/([0-9a-f]{8,64})$")
_SWEEP_RESULT = re.compile(r"^/sweeps/([0-9a-f]{8,64})/result$")
_SWEEP_STREAM = re.compile(r"^/sweeps/([0-9a-f]{8,64})/stream$")
_TABLES = re.compile(r"^/tables/goldens(?:/([A-Za-z0-9_-]+))?$")
_FRONTIERS = re.compile(r"^/frontiers(?:/([A-Za-z0-9_-]+))?$")

ENDPOINTS = {
    "POST /sweeps": "submit a sweep (429 + Retry-After at capacity)",
    "GET /sweeps": "list submitted sweeps",
    "GET /sweeps/{id}": "job status and progress",
    "GET /sweeps/{id}/result": "final suite payload (ETag, immutable)",
    "GET /sweeps/{id}/stream": "NDJSON progress events",
    "GET /healthz": "liveness, job/queue/dispatcher counters",
    "GET /readyz": "admission: 200 accepting, 503 saturated/draining",
    "GET /tables/goldens[/{app}]": "committed golden fingerprints",
    "GET /frontiers[/{app}]": "committed DSE Pareto frontiers",
    "POST /goldens": "re-record golden fingerprints",
    "POST /shutdown": "drain in-flight jobs (bounded), then stop",
}


class CircuitBreaker:
    """Degrade to the serial backend after repeated crash quarantines.

    ``threshold`` consecutive jobs carrying ``crash`` quarantines trip
    the breaker: for ``cooldown_s`` every new submission builds a
    serial in-process executor (a crashing worker *pool* — OOM killer,
    a bad libc, cgroup limits — usually keeps crashing; in-process
    execution trades parallelism for progress).  After the cooldown
    the breaker goes half-open: the next submission tries the pool
    again, and its outcome closes or re-trips the breaker.
    """

    def __init__(self, threshold=3, cooldown_s=60.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.tripped = 0        # times the breaker opened (monotonic)
        self._crashes = 0
        self._opened_at = None
        self._lock = threading.Lock()

    def record_crash(self):
        with self._lock:
            self._crashes += 1
            if self._crashes >= self.threshold:
                if self._opened_at is None:
                    self.tripped += 1
                self._opened_at = time.monotonic()

    def record_ok(self):
        with self._lock:
            self._crashes = 0
            self._opened_at = None

    def degraded(self):
        """True while new submissions should avoid the worker pool."""
        with self._lock:
            if self._opened_at is None:
                return False
            return time.monotonic() - self._opened_at < self.cooldown_s

    def state(self):
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at < self.cooldown_s:
                return "open"
            return "half-open"

    def to_payload(self):
        return {"state": self.state(),
                "consecutive_crashes": self._crashes,
                "threshold": self.threshold,
                "tripped": self.tripped}


class SweepService:
    """Routing + durable job lifecycle over the shared harness machinery.

    Executor configuration (``jobs``/``cache``/``retries``/
    ``deadline_s``/``chunk``) is stored, not resolved: every submission
    builds a *fresh* :class:`SupervisedExecutor` and asks it for its
    backend then, so the auto-mode CPU clamp tracks the machine the
    daemon runs on now — not the one it started on.

    ``ledger`` makes the job index durable (see the module docstring);
    it implies a result cache (``<ledger>.cache`` when none is given),
    because a ledger can say *that* a sweep finished but only the
    content-addressed cache can restore *what* it produced.
    """

    def __init__(self, jobs=0, cache=None, retries=0, deadline_s=None,
                 chunk=1, golden_path=None, dse_path=None,
                 ledger=None, job_workers=1, max_queue=None,
                 job_ttl_s=None, drain_s=60.0, hang_s=None,
                 breaker_threshold=3, breaker_cooldown_s=60.0):
        self.jobs = jobs
        if cache is None and ledger is not None:
            cache = str(ledger) + ".cache"
        self.cache_dir = str(cache) if cache is not None else None
        self.retries = retries
        self.deadline_s = deadline_s
        self.chunk = chunk
        self.drain_s = drain_s
        self.store = JobStore(ttl_s=job_ttl_s)
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown_s=breaker_cooldown_s)
        self.runner = DispatcherPool(workers=job_workers,
                                     max_queue=max_queue,
                                     hang_s=hang_s,
                                     observer=self._observe_job)
        self.tables = TableStore(golden_path=golden_path,
                                 dse_path=dse_path)
        self.state = "running"
        self.on_stopped = None
        self.recovered = {"finished": 0, "interrupted": 0}
        self.rejected = 0       # submissions refused with 429
        self._lock = threading.Lock()
        self._ledger = None
        if ledger is not None:
            replayed = replay(ledger)
            self._ledger = JobLedger(ledger).open()
            self._recover(replayed)

    def _make_executor(self):
        cache = (ResultCache(self.cache_dir)
                 if self.cache_dir is not None else None)
        jobs = self.jobs
        if self.breaker.degraded():
            jobs = None         # serial in-process backend
        return SupervisedExecutor(jobs=jobs, cache=cache,
                                  retries=self.retries,
                                  deadline_s=self.deadline_s,
                                  chunk=self.chunk)

    def close(self):
        self.runner.close()
        if self._ledger is not None:
            self._ledger.close()

    # -- durability ----------------------------------------------------

    def _observe_job(self, event, job):
        """Dispatcher transition hook: write-ahead ledger + breaker."""
        if self._ledger is not None:
            if event == "started":
                self._ledger.record_started(job.id)
            elif event == "finished":
                self._ledger.record_finished(
                    job.id, executed=job.executed,
                    failures=[f.to_payload() for f in job.failures])
            elif event == "failed":
                self._ledger.record_failed(job.id,
                                           job.error or "unknown error")
        if event in ("finished", "failed"):
            if any(f.kind == "crash" for f in job.failures):
                self.breaker.record_crash()
            elif event == "finished":
                self.breaker.record_ok()

    def _recover(self, replayed):
        """Re-admit every unresolved ledger job on daemon boot.

        Finished jobs re-enqueue too: their grid points live in the
        result cache, so they re-resolve without one simulation and
        their result pointers (digest -> payload bytes) are restored.
        ``failed`` jobs stay failed — resubmission is the retry.
        A record that no longer validates (apps renamed, old format)
        is logged and skipped; recovery never takes the daemon down.
        """
        for entry in replayed:
            if entry.state == "failed":
                continue
            try:
                sweep = SweepRequest.from_payload(entry.request)
                job = self._admit(sweep, force=True)
            except (BadRequest, QueueFull) as exc:
                log.warning("ledger job %s not recoverable: %s",
                            entry.id[:12], exc)
                continue
            kind = "finished" if entry.state == "finished" else "interrupted"
            job.recovered = kind
            self.recovered[kind] += 1
        if any(self.recovered.values()):
            log.info("ledger replay: %d finished, %d interrupted job(s) "
                     "re-admitted", self.recovered["finished"],
                     self.recovered["interrupted"])

    def _admit(self, sweep, force=False):
        """Build, record and enqueue one sweep job (dedup-aware)."""
        spans, specs = sweep.build()
        digest = sweep_digest([spec_key(spec) for spec in specs])
        with self._lock:
            job = self.store.dedup(digest)
            if job is not None:
                return job
            executor = self._make_executor()
            job = SweepJob(sweep, digest, spans, specs, executor,
                           backend=executor.planned_backend(len(specs)))
            if self._ledger is not None:
                self._ledger.record_submitted(digest, sweep.to_payload())
            self.store.add(job)
            try:
                self.runner.submit(job, force=force)
            except QueueFull:
                # Roll the admission back: the 429'd job must neither
                # dedup future submissions nor resurrect from the
                # ledger on restart.
                self.store.discard(digest)
                if self._ledger is not None:
                    self._ledger.record_failed(
                        digest, "rejected: job queue at capacity")
                raise
        return job

    # -- dispatch ------------------------------------------------------

    def dispatch(self, request):
        """Route one request; never raises."""
        try:
            return self._route(request)
        except BadRequest as exc:
            return error_response(400, str(exc))
        except Exception as exc:        # pragma: no cover - backstop
            return error_response(500, f"{type(exc).__name__}: {exc}")

    def _route(self, request):
        path, method = request.path, request.method
        if path == "/":
            return self._get_only(method) or self._index()
        if path == "/healthz":
            return self._get_only(method) or self._health()
        if path == "/readyz":
            return self._get_only(method) or self._ready()
        if path == "/sweeps":
            if method == "POST":
                return self._submit(request)
            return self._get_only(method) or self._list_jobs()
        match = _SWEEP_RESULT.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._result, request)
        match = _SWEEP_STREAM.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._stream_response)
        match = _SWEEP.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._status)
        match = _TABLES.match(path)
        if match:
            return self._get_only(method) or self._table(
                request, self.tables.goldens_body, match.group(1))
        match = _FRONTIERS.match(path)
        if match:
            return self._get_only(method) or self._table(
                request, self.tables.frontiers_body, match.group(1))
        if path == "/goldens":
            if method != "POST":
                return error_response(405, "use POST /goldens")
            return self._update_goldens(request)
        if path == "/shutdown":
            if method != "POST":
                return error_response(405, "use POST /shutdown")
            return self._shutdown(request)
        return error_response(404, f"no such endpoint: {path}")

    @staticmethod
    def _get_only(method):
        if method not in ("GET", "HEAD"):
            return error_response(405, "read-only endpoint; use GET")
        return None

    # -- handlers ------------------------------------------------------

    def _index(self):
        return json_response({
            "service": "repro-sweeps",
            "state": self.state,
            "endpoints": ENDPOINTS,
        })

    def _health(self):
        """Liveness: answers as long as the process serves requests."""
        jobs = self.store.all()
        runner = self.runner
        return json_response({
            "state": self.state,
            "jobs": {
                state: sum(1 for j in jobs if j.state == state)
                for state in ("queued", "running", "done", "failed")
            },
            "queue": {
                "depth": runner.queue_depth(),
                "max": runner.max_queue,
                "workers": len(runner._workers),
                "rejected": self.rejected,
            },
            "dispatchers": {
                "crashed": runner.crashed,
                "hung": runner.hung,
                "respawned": runner.respawned,
            },
            "evicted_jobs": self.store.evicted,
            "recovered": dict(self.recovered),
            "circuit": self.breaker.to_payload(),
        })

    def _ready(self):
        """Admission: distinguishes *accepting* from merely *alive*."""
        if self.state != "running":
            return error_response(503, "service is not accepting sweeps",
                                  ready=False, state=self.state)
        if self.runner.saturated():
            return json_response(
                {"ready": False, "state": self.state,
                 "reason": "dispatcher queue at capacity"},
                status=503,
                headers={"Retry-After": str(self._retry_after())})
        return json_response({"ready": True, "state": self.state})

    def _retry_after(self):
        """Seconds a 429/503 client should wait before retrying —
        crude but honest: one queue slot per second, clamped."""
        return max(1, min(60, self.runner.queue_depth()))

    def _submit(self, request):
        if self.state != "running":
            return error_response(
                503, "service is draining; not accepting new sweeps",
                state=self.state)
        sweep = SweepRequest.from_payload(request.json())
        try:
            job = self._admit(sweep)
        except QueueFull as exc:
            self.rejected += 1
            return json_response(
                {"error": str(exc), "state": self.state},
                status=429,
                headers={"Retry-After": str(self._retry_after())})
        deduplicated = job.request is not sweep
        return json_response(
            self._submission_payload(job, deduplicated=deduplicated),
            status=200 if deduplicated else 202)

    @staticmethod
    def _submission_payload(job, deduplicated):
        return {
            "id": job.id,
            "state": job.state,
            "backend": job.backend,
            "total_runs": len(job.specs),
            "deduplicated": deduplicated,
            "links": {
                "status": f"/sweeps/{job.id}",
                "result": f"/sweeps/{job.id}/result",
                "stream": f"/sweeps/{job.id}/stream",
            },
        }

    def _list_jobs(self):
        return json_response({
            "jobs": [job.status_payload() for job in self.store.all()],
        })

    def _job(self, job_id, handler, *args):
        job = self.store.find(job_id)
        if job is None:
            return error_response(404, f"no such sweep: {job_id}")
        return handler(job, *args)

    @staticmethod
    def _status(job):
        return json_response(job.status_payload())

    @staticmethod
    def _result(job, request):
        if job.state == "failed":
            return error_response(500, job.error or "sweep failed")
        if job.state != "done":
            return json_response(job.status_payload(), status=202)
        headers = {
            "ETag": job.etag(),
            "Cache-Control": IMMUTABLE,
            "Content-Type": "application/json; charset=utf-8",
        }
        if request.if_none_match() == job.etag():
            return HttpResponse(status=304, headers=headers)
        return HttpResponse(status=200, body=job.result_bytes,
                            headers=headers)

    def _stream_response(self, job):
        return HttpResponse(
            status=200, stream=self._stream(job),
            headers={"Content-Type": "application/x-ndjson"})

    @staticmethod
    def _stream(job):
        seen = 0
        while True:
            events, exhausted = job.wait_events(seen, timeout=1.0)
            for event in events:
                # One compact NDJSON line per event (the canonical
                # encoder is indented; streams want line-framing).
                yield (json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n"
                       ).encode("utf-8")
            seen += len(events)
            if exhausted:
                return

    def _table(self, request, body_fn, app):
        entry = body_fn(app)
        if entry is None:
            what = f"app {app!r}" if app else "table file"
            return error_response(404, f"no data for {what}")
        etag, body = entry
        headers = {
            "ETag": etag,
            "Cache-Control": REVALIDATE,
            "Content-Type": "application/json; charset=utf-8",
        }
        if request.if_none_match() == etag:
            return HttpResponse(status=304, headers=headers)
        return HttpResponse(status=200, body=body, headers=headers)

    def _update_goldens(self, request):
        payload = request.json()
        apps = payload.get("apps")
        if not isinstance(apps, list) or not apps:
            raise BadRequest("'apps' must be a non-empty list of "
                             "registry keys")
        from repro.apps import REGISTRY

        bad = [a for a in apps if a not in REGISTRY]
        if bad:
            raise BadRequest(f"unknown applications: "
                             f"{', '.join(map(str, bad))}")
        if not self.tables.mutation_lock.acquire(blocking=False):
            return error_response(
                409, "a goldens update is already in progress; "
                     "retry when it completes")
        try:
            summary = self.tables.update_goldens(apps)
        finally:
            self.tables.mutation_lock.release()
        return json_response(summary)

    def _shutdown(self, request):
        drain_s = self.drain_s
        payload = request.json()
        if "drain_s" in payload:
            value = payload["drain_s"]
            if not isinstance(value, (int, float)) or value < 0:
                raise BadRequest("'drain_s' must be a number >= 0")
            drain_s = float(value)
        with self._lock:
            if self.state == "running":
                self.state = "draining"
                threading.Thread(target=self._drain_and_stop,
                                 args=(drain_s,),
                                 daemon=True,
                                 name="sweep-drain").start()
        return json_response({"state": self.state, "drain_s": drain_s},
                             status=202)

    def _drain_and_stop(self, drain_s):
        drained = self.runner.drain(timeout=drain_s)
        if not drained:
            # The drain deadline expired on a wedged or long job: fail
            # everything still in flight as `deadline` quarantines so
            # clients' streams terminate, then stop anyway.
            for job in self.store.all():
                if job.state in ("queued", "running"):
                    if job.fail_quarantined(
                            "deadline",
                            f"shutdown drain deadline ({drain_s:g}s) "
                            f"expired before this sweep finished"):
                        self._observe_job("failed", job)
            self.runner.abandon_active()
            log.warning("drain deadline (%gs) expired; in-flight jobs "
                        "failed as deadline quarantines", drain_s)
        self.state = "stopped"
        callback = self.on_stopped
        if callback is not None:
            callback()
