"""The sweep service: routing, dedup, lifecycle.

:class:`SweepService` is the whole daemon minus the sockets — a
synchronous ``dispatch(HttpRequest) -> HttpResponse`` the asyncio
server calls from worker threads, and that tests can call directly
without binding a port.

Endpoints::

    GET  /                      service index
    GET  /healthz               liveness + job counts
    POST /sweeps                submit a sweep (dedup by digest)
    GET  /sweeps                list jobs
    GET  /sweeps/{id}           job status + progress
    GET  /sweeps/{id}/result    final suite payload (ETag, immutable)
    GET  /sweeps/{id}/stream    NDJSON progress events (chunked)
    GET  /tables/goldens[/app]  committed golden fingerprints
    GET  /frontiers[/app]       committed DSE Pareto frontiers
    POST /goldens               re-record goldens (409 when busy)
    POST /shutdown              drain in-flight jobs, then stop

Cache discipline: a sweep result's identity *is* its digest (the grid
is seed-determined), so ``/sweeps/{id}/result`` is immutable and
served with a far-future ``Cache-Control``; the golden tables can be
mutated, so they revalidate via ``ETag`` each time.
"""

import json
import re
import threading

from repro.harness.cache import ResultCache, spec_key
from repro.harness.supervisor import SupervisedExecutor, sweep_digest
from repro.service.http import (
    BadRequest,
    HttpResponse,
    error_response,
    json_response,
)
from repro.service.jobs import JobRunner, JobStore, SweepJob, SweepRequest
from repro.service.tables import TableStore

#: Immutable content-addressed results: cache forever.
IMMUTABLE = "public, max-age=31536000, immutable"
#: Mutable tables: reuse only after an ETag revalidation.
REVALIDATE = "public, no-cache"

_SWEEP = re.compile(r"^/sweeps/([0-9a-f]{8,64})$")
_SWEEP_RESULT = re.compile(r"^/sweeps/([0-9a-f]{8,64})/result$")
_SWEEP_STREAM = re.compile(r"^/sweeps/([0-9a-f]{8,64})/stream$")
_TABLES = re.compile(r"^/tables/goldens(?:/([A-Za-z0-9_-]+))?$")
_FRONTIERS = re.compile(r"^/frontiers(?:/([A-Za-z0-9_-]+))?$")

ENDPOINTS = {
    "POST /sweeps": "submit a sweep (apps x machine x config)",
    "GET /sweeps": "list submitted sweeps",
    "GET /sweeps/{id}": "job status and progress",
    "GET /sweeps/{id}/result": "final suite payload (ETag, immutable)",
    "GET /sweeps/{id}/stream": "NDJSON progress events",
    "GET /tables/goldens[/{app}]": "committed golden fingerprints",
    "GET /frontiers[/{app}]": "committed DSE Pareto frontiers",
    "POST /goldens": "re-record golden fingerprints",
    "POST /shutdown": "drain in-flight jobs, then stop",
}


class SweepService:
    """Routing + job lifecycle over the shared harness machinery.

    Executor configuration (``jobs``/``cache``/``retries``/
    ``deadline_s``/``chunk``) is stored, not resolved: every submission
    builds a *fresh* :class:`SupervisedExecutor` and asks it for its
    backend then, so the auto-mode CPU clamp tracks the machine the
    daemon runs on now — not the one it started on.
    """

    def __init__(self, jobs=0, cache=None, retries=0, deadline_s=None,
                 chunk=1, golden_path=None, dse_path=None):
        self.jobs = jobs
        self.cache_dir = str(cache) if cache is not None else None
        self.retries = retries
        self.deadline_s = deadline_s
        self.chunk = chunk
        self.store = JobStore()
        self.runner = JobRunner()
        self.tables = TableStore(golden_path=golden_path,
                                 dse_path=dse_path)
        self.state = "running"
        self.on_stopped = None
        self._lock = threading.Lock()

    def _make_executor(self):
        cache = (ResultCache(self.cache_dir)
                 if self.cache_dir is not None else None)
        return SupervisedExecutor(jobs=self.jobs, cache=cache,
                                  retries=self.retries,
                                  deadline_s=self.deadline_s,
                                  chunk=self.chunk)

    def close(self):
        self.runner.close()

    # -- dispatch ------------------------------------------------------

    def dispatch(self, request):
        """Route one request; never raises."""
        try:
            return self._route(request)
        except BadRequest as exc:
            return error_response(400, str(exc))
        except Exception as exc:        # pragma: no cover - backstop
            return error_response(500, f"{type(exc).__name__}: {exc}")

    def _route(self, request):
        path, method = request.path, request.method
        if path == "/":
            return self._get_only(method) or self._index()
        if path == "/healthz":
            return self._get_only(method) or self._health()
        if path == "/sweeps":
            if method == "POST":
                return self._submit(request)
            return self._get_only(method) or self._list_jobs()
        match = _SWEEP_RESULT.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._result, request)
        match = _SWEEP_STREAM.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._stream_response)
        match = _SWEEP.match(path)
        if match:
            return self._get_only(method) \
                or self._job(match.group(1), self._status)
        match = _TABLES.match(path)
        if match:
            return self._get_only(method) or self._table(
                request, self.tables.goldens_body, match.group(1))
        match = _FRONTIERS.match(path)
        if match:
            return self._get_only(method) or self._table(
                request, self.tables.frontiers_body, match.group(1))
        if path == "/goldens":
            if method != "POST":
                return error_response(405, "use POST /goldens")
            return self._update_goldens(request)
        if path == "/shutdown":
            if method != "POST":
                return error_response(405, "use POST /shutdown")
            return self._shutdown()
        return error_response(404, f"no such endpoint: {path}")

    @staticmethod
    def _get_only(method):
        if method not in ("GET", "HEAD"):
            return error_response(405, "read-only endpoint; use GET")
        return None

    # -- handlers ------------------------------------------------------

    def _index(self):
        return json_response({
            "service": "repro-sweeps",
            "state": self.state,
            "endpoints": ENDPOINTS,
        })

    def _health(self):
        jobs = self.store.all()
        return json_response({
            "state": self.state,
            "jobs": {
                state: sum(1 for j in jobs if j.state == state)
                for state in ("queued", "running", "done", "failed")
            },
        })

    def _submit(self, request):
        if self.state != "running":
            return error_response(
                503, "service is draining; not accepting new sweeps",
                state=self.state)
        sweep = SweepRequest.from_payload(request.json())
        spans, specs = sweep.build()
        digest = sweep_digest([spec_key(spec) for spec in specs])
        with self._lock:
            job = self.store.dedup(digest)
            if job is not None:
                return json_response(
                    self._submission_payload(job, deduplicated=True))
            executor = self._make_executor()
            job = SweepJob(sweep, digest, spans, specs, executor,
                           backend=executor.planned_backend(len(specs)))
            self.store.add(job)
            self.runner.submit(job)
        return json_response(
            self._submission_payload(job, deduplicated=False), status=202)

    @staticmethod
    def _submission_payload(job, deduplicated):
        return {
            "id": job.id,
            "state": job.state,
            "backend": job.backend,
            "total_runs": len(job.specs),
            "deduplicated": deduplicated,
            "links": {
                "status": f"/sweeps/{job.id}",
                "result": f"/sweeps/{job.id}/result",
                "stream": f"/sweeps/{job.id}/stream",
            },
        }

    def _list_jobs(self):
        return json_response({
            "jobs": [job.status_payload() for job in self.store.all()],
        })

    def _job(self, job_id, handler, *args):
        job = self.store.find(job_id)
        if job is None:
            return error_response(404, f"no such sweep: {job_id}")
        return handler(job, *args)

    @staticmethod
    def _status(job):
        return json_response(job.status_payload())

    @staticmethod
    def _result(job, request):
        if job.state == "failed":
            return error_response(500, job.error or "sweep failed")
        if job.state != "done":
            return json_response(job.status_payload(), status=202)
        headers = {
            "ETag": job.etag(),
            "Cache-Control": IMMUTABLE,
            "Content-Type": "application/json; charset=utf-8",
        }
        if request.if_none_match() == job.etag():
            return HttpResponse(status=304, headers=headers)
        return HttpResponse(status=200, body=job.result_bytes,
                            headers=headers)

    def _stream_response(self, job):
        return HttpResponse(
            status=200, stream=self._stream(job),
            headers={"Content-Type": "application/x-ndjson"})

    @staticmethod
    def _stream(job):
        seen = 0
        while True:
            events, exhausted = job.wait_events(seen, timeout=1.0)
            for event in events:
                # One compact NDJSON line per event (the canonical
                # encoder is indented; streams want line-framing).
                yield (json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n"
                       ).encode("utf-8")
            seen += len(events)
            if exhausted:
                return

    def _table(self, request, body_fn, app):
        entry = body_fn(app)
        if entry is None:
            what = f"app {app!r}" if app else "table file"
            return error_response(404, f"no data for {what}")
        etag, body = entry
        headers = {
            "ETag": etag,
            "Cache-Control": REVALIDATE,
            "Content-Type": "application/json; charset=utf-8",
        }
        if request.if_none_match() == etag:
            return HttpResponse(status=304, headers=headers)
        return HttpResponse(status=200, body=body, headers=headers)

    def _update_goldens(self, request):
        payload = request.json()
        apps = payload.get("apps")
        if not isinstance(apps, list) or not apps:
            raise BadRequest("'apps' must be a non-empty list of "
                             "registry keys")
        from repro.apps import REGISTRY

        bad = [a for a in apps if a not in REGISTRY]
        if bad:
            raise BadRequest(f"unknown applications: "
                             f"{', '.join(map(str, bad))}")
        if not self.tables.mutation_lock.acquire(blocking=False):
            return error_response(
                409, "a goldens update is already in progress; "
                     "retry when it completes")
        try:
            summary = self.tables.update_goldens(apps)
        finally:
            self.tables.mutation_lock.release()
        return json_response(summary)

    def _shutdown(self):
        with self._lock:
            if self.state == "running":
                self.state = "draining"
                threading.Thread(target=self._drain_and_stop,
                                 daemon=True,
                                 name="sweep-drain").start()
        return json_response({"state": self.state}, status=202)

    def _drain_and_stop(self):
        self.runner.drain()
        self.state = "stopped"
        callback = self.on_stopped
        if callback is not None:
            callback()
