"""Minimal HTTP/1.1 framing over asyncio streams.

The daemon deliberately speaks *just enough* HTTP/1.1 with the stdlib
only — request-line + headers + ``Content-Length`` bodies in,
fixed-length or chunked responses out, keep-alive connections — so the
service layer stays importable anywhere the simulator is (the same
no-heavy-deps rule as the rest of the repo).  Everything here is plain
data and pure functions; the asyncio plumbing that drives it lives in
:mod:`repro.service.server`, and the handlers it feeds are synchronous
(:meth:`repro.service.daemon.SweepService.dispatch`), which keeps the
whole routing surface unit-testable without a socket.
"""

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bound on one request's head (request line + headers).  This is
#: also the asyncio stream reader limit, so ``readuntil`` enforces it.
MAX_HEAD_BYTES = 64 * 1024
#: Upper bound on one request body (sweep submissions are small JSON).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """The request could not be parsed or failed validation (-> 400)."""


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str                 # raw request target, e.g. /sweeps?x=1
    path: str                   # decoded path component
    query: dict                 # single-valued query parameters
    headers: dict               # lower-cased header names
    body: bytes = b""

    def json(self):
        """The body as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def if_none_match(self):
        """The ``If-None-Match`` validator, or ``None``."""
        return self.headers.get("if-none-match")


@dataclass
class HttpResponse:
    """One response: a fixed body, or a ``stream`` of chunks.

    ``stream`` is an iterator of ``bytes`` — when set, the server ships
    it with chunked transfer encoding as chunks become available (the
    progress-streaming read path), and ``body`` is ignored.
    """

    status: int
    body: bytes = b""
    headers: dict = field(default_factory=dict)
    stream: object = None


def json_response(payload, status=200, headers=None):
    """A canonical-JSON response (the service's default shape)."""
    from repro.reporting.payloads import canonical_json_bytes

    merged = {"Content-Type": "application/json; charset=utf-8"}
    if headers:
        merged.update(headers)
    return HttpResponse(status=status, body=canonical_json_bytes(payload),
                        headers=merged)


def error_response(status, message, **extra):
    """A JSON error body: ``{"error": message, ...}``."""
    payload = {"error": message}
    payload.update(extra)
    return json_response(payload, status=status)


def parse_head(head):
    """Parse a request head blob into ``(method, target, headers)``."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:          # pragma: no cover - latin-1 total
        raise BadRequest("undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


async def read_request(reader):
    """Read one request off an asyncio stream.

    Returns ``None`` on a clean EOF between requests (the client hung
    up a keep-alive connection); raises :class:`BadRequest` for
    anything unparsable or over the size limits.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request head")
    except asyncio.LimitOverrunError:
        raise BadRequest(f"request head over {MAX_HEAD_BYTES} bytes")
    method, target, headers = parse_head(head[:-4])
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise BadRequest("malformed Content-Length")
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequest(f"request body over {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated request body")
    split = urlsplit(target)
    return HttpRequest(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def render_head(response, chunked=False, keep_alive=True):
    """Serialize the status line + headers of ``response``."""
    headers = dict(response.headers)
    if chunked:
        headers["Transfer-Encoding"] = "chunked"
    else:
        headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
