"""Sweep jobs: validated requests, content-addressed dedup, dispatch.

A sweep submission is normalized into the *same* spec grid the CLI
``repro suite`` builds (:func:`repro.harness.suite.suite_spans`), so
its identity — :func:`repro.harness.supervisor.sweep_digest` over the
ordered cache keys — is shared with the journal/cache machinery.  Two
requests asking for the same physics get the same digest, the same
job, and (results being seed-determined) byte-identical payloads;
that digest doubles as the job id and the result's ``ETag``.

Dispatch is a :class:`DispatcherPool`: N worker threads draining one
bounded FIFO, under a watchdog that heartbeats every worker — a
crashed or wedged dispatcher fails only its own job (with the
supervisor's quarantine taxonomy) and is replaced, so a dispatcher
bug degrades one sweep, never the daemon.
"""

import logging
import threading
import time
from collections import deque
from dataclasses import replace

from repro.harness.suite import SuiteResult, aggregate_results, suite_spans
from repro.harness.supervisor import RunFailure
from repro.reporting.payloads import canonical_json_bytes, suite_payload
from repro.service.http import BadRequest
from repro.sim import SECOND

log = logging.getLogger("repro.service")

_REQUEST_KEYS = frozenset({
    "apps", "duration_s", "iterations", "machine",
    "streaming", "validate", "salvage", "fault", "fault_seed",
})
_MACHINE_KEYS = frozenset({"cores", "smt", "gpu"})


class QueueFull(Exception):
    """The dispatcher queue is at capacity (-> 429 at the API edge)."""


class SweepRequest:
    """One validated ``POST /sweeps`` body.

    Field names and defaults mirror the ``repro suite`` CLI surface
    (``duration_s`` = ``--duration``, machine resolution order gpu ->
    SMT -> cores), so a request and the equivalent CLI invocation
    build identical spec grids.
    """

    def __init__(self, apps, duration_s=60.0, iterations=3, cores=None,
                 smt=True, gpu=None, streaming=False, validate=False,
                 salvage=False, fault=None, fault_seed=0):
        self.apps = tuple(apps)
        self.duration_s = duration_s
        self.iterations = iterations
        self.cores = cores
        self.smt = smt
        self.gpu = gpu
        self.streaming = streaming
        self.validate = validate
        self.salvage = salvage
        self.fault = fault
        self.fault_seed = fault_seed

    @classmethod
    def from_payload(cls, payload):
        """Validate a request body; raises :class:`BadRequest`."""
        from repro.apps import REGISTRY
        from repro.hardware import GPUS

        unknown = set(payload) - _REQUEST_KEYS
        if unknown:
            raise BadRequest(f"unknown request fields: {sorted(unknown)}")
        apps = payload.get("apps")
        if not isinstance(apps, list) or not apps:
            raise BadRequest("'apps' must be a non-empty list of "
                             "registry keys")
        bad = [a for a in apps if a not in REGISTRY]
        if bad:
            raise BadRequest(f"unknown applications: {', '.join(map(str, bad))}")
        duration_s = payload.get("duration_s", 60.0)
        if not isinstance(duration_s, (int, float)) or duration_s <= 0:
            raise BadRequest("'duration_s' must be a positive number")
        iterations = payload.get("iterations", 3)
        if not isinstance(iterations, int) or iterations < 1:
            raise BadRequest("'iterations' must be an integer >= 1")
        machine = payload.get("machine", {})
        if not isinstance(machine, dict):
            raise BadRequest("'machine' must be an object")
        bad = set(machine) - _MACHINE_KEYS
        if bad:
            raise BadRequest(f"unknown machine fields: {sorted(bad)}")
        cores = machine.get("cores")
        if cores is not None and (not isinstance(cores, int) or cores < 1):
            raise BadRequest("'machine.cores' must be an integer >= 1")
        gpu = machine.get("gpu")
        if gpu is not None and gpu not in GPUS:
            raise BadRequest(f"unknown GPU {gpu!r}; "
                             f"known: {', '.join(sorted(GPUS))}")
        smt = machine.get("smt", True)
        if not isinstance(smt, bool):
            raise BadRequest("'machine.smt' must be a boolean")
        flags = {}
        for name in ("streaming", "validate", "salvage"):
            value = payload.get(name, False)
            if not isinstance(value, bool):
                raise BadRequest(f"'{name}' must be a boolean")
            flags[name] = value
        if flags["salvage"] and flags["streaming"]:
            raise BadRequest("'salvage' recovers a prefix of the recorded "
                             "trace; incompatible with 'streaming'")
        fault = payload.get("fault")
        if fault is not None:
            from repro.validate.faults import FAULTS, is_exec_fault

            if not isinstance(fault, str) or not (
                    fault in FAULTS or is_exec_fault(fault)):
                raise BadRequest(f"unknown fault: {fault!r}")
        fault_seed = payload.get("fault_seed", 0)
        if not isinstance(fault_seed, int):
            raise BadRequest("'fault_seed' must be an integer")
        return cls(apps=apps, duration_s=duration_s, iterations=iterations,
                   cores=cores, smt=smt, gpu=gpu,
                   fault=fault, fault_seed=fault_seed, **flags)

    def machine(self):
        """The machine spec, derived like the CLI's ``--cores``/
        ``--no-smt``/``--gpu`` (same order, same defaults)."""
        from repro.hardware import GPUS, paper_machine

        machine = paper_machine()
        if self.gpu:
            machine = machine.with_gpu(GPUS[self.gpu])
        if not self.smt:
            machine = machine.with_smt(False)
        if self.cores:
            machine = machine.with_logical_cpus(self.cores)
        return machine

    def build(self):
        """``(spans, specs)`` — the exact grid ``repro suite`` runs."""
        return suite_spans(
            self.apps, machine=self.machine(),
            duration_us=int(self.duration_s * SECOND),
            iterations=self.iterations, streaming=self.streaming,
            validate=self.validate, salvage=self.salvage,
            fault=self.fault, fault_seed=self.fault_seed)

    def metadata(self):
        """Result metadata — identical to what ``repro suite --json``
        stores, so the payloads stay byte-identical."""
        return {"duration_s": self.duration_s,
                "iterations": self.iterations}

    def to_payload(self):
        """JSON form that round-trips through :meth:`from_payload` —
        the shape the job ledger persists for crash recovery."""
        return {
            "apps": list(self.apps),
            "duration_s": self.duration_s,
            "iterations": self.iterations,
            "machine": {"cores": self.cores, "smt": self.smt,
                        "gpu": self.gpu},
            "streaming": self.streaming,
            "validate": self.validate,
            "salvage": self.salvage,
            "fault": self.fault,
            "fault_seed": self.fault_seed,
        }


class SweepJob:
    """One submitted sweep: state machine, progress events, result.

    States: ``queued -> running -> done | failed`` (``failed`` means
    the *service* hit an internal error; quarantined runs still finish
    ``done`` with their :class:`RunFailure` records listed).  Progress
    is an append-only event list guarded by one condition variable;
    readers wait on it with bounded timeouts, so a missed notify can
    delay a stream chunk but never deadlock a connection.

    Terminal transitions are idempotent and first-writer-wins: the
    watchdog can fail a job a wedged dispatcher still holds, and the
    dispatcher's eventual ``finish``/``fail`` becomes a no-op instead
    of resurrecting it.  Every mutator returns True only when it
    actually performed the transition.
    """

    def __init__(self, request, digest, spans, specs, executor,
                 backend):
        self.request = request
        self.digest = digest
        self.id = digest
        self.spans = spans
        self.specs = specs
        self.executor = executor
        self.backend = backend
        self.state = "queued"
        self.executed = 0
        self.cache_hits = 0
        self.failures = []
        self.result_bytes = None
        self.error = None
        self.recovered = None   # "finished" | "interrupted" when replayed
        self.finished_at = None
        self._events = []
        self._cond = threading.Condition()

    def etag(self):
        return f'"{self.digest}"'

    def terminal(self):
        with self._cond:
            return self.state in ("done", "failed")

    # -- writer side (dispatcher workers + watchdog) -------------------

    def mark_running(self):
        with self._cond:
            if self.state != "queued":
                return False
            self.state = "running"
            self._cond.notify_all()
            return True

    def add_event(self, event):
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def finish(self, suite_result):
        """Seal a completed sweep: payload bytes, counters, done event."""
        payload = suite_payload(suite_result,
                                metadata=self.request.metadata())
        body = canonical_json_bytes(payload)
        with self._cond:
            if self.state in ("done", "failed"):
                return False
            self.result_bytes = body
            self.failures = list(suite_result.failures)
            self.executed = self.executor.executed
            self.cache_hits = getattr(self.executor, "cache_hits", 0)
            self._events.append({
                "event": "done",
                "id": self.id,
                "etag": self.etag(),
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "failures": [f.to_payload() for f in self.failures],
            })
            self.state = "done"
            self.finished_at = time.monotonic()
            self._cond.notify_all()
            return True

    def fail(self, exc):
        return self._fail_locked(f"{type(exc).__name__}: {exc}")

    def fail_quarantined(self, kind, detail):
        """Terminal failure attributed to the service itself (a crashed
        or hung dispatcher, an expired drain), spelled in the exact
        quarantine taxonomy so API consumers see one failure language.
        """
        failure = RunFailure(index=-1, app="*", seed=0, kind=kind,
                             attempts=1, detail=detail)
        return self._fail_locked(detail, failure=failure)

    def _fail_locked(self, error, failure=None):
        with self._cond:
            if self.state in ("done", "failed"):
                return False
            self.error = error
            if failure is not None:
                self.failures.append(failure)
            self._events.append({
                "event": "failed", "id": self.id, "error": error,
                "failures": [f.to_payload() for f in self.failures],
            })
            self.state = "failed"
            self.finished_at = time.monotonic()
            self._cond.notify_all()
            return True

    # -- reader side ---------------------------------------------------

    def wait_events(self, seen, timeout=1.0):
        """``(events after seen, exhausted)``; blocks at most ``timeout``.

        ``exhausted`` is True once the job is terminal *and* the caller
        has now seen every event — the stream's termination condition.
        """
        with self._cond:
            if len(self._events) <= seen and self.state not in ("done",
                                                                "failed"):
                self._cond.wait(timeout)
            new = list(self._events[seen:])
            exhausted = (self.state in ("done", "failed")
                         and seen + len(new) == len(self._events))
            return new, exhausted

    def wait_done(self, timeout=60.0):
        """Block until terminal (tests and the drain path); True if so."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.state not in ("done", "failed"):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 1.0))
            return True

    def status_payload(self):
        with self._cond:
            done_apps = sum(1 for e in self._events
                            if e.get("event") == "app")
            completed = max((e["completed"] for e in self._events
                             if e.get("event") == "app"), default=0)
            payload = {
                "id": self.id,
                "state": self.state,
                "backend": self.backend,
                "request": self.request.to_payload(),
                "progress": {
                    "total_runs": len(self.specs),
                    "completed_runs": completed,
                    "total_apps": len(self.spans),
                    "completed_apps": done_apps,
                },
                "failures": [f.to_payload() for f in self.failures],
            }
            if self.recovered is not None:
                payload["recovered"] = self.recovered
            if self.state == "done":
                payload["etag"] = self.etag()
                payload["executed"] = self.executed
                payload["cache_hits"] = self.cache_hits
            if self.error is not None:
                payload["error"] = self.error
            return payload


class JobStore:
    """Jobs by digest, with in-flight dedup and TTL eviction.

    ``find`` accepts the full digest or any unambiguous prefix of at
    least 8 hex characters (the submission response hands out both).

    ``ttl_s`` bounds memory in a long-running daemon: terminal jobs
    older than the TTL are evicted lazily on every store access (the
    ledger keeps the durable record, and the result cache makes a
    resubmission of an evicted sweep nearly free).
    """

    def __init__(self, ttl_s=None):
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (None = keep forever)")
        self.ttl_s = ttl_s
        self.evicted = 0
        self._jobs = {}
        self._lock = threading.Lock()

    def _evict_locked(self, now=None):
        if self.ttl_s is None:
            return
        now = time.monotonic() if now is None else now
        expired = [digest for digest, job in self._jobs.items()
                   if job.finished_at is not None
                   and now - job.finished_at > self.ttl_s]
        for digest in expired:
            del self._jobs[digest]
            self.evicted += 1

    def dedup(self, digest):
        """The live job already covering ``digest``, if any.

        A ``failed`` job does not dedup — resubmission is the retry.
        """
        with self._lock:
            self._evict_locked()
            job = self._jobs.get(digest)
            if job is not None and job.state == "failed":
                return None
            return job

    def add(self, job):
        with self._lock:
            self._evict_locked()
            self._jobs[job.digest] = job

    def discard(self, job_id):
        """Roll back an admission the queue refused (429 path)."""
        with self._lock:
            self._jobs.pop(job_id, None)

    def find(self, job_id):
        with self._lock:
            self._evict_locked()
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            if len(job_id) >= 8:
                matches = [j for d, j in self._jobs.items()
                           if d.startswith(job_id)]
                if len(matches) == 1:
                    return matches[0]
            return None

    def all(self):
        with self._lock:
            self._evict_locked()
            return list(self._jobs.values())


class _Dispatcher:
    """One dispatcher worker: its thread, active job and heartbeat."""

    __slots__ = ("name", "thread", "job", "heartbeat", "abandoned")

    def __init__(self, name):
        self.name = name
        self.thread = None
        self.job = None
        self.heartbeat = time.monotonic()
        self.abandoned = False


class DispatcherPool:
    """N dispatcher threads draining one bounded FIFO of sweep jobs.

    Parallelism *across* jobs lives here; parallelism *inside* a job
    still belongs to its executor.  ``max_queue`` bounds the backlog —
    :meth:`submit` raises :class:`QueueFull` at capacity so the API
    edge can answer 429 instead of queueing unboundedly.

    A watchdog thread heartbeats every worker.  A dispatcher whose
    thread died mid-job (it can happen: an executor bug, a chaos
    injection) has its job failed as a ``crash`` quarantine and is
    respawned; with ``hang_s`` set, a dispatcher whose heartbeat goes
    stale mid-job is declared hung, its job failed as ``deadline``,
    the wedged thread abandoned (a Python thread cannot be killed) and
    a replacement spawned.  Either way the job's stream terminates and
    the pool keeps serving.

    ``observer(event, job)`` is called on ``started``/``finished``/
    ``failed`` transitions the pool performs — the daemon wires the
    write-ahead ledger and the circuit breaker through it.  ``chaos``
    is a test-only injection point invoked as ``chaos(job, worker)``
    right before a job runs; it may raise (simulating a dispatcher
    crash) or block (simulating a hang).
    """

    #: Watchdog poll tick (seconds).
    TICK_S = 0.05

    def __init__(self, workers=1, max_queue=None, hang_s=None,
                 observer=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (None = unbounded)")
        if hang_s is not None and hang_s <= 0:
            raise ValueError("hang_s must be positive (None = disabled)")
        self.max_queue = max_queue
        self.hang_s = hang_s
        self.observer = observer
        self.chaos = None
        self.crashed = 0        # dispatcher threads found dead mid-job
        self.hung = 0           # dispatchers that missed their heartbeat
        self.respawned = 0      # replacement workers brought up
        self._queue = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._serial = 0
        self._workers = [self._spawn() for _ in range(workers)]
        self._watchdog = threading.Thread(
            target=self._watch, daemon=True, name="sweep-watchdog")
        self._watchdog.start()

    # -- submission ----------------------------------------------------

    def submit(self, job, force=False):
        """Enqueue ``job``; :class:`QueueFull` at capacity.

        ``force`` bypasses the bound — recovery re-enqueues ledger jobs
        that were already admitted before the crash.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("dispatcher pool is closed")
            if (not force and self.max_queue is not None
                    and len(self._queue) >= self.max_queue):
                raise QueueFull(
                    f"dispatcher queue at capacity "
                    f"({self.max_queue} jobs waiting)")
            self._queue.append(job)
            self._cond.notify_all()

    def queue_depth(self):
        with self._cond:
            return len(self._queue)

    def saturated(self):
        with self._cond:
            return (self.max_queue is not None
                    and len(self._queue) >= self.max_queue)

    def active_jobs(self):
        with self._cond:
            return [w.job for w in self._workers
                    if w.job is not None and not w.abandoned]

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout=None):
        """Block until every queued/running job is resolved.

        Abandoned (wedged) workers do not count — their jobs are
        already failed.  Returns False on timeout.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while self._queue or any(
                    w.job is not None and not w.abandoned
                    for w in self._workers):
                remaining = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(min(remaining, 1.0))
            return True

    def abandon_active(self):
        """Give up on every in-flight job (the drain-deadline path has
        already failed them); wedged threads can no longer notify."""
        with self._cond:
            for worker in self._workers:
                if worker.job is not None:
                    worker.abandoned = True
            self._cond.notify_all()

    def close(self):
        with self._cond:
            self._closed = True
            self._queue.clear()
            self._cond.notify_all()
        for worker in self._workers:
            if worker.thread is not None and not worker.abandoned:
                worker.thread.join(timeout=10)
        self._watchdog.join(timeout=10)

    # -- worker loop ---------------------------------------------------

    def _spawn(self):
        worker = _Dispatcher(f"dispatch-{self._serial}")
        self._serial += 1
        worker.thread = threading.Thread(
            target=self._loop, args=(worker,), daemon=True,
            name=worker.name)
        worker.thread.start()
        return worker

    def _loop(self, worker):
        while True:
            with self._cond:
                while (not self._queue and not self._closed
                        and not worker.abandoned):
                    self._cond.wait(1.0)
                if worker.abandoned or (self._closed and not self._queue):
                    return
                job = self._queue.popleft()
                if job.terminal():
                    # Failed while queued (drain deadline): skip.
                    self._cond.notify_all()
                    continue
                worker.job = job
                worker.heartbeat = time.monotonic()
            hook = self.chaos
            if hook is not None:
                # Deliberately outside the try: an exception here kills
                # this dispatcher thread, which is the point.
                hook(job, worker)
            try:
                if not worker.abandoned:
                    self._run(job, worker)
            except Exception as exc:    # pragma: no cover - backstop
                if job.fail(exc):
                    self._observe("failed", job)
            finally:
                with self._cond:
                    worker.job = None
                    self._cond.notify_all()
            if worker.abandoned:
                return

    def _run(self, job, worker):
        """Execute one sweep, one ``executor.map`` per app span — which
        is what turns a monolithic sweep into streamable progress."""
        if not job.mark_running():
            return
        self._observe("started", job)
        try:
            runs = [None] * len(job.specs)
            failures = []
            for app, lo, hi in job.spans:
                if worker.abandoned:
                    return      # watchdog already failed this job
                worker.heartbeat = time.monotonic()
                span_runs = job.executor.map(job.specs[lo:hi])
                runs[lo:hi] = span_runs
                # Span-local failure indices rebase onto the grid so
                # the API reports the same indices a one-shot
                # ``run_suite`` of the full grid would.
                failures.extend(
                    replace(f, index=lo + f.index) for f in span_runs
                    if isinstance(f, RunFailure))
                job.add_event({
                    "event": "app",
                    "app": app.name,
                    "completed": hi,
                    "total": len(job.specs),
                    "failures": len(failures),
                })
        except Exception as exc:
            if job.fail(exc):
                self._observe("failed", job)
            return
        done = job.finish(SuiteResult(
            results=aggregate_results(job.spans, runs),
            failures=failures))
        if done:
            self._observe("finished", job)

    def _observe(self, event, job):
        observer = self.observer
        if observer is None:
            return
        try:
            observer(event, job)
        except Exception:       # pragma: no cover - observer backstop
            log.exception("job observer failed for %s on %s",
                          event, job.id)

    # -- watchdog ------------------------------------------------------

    def _watch(self):
        while True:
            with self._cond:
                if self._closed:
                    return
            now = time.monotonic()
            for slot, worker in enumerate(list(self._workers)):
                if worker.job is None or worker.abandoned:
                    continue
                if not worker.thread.is_alive():
                    self._declare_dead(slot, worker, "crash")
                elif (self.hang_s is not None
                        and now - worker.heartbeat > self.hang_s):
                    self._declare_dead(slot, worker, "deadline")
            time.sleep(self.TICK_S)

    def _declare_dead(self, slot, worker, kind):
        """Fail a dead/hung dispatcher's job; bring up a replacement."""
        job = worker.job
        if kind == "crash":
            self.crashed += 1
            detail = (f"dispatcher worker {worker.name} crashed "
                      f"mid-job; worker respawned")
        else:
            self.hung += 1
            detail = (f"dispatcher worker {worker.name} missed its "
                      f"heartbeat for {self.hang_s:g}s; job failed, "
                      f"worker replaced")
        log.error("%s (job %s)", detail, job.id)
        with self._cond:
            worker.abandoned = True
            worker.job = None
            self._workers[slot] = self._spawn()
            self.respawned += 1
            self._cond.notify_all()
        if job.fail_quarantined(kind, detail):
            self._observe("failed", job)


#: Backwards-compatible name: PR 8's single-thread runner grew into
#: the pool; a ``DispatcherPool(workers=1)`` is its exact successor.
JobRunner = DispatcherPool
