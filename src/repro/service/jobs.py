"""Sweep jobs: validated requests, content-addressed dedup, the runner.

A sweep submission is normalized into the *same* spec grid the CLI
``repro suite`` builds (:func:`repro.harness.suite.suite_spans`), so
its identity — :func:`repro.harness.supervisor.sweep_digest` over the
ordered cache keys — is shared with the journal/cache machinery.  Two
requests asking for the same physics get the same digest, the same
job, and (results being seed-determined) byte-identical payloads;
that digest doubles as the job id and the result's ``ETag``.
"""

import threading
from collections import deque
from dataclasses import replace

from repro.harness.suite import SuiteResult, aggregate_results, suite_spans
from repro.harness.supervisor import RunFailure
from repro.reporting.payloads import canonical_json_bytes, suite_payload
from repro.service.http import BadRequest
from repro.sim import SECOND

_REQUEST_KEYS = frozenset({
    "apps", "duration_s", "iterations", "machine",
    "streaming", "validate", "salvage", "fault", "fault_seed",
})
_MACHINE_KEYS = frozenset({"cores", "smt", "gpu"})


class SweepRequest:
    """One validated ``POST /sweeps`` body.

    Field names and defaults mirror the ``repro suite`` CLI surface
    (``duration_s`` = ``--duration``, machine resolution order gpu ->
    SMT -> cores), so a request and the equivalent CLI invocation
    build identical spec grids.
    """

    def __init__(self, apps, duration_s=60.0, iterations=3, cores=None,
                 smt=True, gpu=None, streaming=False, validate=False,
                 salvage=False, fault=None, fault_seed=0):
        self.apps = tuple(apps)
        self.duration_s = duration_s
        self.iterations = iterations
        self.cores = cores
        self.smt = smt
        self.gpu = gpu
        self.streaming = streaming
        self.validate = validate
        self.salvage = salvage
        self.fault = fault
        self.fault_seed = fault_seed

    @classmethod
    def from_payload(cls, payload):
        """Validate a request body; raises :class:`BadRequest`."""
        from repro.apps import REGISTRY
        from repro.hardware import GPUS

        unknown = set(payload) - _REQUEST_KEYS
        if unknown:
            raise BadRequest(f"unknown request fields: {sorted(unknown)}")
        apps = payload.get("apps")
        if not isinstance(apps, list) or not apps:
            raise BadRequest("'apps' must be a non-empty list of "
                             "registry keys")
        bad = [a for a in apps if a not in REGISTRY]
        if bad:
            raise BadRequest(f"unknown applications: {', '.join(map(str, bad))}")
        duration_s = payload.get("duration_s", 60.0)
        if not isinstance(duration_s, (int, float)) or duration_s <= 0:
            raise BadRequest("'duration_s' must be a positive number")
        iterations = payload.get("iterations", 3)
        if not isinstance(iterations, int) or iterations < 1:
            raise BadRequest("'iterations' must be an integer >= 1")
        machine = payload.get("machine", {})
        if not isinstance(machine, dict):
            raise BadRequest("'machine' must be an object")
        bad = set(machine) - _MACHINE_KEYS
        if bad:
            raise BadRequest(f"unknown machine fields: {sorted(bad)}")
        cores = machine.get("cores")
        if cores is not None and (not isinstance(cores, int) or cores < 1):
            raise BadRequest("'machine.cores' must be an integer >= 1")
        gpu = machine.get("gpu")
        if gpu is not None and gpu not in GPUS:
            raise BadRequest(f"unknown GPU {gpu!r}; "
                             f"known: {', '.join(sorted(GPUS))}")
        flags = {}
        for name in ("streaming", "validate", "salvage"):
            value = payload.get(name, False)
            if not isinstance(value, bool):
                raise BadRequest(f"'{name}' must be a boolean")
            flags[name] = value
        if flags["salvage"] and flags["streaming"]:
            raise BadRequest("'salvage' recovers a prefix of the recorded "
                             "trace; incompatible with 'streaming'")
        fault = payload.get("fault")
        if fault is not None:
            from repro.validate.faults import FAULTS, is_exec_fault

            if not isinstance(fault, str) or not (
                    fault in FAULTS or is_exec_fault(fault)):
                raise BadRequest(f"unknown fault: {fault!r}")
        fault_seed = payload.get("fault_seed", 0)
        if not isinstance(fault_seed, int):
            raise BadRequest("'fault_seed' must be an integer")
        return cls(apps=apps, duration_s=duration_s, iterations=iterations,
                   cores=cores, smt=machine.get("smt", True), gpu=gpu,
                   fault=fault, fault_seed=fault_seed, **flags)

    def machine(self):
        """The machine spec, derived like the CLI's ``--cores``/
        ``--no-smt``/``--gpu`` (same order, same defaults)."""
        from repro.hardware import GPUS, paper_machine

        machine = paper_machine()
        if self.gpu:
            machine = machine.with_gpu(GPUS[self.gpu])
        if not self.smt:
            machine = machine.with_smt(False)
        if self.cores:
            machine = machine.with_logical_cpus(self.cores)
        return machine

    def build(self):
        """``(spans, specs)`` — the exact grid ``repro suite`` runs."""
        return suite_spans(
            self.apps, machine=self.machine(),
            duration_us=int(self.duration_s * SECOND),
            iterations=self.iterations, streaming=self.streaming,
            validate=self.validate, salvage=self.salvage,
            fault=self.fault, fault_seed=self.fault_seed)

    def metadata(self):
        """Result metadata — identical to what ``repro suite --json``
        stores, so the payloads stay byte-identical."""
        return {"duration_s": self.duration_s,
                "iterations": self.iterations}

    def to_payload(self):
        return {
            "apps": list(self.apps),
            "duration_s": self.duration_s,
            "iterations": self.iterations,
            "machine": {"cores": self.cores, "smt": self.smt,
                        "gpu": self.gpu},
            "streaming": self.streaming,
            "validate": self.validate,
            "salvage": self.salvage,
            "fault": self.fault,
            "fault_seed": self.fault_seed,
        }


class SweepJob:
    """One submitted sweep: state machine, progress events, result.

    States: ``queued -> running -> done | failed`` (``failed`` means
    the *service* hit an internal error; quarantined runs still finish
    ``done`` with their :class:`RunFailure` records listed).  Progress
    is an append-only event list guarded by one condition variable;
    readers wait on it with bounded timeouts, so a missed notify can
    delay a stream chunk but never deadlock a connection.
    """

    def __init__(self, request, digest, spans, specs, executor,
                 backend):
        self.request = request
        self.digest = digest
        self.id = digest
        self.spans = spans
        self.specs = specs
        self.executor = executor
        self.backend = backend
        self.state = "queued"
        self.executed = 0
        self.failures = []
        self.result_bytes = None
        self.error = None
        self._events = []
        self._cond = threading.Condition()

    def etag(self):
        return f'"{self.digest}"'

    # -- writer side (the runner thread) -------------------------------

    def mark_running(self):
        with self._cond:
            self.state = "running"
            self._cond.notify_all()

    def add_event(self, event):
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def finish(self, suite_result):
        """Seal a completed sweep: payload bytes, counters, done event."""
        payload = suite_payload(suite_result,
                                metadata=self.request.metadata())
        body = canonical_json_bytes(payload)
        with self._cond:
            self.result_bytes = body
            self.failures = list(suite_result.failures)
            self.executed = self.executor.executed
            self._events.append({
                "event": "done",
                "id": self.id,
                "etag": self.etag(),
                "executed": self.executed,
                "failures": [f.to_payload() for f in self.failures],
            })
            self.state = "done"
            self._cond.notify_all()

    def fail(self, exc):
        with self._cond:
            self.error = f"{type(exc).__name__}: {exc}"
            self._events.append({"event": "failed", "id": self.id,
                                 "error": self.error})
            self.state = "failed"
            self._cond.notify_all()

    # -- reader side ---------------------------------------------------

    def wait_events(self, seen, timeout=1.0):
        """``(events after seen, exhausted)``; blocks at most ``timeout``.

        ``exhausted`` is True once the job is terminal *and* the caller
        has now seen every event — the stream's termination condition.
        """
        with self._cond:
            if len(self._events) <= seen and self.state not in ("done",
                                                                "failed"):
                self._cond.wait(timeout)
            new = list(self._events[seen:])
            exhausted = (self.state in ("done", "failed")
                         and seen + len(new) == len(self._events))
            return new, exhausted

    def wait_done(self, timeout=60.0):
        """Block until terminal (tests and the drain path); True if so."""
        import time

        deadline = time.monotonic() + timeout
        with self._cond:
            while self.state not in ("done", "failed"):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 1.0))
            return True

    def status_payload(self):
        with self._cond:
            done_apps = sum(1 for e in self._events
                            if e.get("event") == "app")
            completed = max((e["completed"] for e in self._events
                             if e.get("event") == "app"), default=0)
            payload = {
                "id": self.id,
                "state": self.state,
                "backend": self.backend,
                "request": self.request.to_payload(),
                "progress": {
                    "total_runs": len(self.specs),
                    "completed_runs": completed,
                    "total_apps": len(self.spans),
                    "completed_apps": done_apps,
                },
                "failures": [f.to_payload() for f in self.failures],
            }
            if self.state == "done":
                payload["etag"] = self.etag()
                payload["executed"] = self.executed
            if self.error is not None:
                payload["error"] = self.error
            return payload


class JobStore:
    """Jobs by digest, with in-flight dedup.

    ``find`` accepts the full digest or any unambiguous prefix of at
    least 8 hex characters (the submission response hands out both).
    """

    def __init__(self):
        self._jobs = {}
        self._lock = threading.Lock()

    def dedup(self, digest):
        """The live job already covering ``digest``, if any.

        A ``failed`` job does not dedup — resubmission is the retry.
        """
        with self._lock:
            job = self._jobs.get(digest)
            if job is not None and job.state == "failed":
                return None
            return job

    def add(self, job):
        with self._lock:
            self._jobs[job.digest] = job

    def find(self, job_id):
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            if len(job_id) >= 8:
                matches = [j for d, j in self._jobs.items()
                           if d.startswith(job_id)]
                if len(matches) == 1:
                    return matches[0]
            return None

    def all(self):
        with self._lock:
            return list(self._jobs.values())


class JobRunner:
    """One dispatcher thread draining a FIFO of sweep jobs.

    One job runs at a time — parallelism lives *inside* a job (its
    executor fans the grid out), so two concurrent sweeps never fight
    over the same worker pool.  ``map`` is called once per app span,
    which is what turns a monolithic sweep into streamable progress:
    each span's completion appends an ``app`` event before the next
    span starts.
    """

    def __init__(self):
        self._queue = deque()
        self._cond = threading.Condition()
        self._active = None
        self._closed = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="sweep-runner")
        self._thread.start()

    def submit(self, job):
        with self._cond:
            if self._closed:
                raise RuntimeError("runner is closed")
            self._queue.append(job)
            self._cond.notify_all()

    def drain(self, timeout=None):
        """Block until every queued/running job is resolved."""
        import time

        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while self._queue or self._active is not None:
                remaining = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(min(remaining, 1.0))
            return True

    def close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=10)

    def _loop(self):
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(1.0)
                if self._closed and not self._queue:
                    return
                job = self._queue.popleft()
                self._active = job
            try:
                self._run(job)
            except Exception as exc:       # pragma: no cover - backstop
                job.fail(exc)
            finally:
                with self._cond:
                    self._active = None
                    self._cond.notify_all()

    def _run(self, job):
        job.mark_running()
        try:
            runs = [None] * len(job.specs)
            failures = []
            for app, lo, hi in job.spans:
                span_runs = job.executor.map(job.specs[lo:hi])
                runs[lo:hi] = span_runs
                # Span-local failure indices rebase onto the grid so
                # the API reports the same indices a one-shot
                # ``run_suite`` of the full grid would.
                failures.extend(
                    replace(f, index=lo + f.index) for f in span_runs
                    if isinstance(f, RunFailure))
                job.add_event({
                    "event": "app",
                    "app": app.name,
                    "completed": hi,
                    "total": len(job.specs),
                    "failures": len(failures),
                })
        except Exception as exc:
            job.fail(exc)
            return
        job.finish(SuiteResult(results=aggregate_results(job.spans, runs),
                               failures=failures))
