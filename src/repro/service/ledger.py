"""Write-ahead job ledger: the durable record of every sweep job.

The in-memory :class:`~repro.service.jobs.JobStore` dies with the
daemon; the ledger is what survives.  Every job transition is appended
to a flushed-and-fsynced JSONL file *before* the transition takes
effect, in the same spirit (and format discipline) as the supervisor's
checkpoint journal:

    {"format": "repro-job-ledger-v1"}                       <- header
    {"event": "submitted", "id": <digest>, "request": {...}}
    {"event": "started",   "id": <digest>}
    {"event": "finished",  "id": <digest>, "executed": N, ...}
    {"event": "failed",    "id": <digest>, "error": "..."}

The job id is the sweep digest — the content address shared with the
result cache — so a replayed ``submitted`` record is everything needed
to rebuild the job byte-identically: the request re-validates into the
same spec grid, finished grid points restore from the cache, and only
work that never completed re-simulates.

Crash discipline mirrors :class:`~repro.harness.supervisor.SweepJournal`:
a SIGKILL can lose at most the line being written, so :func:`replay`
tolerates exactly one torn final line, and :meth:`JobLedger.open`
truncates that torn tail before appending so the file never holds an
interior corrupt record.
"""

import json
import os
import threading
from dataclasses import dataclass, field

#: First line of every ledger file.
LEDGER_FORMAT = "repro-job-ledger-v1"

#: Job states a replayed ledger can report, in lifecycle order.
LEDGER_STATES = ("submitted", "started", "finished", "failed")


@dataclass
class LedgerJob:
    """One job's latest durable state, as replayed from the ledger."""

    id: str
    request: dict
    state: str = "submitted"
    executed: int = 0
    failures: list = field(default_factory=list)
    error: str = None

    @property
    def interrupted(self):
        """True when the daemon died before resolving this job."""
        return self.state in ("submitted", "started")


class JobLedger:
    """Append-only fsynced JSONL ledger of job transitions.

    Thread-safe: dispatcher workers and the submission path append
    concurrently.  Every record is flushed and fsynced before the call
    returns, so an acknowledged transition is on disk before anything
    acts on it.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh = None
        self._lock = threading.Lock()

    def open(self):
        """Open for appending, healing a torn tail from a prior crash.

        A brand-new (or empty) ledger gets the header line; an existing
        one is truncated back to its last complete line so a record
        interrupted by SIGKILL never corrupts the next append.
        """
        tail = self._heal_tail()
        self._fh = open(self.path, "a", encoding="utf-8")
        if tail == 0:
            self._write({"format": LEDGER_FORMAT})
        return self

    def _heal_tail(self):
        """Drop a torn final line; returns the healed file size."""
        try:
            with open(self.path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return 0
        if not blob or blob.endswith(b"\n"):
            return len(blob)
        keep = blob.rfind(b"\n") + 1
        with open(self.path, "r+b") as fh:
            fh.truncate(keep)
        return keep

    def record_submitted(self, job_id, request_payload):
        self._write({"event": "submitted", "id": job_id,
                     "request": request_payload})

    def record_started(self, job_id):
        self._write({"event": "started", "id": job_id})

    def record_finished(self, job_id, executed=0, failures=()):
        self._write({"event": "finished", "id": job_id,
                     "executed": executed, "failures": list(failures)})

    def record_failed(self, job_id, error):
        self._write({"event": "failed", "id": job_id, "error": error})

    def _write(self, entry):
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:
                raise RuntimeError("ledger is not open")
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def replay(path):
    """Replay a ledger into ``[LedgerJob, ...]`` in submission order.

    Never raises for damage a crash can cause: a missing file replays
    empty, a torn final line (no trailing newline — the kill caught an
    append mid-write) is ignored, and records referencing an id with no
    surviving ``submitted`` line (its request is what we need to
    rebuild the job) are dropped.  A file that is not a ledger at all
    raises ``ValueError`` — replaying the wrong file must be loud.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except FileNotFoundError:
        return []
    lines = text.splitlines()
    torn_tail = bool(text) and not text.endswith("\n")
    jobs, order = {}, []
    header_seen = False
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if torn_tail and lineno == len(lines) - 1:
                break           # torn final line: lose at most one record
            raise ValueError(
                f"corrupt job ledger {path!r} at line {lineno + 1}")
        if not header_seen:
            if not isinstance(entry, dict) \
                    or entry.get("format") != LEDGER_FORMAT:
                raise ValueError(f"{path!r} is not a job ledger")
            header_seen = True
            continue
        _apply(jobs, order, entry)
    return [jobs[job_id] for job_id in order]


def _apply(jobs, order, entry):
    """Fold one replayed record into the job map (unknown ids/events
    from a partial or future-version ledger are skipped, not fatal)."""
    if not isinstance(entry, dict):
        return
    job_id = entry.get("id")
    event = entry.get("event")
    if not isinstance(job_id, str) or event not in LEDGER_STATES:
        return
    if event == "submitted":
        request = entry.get("request")
        if not isinstance(request, dict):
            return
        if job_id not in jobs:
            order.append(job_id)
        # A resubmission after a failure restarts the lifecycle.
        jobs[job_id] = LedgerJob(id=job_id, request=request)
        return
    job = jobs.get(job_id)
    if job is None:
        return                  # transition without a surviving submit
    job.state = event
    if event == "finished":
        job.executed = entry.get("executed", 0)
        job.failures = list(entry.get("failures", ()))
    elif event == "failed":
        job.error = entry.get("error")
