"""Asyncio front end of the sweep service.

One event loop accepts connections and frames requests
(:mod:`repro.service.http`); each parsed request is handed to the
synchronous :meth:`~repro.service.daemon.SweepService.dispatch` on a
thread-pool worker, so a long-running handler (a goldens recompute, a
blocking stream read) never stalls the accept loop.  Streaming
responses ship as chunked transfer encoding, one chunk per NDJSON
event, pulled from the handler's generator the same way — blocking
generator steps run on the pool, the loop only writes.
"""

import asyncio
import threading

from repro.service import http


class ServiceServer:
    """Serve one :class:`~repro.service.daemon.SweepService` over TCP.

    :meth:`run` blocks the calling thread until the service drains and
    stops (``POST /shutdown``) or :meth:`request_stop` is called from
    anywhere; tests run it on a daemon thread and :meth:`wait_ready`
    for the bound port (``port=0`` picks an ephemeral one).
    """

    def __init__(self, service, host="127.0.0.1", port=0, on_ready=None):
        self.service = service
        self.host = host
        self.port = port
        self.on_ready = on_ready
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._active = 0
        self._idle = None

    def run(self):
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()       # unblock waiters even on failure

    def wait_ready(self, timeout=10.0):
        """True once the listening socket is bound (port is final)."""
        return self._ready.wait(timeout) and self._loop is not None

    def request_stop(self):
        """Thread-safe: make :meth:`run` return."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:    # loop already closed
                pass

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        server = await asyncio.start_server(
            self._handle, self.host, self.port,
            limit=http.MAX_HEAD_BYTES)
        self.port = server.sockets[0].getsockname()[1]
        self.service.on_stopped = self.request_stop
        self._ready.set()
        if self.on_ready is not None:
            self.on_ready(self)
        async with server:
            await self._stop.wait()
        # A drain-triggered stop races the 202 response of the very
        # request that caused it; let in-flight connections finish
        # writing (bounded — an idle keep-alive client can't hold the
        # shutdown hostage).
        if self._active:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                pass
        self.service.close()

    async def _handle(self, reader, writer):
        self._active += 1
        self._idle.clear()
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.BadRequest as exc:
                    await self._send(writer, http.error_response(
                        400, str(exc)), keep_alive=False)
                    break
                if request is None:
                    break
                response = await self._loop.run_in_executor(
                    None, self.service.dispatch, request)
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                await self._send(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                # Loop teardown cancels the close waiter; the socket
                # is gone either way.
                pass

    async def _send(self, writer, response, keep_alive):
        if response.stream is None:
            writer.write(http.render_head(response,
                                          keep_alive=keep_alive))
            writer.write(response.body)
            await writer.drain()
            return
        writer.write(http.render_head(response, chunked=True,
                                      keep_alive=keep_alive))
        await writer.drain()
        iterator = iter(response.stream)
        while True:
            chunk = await self._loop.run_in_executor(
                None, next, iterator, None)
            if chunk is None:
                break
            writer.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def serve(service, host="127.0.0.1", port=0, on_ready=None):
    """Build a :class:`ServiceServer` and block serving ``service``."""
    server = ServiceServer(service, host=host, port=port,
                           on_ready=on_ready)
    server.run()
    return server
