"""Precomputed read endpoints: golden tables and DSE frontiers.

The committed artifacts under ``tests/golden/`` already hold what the
read path serves — metric fingerprints per app x machine config and
per-app Pareto frontiers — so ``GET /tables/...`` and
``GET /frontiers/...`` are pure file reads re-encoded canonically,
with a strong ``ETag`` (SHA-256 of the body) for conditional reuse.

The only mutation the service supports is re-recording goldens (the
HTTP face of ``repro validate --update-golden``); it is guarded by a
non-blocking lock so concurrent updates answer ``409 Conflict``
instead of interleaving writes.
"""

import hashlib
import json
import threading
from pathlib import Path

from repro.reporting.payloads import canonical_json_bytes


def default_dse_path():
    """The committed frontier file: ``tests/golden/golden_dse.json``."""
    from repro.validate.golden import default_golden_path

    return default_golden_path().parent / "golden_dse.json"


class TableStore:
    """Canonical bodies + ETags over the committed golden artifacts."""

    def __init__(self, golden_path=None, dse_path=None):
        from repro.validate.golden import default_golden_path

        self.golden_path = (Path(golden_path) if golden_path is not None
                            else default_golden_path())
        self.dse_path = (Path(dse_path) if dse_path is not None
                         else default_dse_path())
        #: Held (non-blocking) around goldens updates; a busy lock is
        #: the service's 409.
        self.mutation_lock = threading.Lock()
        self._lock = threading.Lock()
        self._bodies = {}       # (kind, name) -> (etag, bytes)

    # -- read path -----------------------------------------------------

    def goldens_body(self, app=None):
        """``(etag, bytes)`` of the golden fingerprints (optionally one
        app's), or ``None`` when the app/file is unknown."""
        return self._body("goldens", app)

    def frontiers_body(self, app=None):
        """``(etag, bytes)`` of the DSE frontiers (optionally one
        app's), or ``None`` when the app/file is unknown."""
        return self._body("frontiers", app)

    def _body(self, kind, name):
        with self._lock:
            cached = self._bodies.get((kind, name))
            if cached is not None:
                return cached
        payload = self._load(kind, name)
        if payload is None:
            return None
        body = canonical_json_bytes(payload)
        etag = f'"{hashlib.sha256(body).hexdigest()}"'
        with self._lock:
            self._bodies[(kind, name)] = (etag, body)
        return etag, body

    def _load(self, kind, name):
        if kind == "goldens":
            from repro.validate.golden import load_goldens

            try:
                apps = load_goldens(self.golden_path)
            except FileNotFoundError:
                return None
            if name is None:
                return apps
            return apps.get(name)
        try:
            with open(self.dse_path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            return None
        frontiers = document.get("frontiers", {})
        if name is None:
            return frontiers
        return frontiers.get(name)

    def invalidate(self):
        """Drop every cached body (called after a mutation)."""
        with self._lock:
            self._bodies.clear()

    # -- mutation path -------------------------------------------------

    def update_goldens(self, apps, jobs=None):
        """Re-record golden fingerprints for ``apps`` and merge them
        into the golden file — the caller holds :attr:`mutation_lock`.
        """
        from repro.validate.golden import (
            compute_fingerprints,
            load_goldens,
            save_goldens,
        )

        fingerprints = compute_fingerprints(apps, jobs=jobs)
        try:
            merged = load_goldens(self.golden_path)
        except FileNotFoundError:
            merged = {}
        merged.update(fingerprints)
        save_goldens(merged, self.golden_path)
        self.invalidate()
        return {
            "updated": sorted(fingerprints),
            "configs": len(next(iter(fingerprints.values()))),
            "path": str(self.golden_path),
        }
