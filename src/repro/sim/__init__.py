"""Deterministic discrete-event simulation kernel.

Time is an integer count of microseconds.  Processes are generators
that yield :class:`Event` objects and are resumed when those fire.

Public surface::

    env = Environment()
    proc = env.process(my_generator())
    env.run(until=1_000_000)
"""

from repro.sim.environment import Environment, NORMAL, URGENT
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.exceptions import Interrupt, SimulationError, StopSimulation
from repro.sim.resources import Resource, Store

#: Microseconds per millisecond / second — helpers for readable literals.
MS = 1_000
SECOND = 1_000_000

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "MS",
    "NORMAL",
    "Process",
    "Resource",
    "SECOND",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "URGENT",
]
