"""The simulation environment: clock, event queue and run loop.

Simulation time is an integer number of **microseconds**.  Using
integers keeps event ordering exact and runs deterministic — two runs
with the same seed produce bit-identical traces.
"""

import os
import sys
from heapq import heappop, heappush
from sys import getrefcount

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.exceptions import SimulationError, StopSimulation

#: Default event priority.  Lower numbers fire first at equal times.
NORMAL = 1
#: Priority used for urgent deliveries such as interrupts.
URGENT = 0

#: Environment switch for the epoch-partitioned fast paths (the
#: scheduler's synchronous CPU grants and the :meth:`Environment.
#: advance` virtual-clock skips).  Any of the "off" values falls back
#: to the legacy one-event-per-step loop — used as the benchmark
#: baseline; everything else, including unset, enables the partitioned
#: paths, which are bit-identical by construction.
EPOCH_ENV = "REPRO_EPOCH"
_EPOCH_OFF = frozenset({"legacy", "off", "0", "no"})


def epoch_enabled(override=None):
    """Resolve the epoch-partitioned execution switch."""
    if override is not None:
        return bool(override)
    value = os.environ.get(EPOCH_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _EPOCH_OFF

#: Upper bound on recycled Timeout objects kept per environment.  The
#: refcount-based recycling below is only meaningful on CPython;
#: elsewhere the pool stays empty and every timeout is freshly built.
_TIMEOUT_POOL_CAP = 1024 if sys.implementation.name == "cpython" else 0


class Environment:
    """Owns the simulation clock and executes events in time order."""

    def __init__(self, initial_time=0, epoch=None):
        self._now = int(initial_time)
        #: Epoch-partitioned fast paths enabled (callers gate their
        #: :meth:`advance` skips on this so ``REPRO_EPOCH=legacy``
        #: restores the one-event-per-step baseline everywhere).
        self.epoch = epoch_enabled(epoch)
        self._queue = []
        self._eid = 0
        self._timeout_pool = []
        #: The process currently being resumed (None between steps).
        self.active_process = None
        #: Callbacks of the event being stepped that have not run yet.
        #: Together with the queue head this defines :meth:`quiescent`.
        self._cb_pending = 0
        #: Time bound of the innermost :meth:`run` call (``None`` when
        #: unbounded): :meth:`advance` must never move the clock past
        #: it, because a timeout beyond the horizon never fires.
        self._horizon = None

    @property
    def now(self):
        """Current simulation time in microseconds."""
        return self._now

    def schedule(self, event, priority=NORMAL, delay=0):
        """Queue ``event`` to fire ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heappush(self._queue, (self._now + int(delay), priority, self._eid, event))

    def timeout(self, delay, value=None):
        """Return an event firing after ``delay`` microseconds.

        Timeouts dominate event allocation (every burst, wait and
        service interval is one), so fired timeouts proven unreachable
        by the caller (refcount check in :meth:`step`) are recycled
        from a free list instead of being rebuilt from scratch.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = pool.pop()
            event.callbacks = []
            event._ok = True
            event._value = value
            event.delay = delay
            self._eid += 1
            heappush(self._queue,
                     (self._now + int(delay), NORMAL, self._eid, event))
            return event
        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh untriggered :class:`Event`."""
        return Event(self)

    def process(self, generator, name=None):
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def stop(self, value=None):
        """Halt the run loop immediately (usable from inside a process)."""
        raise StopSimulation(value)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue[0][0] if self._queue else None

    def quiescent(self):
        """True when no *other* event can run at the current instant.

        This is the epoch-boundary test of the partitioned run loop:
        when it holds, the code currently executing is the only engine
        that can act before simulation time advances, so it may keep
        running on its private virtual clock (e.g. the scheduler's
        synchronous CPU grant) without an observable ordering change.
        Two channels could interleave same-instant work and both are
        checked: queued events at ``now`` (the heap head) and the
        not-yet-run callbacks of the event being stepped — the latter
        are invisible to the queue, so :meth:`step` counts them.
        """
        return self._cb_pending == 0 and (
            not self._queue or self._queue[0][0] > self._now)

    def advance(self, delay):
        """Move the clock forward ``delay`` µs synchronously if — and
        only if — that is indistinguishable from yielding a timeout.

        This is the epoch-partitioned run loop's private virtual
        clock: a caller that would otherwise ``yield timeout(delay)``
        may instead keep executing with time advanced, skipping the
        schedule/heappop/callback/generator-resume round-trip.  The
        skip is provably equivalent when the timeout would have been
        the very next event processed *and* would actually fire:

        * no callback cascade is in flight (``_cb_pending``),
        * the target time does not pass the :meth:`run` horizon (a
          timeout past ``until`` never fires, so the caller must stay
          suspended exactly as the legacy path does), and
        * no queued event fires at or before the target — strict
          inequality, because an already-queued event at the same
          instant holds a smaller eid and would run first.

        Returns ``True`` after advancing, ``False`` (clock untouched)
        when the caller must fall back to a real timeout event.
        """
        if delay < 0:
            return False
        target = self._now + delay
        if (self._cb_pending == 0
                and (self._horizon is None or target <= self._horizon)
                and (not self._queue or self._queue[0][0] > target)):
            self._now = target
            return True
        return False

    def step(self):
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if len(callbacks) == 1:
            # Fast path: a single callback leaves ``_cb_pending`` at 0
            # throughout, so :meth:`quiescent` needs no bookkeeping.
            callbacks[0](event)
        else:
            remaining = len(callbacks)
            for callback in callbacks:
                remaining -= 1
                self._cb_pending = remaining
                callback(event)
        if not event._ok and not getattr(event, "defused", False):
            raise event._value
        # Recycle the timeout if nothing else references it: exactly
        # two refs means only the local `event` and the getrefcount
        # argument — no process, queue entry or caller can observe the
        # object being reused.
        if (type(event) is Timeout
                and len(self._timeout_pool) < _TIMEOUT_POOL_CAP
                and getrefcount(event) == 2):
            self._timeout_pool.append(event)

    def run(self, until=None):
        """Run until the queue drains, ``until`` µs, or an event fires.

        ``until`` may be an integer time, an :class:`Event` (run until
        it fires, returning its value), or ``None`` (run to exhaustion).
        """
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            until = int(until)
            if until < self._now:
                raise ValueError(
                    f"until ({until}) must not be before current time ({self._now})")
        self._horizon = until if stop_event is None else None
        # The loop below is :meth:`step` unrolled with everything bound
        # to locals — the dispatch overhead of the method call and the
        # repeated attribute loads is measurable at millions of events.
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        bounded = stop_event is None and until is not None
        try:
            while queue:
                if stop_event is not None and stop_event.processed:
                    break
                if bounded and queue[0][0] > until:
                    self._now = until
                    break
                self._now, _, _, event = pop(queue)
                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    remaining = len(callbacks)
                    for callback in callbacks:
                        remaining -= 1
                        self._cb_pending = remaining
                        callback(event)
                if not event._ok and not getattr(event, "defused", False):
                    raise event._value
                if (type(event) is Timeout
                        and len(pool) < _TIMEOUT_POOL_CAP
                        and getrefcount(event) == 2):
                    pool.append(event)
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        finally:
            self._horizon = None
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run(until=event) exhausted the queue "
                                      "before the event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None
