"""The simulation environment: clock, event queue and run loop.

Simulation time is an integer number of **microseconds**.  Using
integers keeps event ordering exact and runs deterministic — two runs
with the same seed produce bit-identical traces.
"""

import sys
from heapq import heappop, heappush
from sys import getrefcount

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.exceptions import SimulationError, StopSimulation

#: Default event priority.  Lower numbers fire first at equal times.
NORMAL = 1
#: Priority used for urgent deliveries such as interrupts.
URGENT = 0

#: Upper bound on recycled Timeout objects kept per environment.  The
#: refcount-based recycling below is only meaningful on CPython;
#: elsewhere the pool stays empty and every timeout is freshly built.
_TIMEOUT_POOL_CAP = 1024 if sys.implementation.name == "cpython" else 0


class Environment:
    """Owns the simulation clock and executes events in time order."""

    def __init__(self, initial_time=0):
        self._now = int(initial_time)
        self._queue = []
        self._eid = 0
        self._timeout_pool = []
        #: The process currently being resumed (None between steps).
        self.active_process = None

    @property
    def now(self):
        """Current simulation time in microseconds."""
        return self._now

    def schedule(self, event, priority=NORMAL, delay=0):
        """Queue ``event`` to fire ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heappush(self._queue, (self._now + int(delay), priority, self._eid, event))

    def timeout(self, delay, value=None):
        """Return an event firing after ``delay`` microseconds.

        Timeouts dominate event allocation (every burst, wait and
        service interval is one), so fired timeouts proven unreachable
        by the caller (refcount check in :meth:`step`) are recycled
        from a free list instead of being rebuilt from scratch.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = pool.pop()
            event.callbacks = []
            event._ok = True
            event._value = value
            event.delay = delay
            self.schedule(event, delay=delay)
            return event
        return Timeout(self, delay, value)

    def event(self):
        """Return a fresh untriggered :class:`Event`."""
        return Event(self)

    def process(self, generator, name=None):
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def stop(self, value=None):
        """Halt the run loop immediately (usable from inside a process)."""
        raise StopSimulation(value)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue[0][0] if self._queue else None

    def step(self):
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "defused", False):
            raise event._value
        # Recycle the timeout if nothing else references it: exactly
        # two refs means only the local `event` and the getrefcount
        # argument — no process, queue entry or caller can observe the
        # object being reused.
        if (type(event) is Timeout
                and len(self._timeout_pool) < _TIMEOUT_POOL_CAP
                and getrefcount(event) == 2):
            self._timeout_pool.append(event)

    def run(self, until=None):
        """Run until the queue drains, ``until`` µs, or an event fires.

        ``until`` may be an integer time, an :class:`Event` (run until
        it fires, returning its value), or ``None`` (run to exhaustion).
        """
        stop_event = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            until = int(until)
            if until < self._now:
                raise ValueError(
                    f"until ({until}) must not be before current time ({self._now})")
        try:
            while self._queue:
                if stop_event is not None and stop_event.processed:
                    break
                if until is not None and not isinstance(until, Event):
                    if self._queue[0][0] > until:
                        self._now = until
                        break
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run(until=event) exhausted the queue "
                                      "before the event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None
