"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic coroutine style popularized by SimPy:
simulation *processes* are Python generators that ``yield`` events; the
:class:`~repro.sim.environment.Environment` resumes a process when the
event it is waiting on fires.

Only the features needed by the reproduction are implemented — this is
a deliberately small, fully-deterministic kernel, not a general-purpose
framework.
"""

from heapq import heappush

from repro.sim.exceptions import Interrupt, SimulationError

#: Sentinel for "event has not fired yet".
PENDING = object()

#: Mirrors :data:`repro.sim.environment.NORMAL` (imported lazily there
#: to avoid a cycle); the inlined scheduling fast paths below hardcode
#: the default priority exactly as ``Environment.schedule`` does.
_NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (just created),
    *triggered* (scheduled to fire, value decided) and *processed*
    (callbacks have run).  Waiting processes register callbacks; when
    the event is processed each callback receives the event.

    Events are the most-allocated objects in a run, so the whole
    hierarchy uses ``__slots__``.  ``defused`` is a slot rather than an
    ad-hoc attribute: it is set lazily (only on events whose failure is
    handled) and read with ``getattr(..., "defused", False)``, which
    still works for unset slots.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True

    @property
    def triggered(self):
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event fired successfully (not failed)."""
        if not self.triggered:
            raise SimulationError("value of untriggered event is undecided")
        return self._ok

    @property
    def value(self):
        """The value the event fired with (or the exception on failure)."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is undecided")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env.schedule(self)`` — one call fewer on the path
        # every grant, join and wakeup takes.
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, _NORMAL, env._eid, self))
        return self

    def fail(self, exception):
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units.

    Fired timeouts with no remaining references are recycled through
    :attr:`Environment._timeout_pool` — see ``Environment.timeout``.
    """

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        env._eid += 1
        heappush(env._queue,
                 (env._now + int(delay), _NORMAL, env._eid, self))


class AnyOf(Event):
    """Fires as soon as *any* of ``events`` fires.

    The value is a dict mapping each already-fired event to its value.
    """

    __slots__ = ("events",)

    def __init__(self, env, events):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._collect(event)
                break
            event.callbacks.append(self._collect)

    def _collect(self, _event):
        if self.triggered:
            return
        done = {e: e.value for e in self.events if e.processed and e.ok}
        failed = [e for e in self.events if e.processed and not e.ok]
        if failed:
            self.fail(failed[0].value)
        else:
            self.succeed(done)


class AllOf(Event):
    """Fires once *all* of ``events`` have fired.

    The value is a dict mapping every event to its value.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, env, events):
        super().__init__(env)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.processed:
                continue
            self._remaining += 1
            event.callbacks.append(self._collect)
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})

    def _collect(self, event):
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that fires (with the generator's
    return value) when the generator finishes, so processes can wait
    for each other simply by yielding the :class:`Process` object.
    """

    __slots__ = ("generator", "name", "target")

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if just
        #: started or already finished).
        self.target = None
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered immediately (at the current
        simulation time) regardless of what the process is waiting on.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        self.env.schedule(event, priority=0)
        event.callbacks.append(self._resume)

    def _resume(self, event):
        # The single most-executed function of a run (every event with
        # a waiting process lands here): slot reads replace the
        # ``triggered``/``processed`` properties and ``env`` is bound
        # once — same semantics, fewer dispatches.
        if self._value is not PENDING:
            return
        env = self.env
        env.active_process = self
        try:
            if event._ok:
                next_target = self.generator.send(event._value)
            else:
                event.defused = True
                next_target = self.generator.throw(event._value)
        except StopIteration as stop:
            env.active_process = None
            self._ok = True
            self._value = stop.value
            env._eid += 1
            heappush(env._queue, (env._now, _NORMAL, env._eid, self))
            return
        except BaseException as error:
            env.active_process = None
            self._fail_with(error)
            return
        env.active_process = None
        if not isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_target!r}")
            self.generator.throw(error)
            return
        self.target = next_target
        if next_target.callbacks is None:
            # Already-processed events resume the process on the next
            # scheduling step to preserve FIFO ordering.
            relay = Event(self.env)
            relay._ok = next_target._ok
            relay._value = next_target._value
            relay.defused = True
            self.env.schedule(relay)
            relay.callbacks.append(self._resume)
        else:
            next_target.callbacks.append(self._resume)

    def _fail_with(self, error):
        self._ok = False
        self._value = error
        self.env.schedule(self)

    def __repr__(self):
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
