"""Exceptions raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    Users normally trigger this through ``env.stop()`` from inside a
    process; it is caught by the event loop and never escapes.
    """


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The interrupting party supplies ``cause``, which the interrupted
    process can inspect to decide how to react (e.g. a thread being
    preempted, or an application being asked to shut down).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return f"Interrupt(cause={self.cause!r})"
