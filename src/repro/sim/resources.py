"""Shared-resource primitives built on the event kernel.

These are used by higher layers: :class:`Resource` models exclusive
devices (a GPU engine executing one packet at a time), :class:`Store`
models bounded producer/consumer queues (video pipelines, browser IPC).
"""

from collections import deque

from repro.sim.events import Event


class Resource:
    """A capacity-limited resource with FIFO granting.

    Usage from a process::

        request = resource.request()
        yield request
        ...use the resource...
        resource.release(request)
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users = set()
        self.queue = deque()

    @property
    def count(self):
        """Number of requests currently holding the resource."""
        return len(self.users)

    def request(self):
        """Return an event that fires when the resource is granted."""
        event = Event(self.env)
        if len(self.users) < self.capacity:
            self.users.add(event)
            event.succeed()
        else:
            self.queue.append(event)
        return event

    def release(self, request):
        """Release a previously granted ``request``."""
        if request not in self.users:
            raise ValueError("releasing a request that does not hold the resource")
        self.users.discard(request)
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.add(nxt)
            nxt.succeed()


class Store:
    """A bounded FIFO buffer of items with blocking put/get.

    ``capacity=None`` means unbounded.
    """

    def __init__(self, env, capacity=None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items = deque()
        self._getters = deque()
        self._putters = deque()

    def __len__(self):
        return len(self.items)

    def put(self, item):
        """Return an event that fires once ``item`` is stored."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                    self.capacity is None or len(self.items) < self.capacity):
                putter, item = self._putters.popleft()
                self.items.append(item)
                putter.succeed()
                progressed = True
            while self._getters and self.items:
                getter = self._getters.popleft()
                getter.succeed(self.items.popleft())
                progressed = True
