"""Event-tracing substrate — the reproduction's ETW/WPA substitute.

Pipeline (mirrors the paper's Fig. 1)::

    TraceSession.start()            # UIforETW "start trace"
    ... simulated workload runs ...
    trace = session.stop()          # save .etl
    cpu  = CpuUsagePreciseTable.from_trace(trace)   # WPA extraction
    gpu  = GpuUtilizationTable.from_trace(trace)
    export_csv(cpu, "cpu.csv")      # wpaexporter
    ... repro.metrics consumes the tables ...
"""

from repro.trace.analysis import (
    SampledProfile,
    WaitAnalysis,
    gpu_by_process,
    threads_by_time,
    timeline_by_process,
)
from repro.trace.columns import (
    CswitchColumns,
    FrameColumns,
    GpuPacketColumns,
    MarkColumns,
    NameTable,
)
from repro.trace.etl import EtlTrace
from repro.trace.records import (
    ContextSwitchRecord,
    FramePresentRecord,
    GpuPacketRecord,
    MarkRecord,
)
from repro.trace.salvage import (
    SalvageInfo,
    SalvageResult,
    salvage_prefix,
    truncate_trace,
)
from repro.trace.session import (
    ALL_PROVIDERS,
    CPU_USAGE_PRECISE,
    FRAME_PRESENTS,
    GPU_UTILIZATION_FM,
    MARKS,
    NullSession,
    TraceSession,
)
from repro.trace.wpa import (
    CpuUsagePreciseTable,
    GpuUtilizationTable,
    export_csv,
    load_cpu_csv,
    load_gpu_csv,
)

__all__ = [
    "ALL_PROVIDERS",
    "CPU_USAGE_PRECISE",
    "ContextSwitchRecord",
    "CpuUsagePreciseTable",
    "CswitchColumns",
    "EtlTrace",
    "FrameColumns",
    "GpuPacketColumns",
    "MarkColumns",
    "NameTable",
    "FRAME_PRESENTS",
    "FramePresentRecord",
    "GPU_UTILIZATION_FM",
    "GpuPacketRecord",
    "GpuUtilizationTable",
    "MARKS",
    "MarkRecord",
    "NullSession",
    "SalvageInfo",
    "SalvageResult",
    "SampledProfile",
    "WaitAnalysis",
    "TraceSession",
    "export_csv",
    "salvage_prefix",
    "truncate_trace",
    "load_cpu_csv",
    "gpu_by_process",
    "threads_by_time",
    "load_gpu_csv",
    "timeline_by_process",
]
