"""Additional trace analyses beyond the two WPA tables the paper uses.

* :func:`timeline_by_process` — per-process CPU time and share of the
  machine (WPA's "CPU Usage ... by Process" roll-up).
* :class:`SampledProfile` — a CPU Usage (Sampled) substitute: sample
  the precise timeline at a fixed rate and count hits per process,
  useful to confirm the sampled and precise views agree.
* :class:`WaitAnalysis` — scheduler-latency statistics from the
  Ready-Time column: how long threads sat runnable before being
  dispatched (the latency behind VR frame misses at low core counts).
"""

from dataclasses import dataclass

from repro.metrics.stats import Summary, summarize


def timeline_by_process(cpu_table, n_logical):
    """Per-process busy µs and share of total machine capacity.

    Returns ``{process: (busy_us, share)}`` where share is busy time
    divided by ``window * n_logical``.
    """
    window = cpu_table.trace_stop - cpu_table.trace_start
    if window <= 0:
        raise ValueError("empty trace window")
    busy = {}
    for row in cpu_table.rows:
        busy[row[0]] = busy.get(row[0], 0) + (row[7] - row[6])
    capacity = window * n_logical
    return {process: (total, total / capacity)
            for process, total in busy.items()}


@dataclass
class SampledProfile:
    """Counted samples per process at a fixed sampling interval."""

    interval_us: int
    samples: dict          # process -> hit count
    total_samples: int     # sample points x logical CPUs

    def share(self, process):
        """Estimated machine share of ``process`` from the samples."""
        if self.total_samples == 0:
            return 0.0
        return self.samples.get(process, 0) / self.total_samples

    @classmethod
    def from_table(cls, cpu_table, n_logical, interval_us=1000):
        """Sample the precise timeline every ``interval_us``.

        Mirrors ETW's profile interrupt (default 1 ms): at each sample
        point, each logical CPU attributes one sample to whatever was
        running on it.
        """
        if interval_us <= 0:
            raise ValueError("interval must be positive")
        start, stop = cpu_table.trace_start, cpu_table.trace_stop
        points = range(start, stop, interval_us)
        n_points = len(points)
        # Build per-cpu interval lists once, then walk them in order.
        by_cpu = {}
        for row in cpu_table.rows:
            by_cpu.setdefault(row[4], []).append((row[6], row[7], row[0]))
        samples = {}
        for intervals in by_cpu.values():
            intervals.sort()
            index = 0
            for point in points:
                while index < len(intervals) and intervals[index][1] <= point:
                    index += 1
                if index < len(intervals):
                    begin, _end, process = intervals[index]
                    if begin <= point:
                        samples[process] = samples.get(process, 0) + 1
        return cls(interval_us=interval_us, samples=samples,
                   total_samples=n_points * n_logical)


@dataclass
class WaitAnalysis:
    """Scheduler-latency (ready -> running) statistics."""

    per_process: dict      # process -> Summary of wait times (µs)

    def summary(self, process):
        return self.per_process[process]

    @classmethod
    def from_table(cls, cpu_table, processes=None):
        waits = {}
        for row in cpu_table.rows:
            process = row[0]
            if processes is not None and process not in processes:
                continue
            waits.setdefault(process, []).append(row[6] - row[5])
        return cls(per_process={process: summarize(values)
                                for process, values in waits.items()})

    def worst_process(self):
        """Process with the highest mean scheduler latency."""
        if not self.per_process:
            raise ValueError("no processes analysed")
        return max(self.per_process.items(),
                   key=lambda item: item[1].mean)[0]


def gpu_by_process(gpu_table):
    """Per-process GPU busy µs and utilization share of the window.

    Mirrors WPA's per-process roll-up of the GPU Utilization table;
    summed packet running time, like the paper's metric.
    """
    window = gpu_table.trace_stop - gpu_table.trace_start
    if window <= 0:
        raise ValueError("empty trace window")
    busy = {}
    for row in gpu_table.rows:
        busy[row[0]] = busy.get(row[0], 0) + (row[6] - row[5])
    return {process: (total, 100.0 * total / window)
            for process, total in busy.items()}


def threads_by_time(cpu_table, process=None, top=None):
    """Per-thread busy time, descending — WPA's thread-level view.

    Returns ``[(process, thread_name, tid, busy_us), ...]``; restrict
    to one ``process`` and/or the ``top`` N threads.
    """
    busy = {}
    for row in cpu_table.rows:
        if process is not None and row[0] != process:
            continue
        key = (row[0], row[3], row[2])
        busy[key] = busy.get(key, 0) + (row[7] - row[6])
    ranked = sorted(((p, name, tid, total)
                     for (p, name, tid), total in busy.items()),
                    key=lambda item: item[3], reverse=True)
    return ranked[:top] if top else ranked
