"""Columnar trace buffers — flat arrays instead of per-record objects.

The hot loops of a run emit one trace event per scheduling interval /
GPU packet / frame.  Buffering each as a frozen dataclass costs an
object allocation plus ``__post_init__`` validation per event and keeps
hundreds of bytes alive per record.  These column stores keep the same
information as parallel ``array('q')`` columns plus interned name
tables: an append is a handful of integer pushes, and a million
context-switch records retain ~48 MB of dataclasses but only ~8 bytes
per column here.

Emitters (scheduler, GPU engines) construct records whose time columns
are consistent by construction, so appends skip the dataclass
validation; :meth:`records` materializes real dataclass instances —
re-running that validation — for the existing ``EtlTrace`` record-list
API, and :meth:`rows` yields the plain tuples the WPA tables consume
without building dataclasses at all.
"""

from array import array

from repro.trace.records import (
    ContextSwitchRecord,
    FramePresentRecord,
    GpuPacketRecord,
    MarkRecord,
)


class NameTable:
    """String interning: stable small integer ids for repeated names."""

    __slots__ = ("names", "_ids")

    def __init__(self):
        self.names = []
        self._ids = {}

    def intern(self, name):
        """Return the id of ``name``, assigning one on first sight."""
        table = self._ids
        index = table.get(name)
        if index is None:
            index = len(self.names)
            table[name] = index
            self.names.append(name)
        return index

    def __len__(self):
        return len(self.names)


class _ColumnStore:
    """Shared sizing/accounting helpers of the four stores."""

    __slots__ = ()

    def __len__(self):
        raise NotImplementedError

    def __bool__(self):
        return len(self) > 0

    def nbytes(self):
        """Approximate retained bytes of the column buffers."""
        total = 0
        for name in self.__slots__:
            column = getattr(self, name)
            if isinstance(column, array):
                total += column.buffer_info()[1] * column.itemsize
            elif isinstance(column, NameTable):
                total += sum(len(n) for n in column.names)
        return total


class CswitchColumns(_ColumnStore):
    """CPU Usage (Precise) rows as columns."""

    __slots__ = ("process_names", "thread_names", "_process", "_pid",
                 "_tid", "_thread", "_cpu", "_ready", "_in", "_out")

    def __init__(self):
        self.process_names = NameTable()
        self.thread_names = NameTable()
        self._process = array("q")
        self._pid = array("q")
        self._tid = array("q")
        self._thread = array("q")
        self._cpu = array("q")
        self._ready = array("q")
        self._in = array("q")
        self._out = array("q")

    def append(self, process, pid, tid, thread_name, cpu,
               ready_time, switch_in_time, switch_out_time):
        # Interning is inlined (one dict probe in the common case):
        # this method is the per-context-switch hot path.
        table = self.process_names
        index = table._ids.get(process)
        if index is None:
            index = table.intern(process)
        self._process.append(index)
        self._pid.append(pid)
        self._tid.append(tid)
        table = self.thread_names
        index = table._ids.get(thread_name)
        if index is None:
            index = table.intern(thread_name)
        self._thread.append(index)
        self._cpu.append(cpu)
        self._ready.append(ready_time)
        self._in.append(switch_in_time)
        self._out.append(switch_out_time)

    def __len__(self):
        return len(self._pid)

    def used_processes(self):
        return set(self.process_names.names)

    def rows(self):
        """WPA-table tuples, no dataclass materialization."""
        processes = self.process_names.names
        threads = self.thread_names.names
        return [(processes[p], pid, tid, threads[t], cpu, r, i, o)
                for p, pid, tid, t, cpu, r, i, o
                in zip(self._process, self._pid, self._tid, self._thread,
                       self._cpu, self._ready, self._in, self._out)]

    def records(self):
        return [ContextSwitchRecord(*row) for row in self.rows()]


class GpuPacketColumns(_ColumnStore):
    """GPU Utilization (FM) rows as columns."""

    __slots__ = ("process_names", "engine_names", "packet_types",
                 "_process", "_pid", "_engine", "_type", "_submit",
                 "_start", "_finished")

    def __init__(self):
        self.process_names = NameTable()
        self.engine_names = NameTable()
        self.packet_types = NameTable()
        self._process = array("q")
        self._pid = array("q")
        self._engine = array("q")
        self._type = array("q")
        self._submit = array("q")
        self._start = array("q")
        self._finished = array("q")

    def append(self, process, pid, engine, packet_type,
               submit_time, start_execution, finished):
        self._process.append(self.process_names.intern(process))
        self._pid.append(pid)
        self._engine.append(self.engine_names.intern(engine))
        self._type.append(self.packet_types.intern(packet_type))
        self._submit.append(submit_time)
        self._start.append(start_execution)
        self._finished.append(finished)

    def __len__(self):
        return len(self._pid)

    def used_processes(self):
        return set(self.process_names.names)

    def rows(self):
        processes = self.process_names.names
        engines = self.engine_names.names
        types = self.packet_types.names
        return [(processes[p], pid, engines[e], types[t], sub, start, fin)
                for p, pid, e, t, sub, start, fin
                in zip(self._process, self._pid, self._engine, self._type,
                       self._submit, self._start, self._finished)]

    def records(self):
        return [GpuPacketRecord(*row) for row in self.rows()]


class FrameColumns(_ColumnStore):
    """Frame-present records as columns."""

    __slots__ = ("process_names", "_process", "_pid", "_present",
                 "_target_fps", "_reprojected")

    def __init__(self):
        self.process_names = NameTable()
        self._process = array("q")
        self._pid = array("q")
        self._present = array("q")
        self._target_fps = array("q")
        self._reprojected = array("b")

    def append(self, process, pid, present_time, target_fps, reprojected):
        self._process.append(self.process_names.intern(process))
        self._pid.append(pid)
        self._present.append(present_time)
        self._target_fps.append(target_fps)
        self._reprojected.append(1 if reprojected else 0)

    def __len__(self):
        return len(self._pid)

    def used_processes(self):
        return set(self.process_names.names)

    def records(self):
        processes = self.process_names.names
        return [FramePresentRecord(processes[p], pid, present, fps, bool(re))
                for p, pid, present, fps, re
                in zip(self._process, self._pid, self._present,
                       self._target_fps, self._reprojected)]


class MarkColumns(_ColumnStore):
    """Application mark records as columns."""

    __slots__ = ("process_names", "labels", "_process", "_pid", "_time",
                 "_label")

    def __init__(self):
        self.process_names = NameTable()
        self.labels = NameTable()
        self._process = array("q")
        self._pid = array("q")
        self._time = array("q")
        self._label = array("q")

    def append(self, process, pid, time, label):
        self._process.append(self.process_names.intern(process))
        self._pid.append(pid)
        self._time.append(time)
        self._label.append(self.labels.intern(label))

    def __len__(self):
        return len(self._pid)

    def used_processes(self):
        return set(self.process_names.names)

    def records(self):
        processes = self.process_names.names
        labels = self.labels.names
        return [MarkRecord(processes[p], pid, time, labels[lab])
                for p, pid, time, lab
                in zip(self._process, self._pid, self._time, self._label)]
