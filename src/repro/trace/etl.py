"""The Event Trace Log container (our ``.etl`` file substitute).

A finished trace holds every record emitted between ``start_time`` and
``stop_time`` and can be saved to / loaded from a JSON-lines file, the
role the binary ``.etl`` files play in the paper's workflow.

Each record group may be backed either by a plain list of dataclass
records (the historical form, still used by tests and ``load``) or by
a columnar store from :mod:`repro.trace.columns`.  Columnar groups are
materialized into dataclass lists lazily on first attribute access;
the WPA extraction path never materializes at all — it reads the raw
tuples via :meth:`cswitch_rows` / :meth:`gpu_rows`.
"""

import json
from dataclasses import asdict

from repro.trace.records import (
    ContextSwitchRecord,
    FramePresentRecord,
    GpuPacketRecord,
    MarkRecord,
)

_RECORD_TYPES = {
    "cswitch": ContextSwitchRecord,
    "gpu_packet": GpuPacketRecord,
    "frame": FramePresentRecord,
    "mark": MarkRecord,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in _RECORD_TYPES.items()}


class EtlTrace:
    """An immutable-by-convention bundle of trace records."""

    def __init__(self, start_time, stop_time, cswitches=(), gpu_packets=(),
                 frames=(), marks=(), machine_name=""):
        if stop_time < start_time:
            raise ValueError("stop_time before start_time")
        self.start_time = start_time
        self.stop_time = stop_time
        self._sources = {
            "cswitches": cswitches,
            "gpu_packets": gpu_packets,
            "frames": frames,
            "marks": marks,
        }
        self._materialized = {}
        self.machine_name = machine_name
        self._processes = None

    def _group(self, name):
        records = self._materialized.get(name)
        if records is None:
            source = self._sources[name]
            records = (source.records() if hasattr(source, "records")
                       else list(source))
            self._materialized[name] = records
        return records

    @property
    def cswitches(self):
        return self._group("cswitches")

    @property
    def gpu_packets(self):
        return self._group("gpu_packets")

    @property
    def frames(self):
        return self._group("frames")

    @property
    def marks(self):
        return self._group("marks")

    @property
    def duration(self):
        """Trace length in microseconds."""
        return self.stop_time - self.start_time

    @property
    def processes(self):
        """Sorted names of every process appearing in the trace.

        Memoized on first access (metric and report code reads this
        repeatedly); columnar groups answer from their interned name
        tables without materializing records.  Code that mutates the
        record lists in place — against the immutable-by-convention
        contract — must reset ``_processes`` to ``None``;
        ``filter_processes`` returns a fresh trace, so the convention
        holds there.
        """
        if self._processes is None:
            names = set()
            for group in ("cswitches", "gpu_packets"):
                records = self._materialized.get(group)
                if records is not None:
                    names.update(r.process for r in records)
                    continue
                source = self._sources[group]
                if hasattr(source, "used_processes"):
                    names.update(source.used_processes())
                else:
                    names.update(r.process for r in source)
            self._processes = tuple(sorted(names))
        return list(self._processes)

    def cswitch_store(self):
        """The columnar cswitch store backing this trace, or ``None``
        when the group is a plain record list.  The batched metric
        kernels (:mod:`repro.metrics.kernels`) sweep its ``array('q')``
        buffers directly, skipping tuple materialization entirely."""
        source = self._sources["cswitches"]
        return source if hasattr(source, "rows") else None

    def gpu_store(self):
        """The columnar GPU-packet store, or ``None`` (see
        :meth:`cswitch_store`)."""
        source = self._sources["gpu_packets"]
        return source if hasattr(source, "rows") else None

    def cswitch_rows(self):
        """CPU Usage (Precise) tuples ``(process, pid, tid, thread_name,
        cpu, ready, switch_in, switch_out)`` — columnar fast path avoids
        dataclass materialization."""
        source = self._sources["cswitches"]
        if "cswitches" not in self._materialized and hasattr(source, "rows"):
            return source.rows()
        return [(r.process, r.pid, r.tid, r.thread_name, r.cpu,
                 r.ready_time, r.switch_in_time, r.switch_out_time)
                for r in self.cswitches]

    def gpu_rows(self):
        """GPU Utilization (FM) tuples ``(process, pid, engine,
        packet_type, submit, start_execution, finished)``."""
        source = self._sources["gpu_packets"]
        if "gpu_packets" not in self._materialized and hasattr(source, "rows"):
            return source.rows()
        return [(r.process, r.pid, r.engine, r.packet_type,
                 r.submit_time, r.start_execution, r.finished)
                for r in self.gpu_packets]

    def filter_processes(self, predicate):
        """A new trace keeping only records whose process satisfies
        ``predicate`` — this is the paper's application-level filtering
        (application TLP, as opposed to Blake et al.'s system TLP)."""
        return EtlTrace(
            self.start_time,
            self.stop_time,
            [r for r in self.cswitches if predicate(r.process)],
            [r for r in self.gpu_packets if predicate(r.process)],
            [r for r in self.frames if predicate(r.process)],
            [r for r in self.marks if predicate(r.process)],
            machine_name=self.machine_name,
        )

    def save(self, path):
        """Write the trace as JSON lines (header line + one per record)."""
        with open(path, "w", encoding="utf-8") as fh:
            header = {
                "kind": "header",
                "start_time": self.start_time,
                "stop_time": self.stop_time,
                "machine_name": self.machine_name,
            }
            fh.write(json.dumps(header) + "\n")
            for group in (self.cswitches, self.gpu_packets, self.frames, self.marks):
                for record in group:
                    row = {"kind": _KIND_BY_TYPE[type(record)]}
                    row.update(asdict(record))
                    fh.write(json.dumps(row) + "\n")

    @classmethod
    def load(cls, path):
        """Read a trace previously written by :meth:`save`."""
        groups = {kind: [] for kind in _RECORD_TYPES}
        header = None
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                row = json.loads(line)
                kind = row.pop("kind")
                if kind == "header":
                    header = row
                else:
                    groups[kind].append(_RECORD_TYPES[kind](**row))
        if header is None:
            raise ValueError(f"{path} has no trace header line")
        return cls(
            header["start_time"],
            header["stop_time"],
            cswitches=groups["cswitch"],
            gpu_packets=groups["gpu_packet"],
            frames=groups["frame"],
            marks=groups["mark"],
            machine_name=header.get("machine_name", ""),
        )
