"""Trace record types — the ETL substitute's event schema.

The fields mirror the WPA columns the paper extracts (Fig. 1):

* CPU Usage (Precise): ``Process``, ``CPU``, ``Ready Time``,
  ``Switch-In Time`` (we add the switch-out time so busy intervals can
  be reconstructed without pairing separate raw events).
* GPU Utilization (FM): ``Process``, ``Start Execution``, ``Finished``.

All times are integer microseconds on the simulation clock.
"""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ContextSwitchRecord:
    """One scheduling interval of a thread on a logical CPU."""

    process: str
    pid: int
    tid: int
    thread_name: str
    cpu: int
    ready_time: int
    switch_in_time: int
    switch_out_time: int

    def __post_init__(self):
        if not self.ready_time <= self.switch_in_time <= self.switch_out_time:
            raise ValueError(
                f"inconsistent switch record times: ready={self.ready_time} "
                f"in={self.switch_in_time} out={self.switch_out_time}")

    @property
    def duration(self):
        """Microseconds the thread spent running in this interval."""
        return self.switch_out_time - self.switch_in_time

    @property
    def wait_time(self):
        """Microseconds spent ready-but-not-running (scheduler latency)."""
        return self.switch_in_time - self.ready_time


@dataclass(frozen=True, slots=True)
class GpuPacketRecord:
    """One GPU work packet executed on an engine.

    A *packet* is what WPA's GPU Utilization (FM) analysis shows: a
    batch of API calls packaged into a command stream and executed as
    a unit on one GPU engine.
    """

    process: str
    pid: int
    engine: str
    packet_type: str
    submit_time: int
    start_execution: int
    finished: int

    def __post_init__(self):
        if not self.submit_time <= self.start_execution <= self.finished:
            raise ValueError(
                f"inconsistent packet times: submit={self.submit_time} "
                f"start={self.start_execution} finish={self.finished}")

    @property
    def running_time(self):
        """Microseconds the packet spent executing on the engine."""
        return self.finished - self.start_execution

    @property
    def queue_time(self):
        """Microseconds the packet waited in the engine queue."""
        return self.start_execution - self.submit_time


@dataclass(frozen=True, slots=True)
class FramePresentRecord:
    """A frame presented to the display / VR compositor."""

    process: str
    pid: int
    present_time: int
    target_fps: int
    reprojected: bool = False


@dataclass(frozen=True, slots=True)
class MarkRecord:
    """An application-defined annotation (phase begin/end, input event)."""

    process: str
    pid: int
    time: int
    label: str
