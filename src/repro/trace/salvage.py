"""Partial-trace salvage — recover the longest valid prefix.

A long characterization campaign should degrade, not abort, when one
trace comes back imperfect (TASKPROF makes the same argument for
profiling pipelines): a capture truncated by a dying tracer, a skewed
clock or a double-booked CPU invalidates the *tail* of a trace, not
the minutes of consistent schedule before it.  This module turns a
trace the :class:`~repro.validate.invariants.TraceValidator` rejects
into the longest time-prefix that passes the full invariant catalogue,
so Eq.-1 TLP and GPU utilization can be recomputed over the salvaged
window and reported as ``partial`` instead of being thrown away.

The cut search is driven by the validator itself: every violation that
can be placed in time carries the earliest simulation time at which
the trace is known inconsistent (``Violation.time``), and
:func:`salvage_prefix` repeatedly truncates just before the earliest
such time until the prefix validates.  Corruption confined to a suffix
— every registered fault in :mod:`repro.validate.faults` — salvages in
one or two iterations; corruption the validator cannot place in time
(e.g. a pure ``busy-conservation`` disagreement) is unsalvageable and
reported as such.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SalvageResult:
    """Outcome of a successful :func:`salvage_prefix` pass."""

    #: The salvaged trace; its window is ``[start_time, cut_time]``.
    trace: object
    #: Simulation time the capture was cut at.
    cut_time: int
    #: Stop time the rejected trace originally advertised.
    original_stop: int
    #: Records dropped because they began at/after the cut.
    dropped_cswitches: int
    dropped_gpu_packets: int
    #: Records whose end was clipped to the cut (they straddled it).
    clipped_cswitches: int
    clipped_gpu_packets: int
    #: Invariants the original trace violated, in catalogue order.
    invariants: tuple = ()

    @property
    def salvaged_us(self):
        """Length of the recovered window."""
        return self.cut_time - self.trace.start_time

    def to_payload(self):
        """JSON-serializable summary (journals, persistence)."""
        return {
            "cut_time": self.cut_time,
            "original_stop": self.original_stop,
            "salvaged_us": self.salvaged_us,
            "dropped_cswitches": self.dropped_cswitches,
            "dropped_gpu_packets": self.dropped_gpu_packets,
            "clipped_cswitches": self.clipped_cswitches,
            "clipped_gpu_packets": self.clipped_gpu_packets,
            "invariants": list(self.invariants),
        }


@dataclass(frozen=True)
class SalvageInfo:
    """Why a :class:`~repro.harness.runner.SingleRun` is partial.

    ``reason`` is ``"invalid-trace"`` (the validator rejected the
    capture and a prefix was recovered) or ``"crash"`` (the simulation
    died mid-run and whatever the session had recorded was kept).
    Carried on the run end to end — suite tables, persistence and the
    CLI all read it — and deliberately small/picklable: it summarizes
    the salvage, it does not retain the trace.
    """

    reason: str
    cut_time: int
    original_stop: int
    salvaged_us: int
    dropped_cswitches: int = 0
    dropped_gpu_packets: int = 0
    invariants: tuple = ()
    detail: str = ""

    def to_payload(self):
        return {
            "reason": self.reason,
            "cut_time": self.cut_time,
            "original_stop": self.original_stop,
            "salvaged_us": self.salvaged_us,
            "dropped_cswitches": self.dropped_cswitches,
            "dropped_gpu_packets": self.dropped_gpu_packets,
            "invariants": list(self.invariants),
            "detail": self.detail,
        }


@dataclass
class _Truncation:
    """One truncation pass: the cut trace plus its drop/clip counts
    (relative to the trace the cut was taken from)."""

    trace: object
    dropped_cswitches: int = 0
    dropped_gpu_packets: int = 0
    clipped_cswitches: int = 0
    clipped_gpu_packets: int = 0


def truncate_trace(trace, cut):
    """The trace a capture stopped at ``cut`` would have produced.

    Scheduling slices and GPU packets that begin at/after the cut are
    dropped; ones straddling it are clipped to end at the cut (they
    were genuinely running when the shorter capture would have closed).
    Nothing else is repaired: a record that is inconsistent *before*
    the cut stays inconsistent, which is what keeps
    :func:`salvage_prefix` honest about "longest valid prefix" rather
    than silently rewriting data.
    """
    from repro.trace.etl import EtlTrace

    if cut < trace.start_time:
        raise ValueError("cut before trace start")
    result = _Truncation(trace=None)
    cswitches = []
    for row in trace.cswitch_rows():
        if row[6] >= cut:
            result.dropped_cswitches += 1
            continue
        if row[7] > cut:
            row = row[:7] + (cut,)
            result.clipped_cswitches += 1
        cswitches.append(row)
    gpu_packets = []
    for row in trace.gpu_rows():
        if row[5] >= cut:
            result.dropped_gpu_packets += 1
            continue
        if row[6] > cut:
            row = row[:6] + (cut,)
            result.clipped_gpu_packets += 1
        gpu_packets.append(row)
    frames = [f for f in trace.frames if f.present_time <= cut]
    marks = [m for m in trace.marks if m.time <= cut]
    result.trace = EtlTrace(
        trace.start_time, cut,
        cswitches=_columns_from_rows("cswitch", cswitches),
        gpu_packets=_columns_from_rows("gpu", gpu_packets),
        frames=frames, marks=marks,
        machine_name=trace.machine_name)
    return result


def _columns_from_rows(kind, rows):
    """Rebuild a columnar store from raw row tuples.

    Columnar buffers append without ``__post_init__`` validation, so a
    still-corrupt prefix (rows the cut did not reach) survives the
    round trip exactly — the validator, not the container, decides
    whether the prefix is sound.
    """
    from repro.trace.columns import CswitchColumns, GpuPacketColumns

    columns = CswitchColumns() if kind == "cswitch" else GpuPacketColumns()
    for row in rows:
        columns.append(*row)
    return columns


def salvage_prefix(trace, n_logical=None, report=None, max_iterations=32):
    """Longest valid time-prefix of a rejected trace, or ``None``.

    ``report`` is an optional pre-computed
    :class:`~repro.validate.invariants.ValidationReport` for ``trace``
    (saves one validation pass when the caller already rejected it).
    Returns a :class:`SalvageResult` whose trace passes the full
    invariant catalogue over ``[start_time, cut_time]``, or ``None``
    when no positive-length prefix validates — corruption at the very
    first record, or violations the validator cannot place in time.
    """
    from repro.validate.invariants import TraceValidator

    validator = TraceValidator(n_logical=n_logical)
    if report is None:
        report = validator.validate(trace)
    if report.ok:
        return SalvageResult(
            trace=trace, cut_time=trace.stop_time,
            original_stop=trace.stop_time,
            dropped_cswitches=0, dropped_gpu_packets=0,
            clipped_cswitches=0, clipped_gpu_packets=0)
    original = report
    cut = trace.stop_time
    for _ in range(max_iterations):
        # Always re-cut the *original* trace, so the truncation's
        # drop/clip counts are cumulative relative to it.
        truncation = truncate_trace(trace, cut)
        candidate = truncation.trace
        if candidate.stop_time <= candidate.start_time:
            return None
        verdict = validator.validate(candidate)
        if verdict.ok:
            return SalvageResult(
                trace=candidate, cut_time=cut,
                original_stop=trace.stop_time,
                dropped_cswitches=truncation.dropped_cswitches,
                dropped_gpu_packets=truncation.dropped_gpu_packets,
                clipped_cswitches=truncation.clipped_cswitches,
                clipped_gpu_packets=truncation.clipped_gpu_packets,
                invariants=tuple(original.invariants_violated))
        hints = [v.time for v in verdict.violations if v.time is not None]
        if not hints:
            return None
        # Strict progress: violations surviving a cut at time T sit
        # strictly before T, so the cut decreases every iteration.
        cut = min(min(hints), cut - 1)
        if cut <= trace.start_time:
            return None
    return None
