"""Kernel-level trace sessions — the ETW / UIforETW substitute.

The simulated OS kernel and GPU call the ``emit_*`` hooks; records are
only retained while the session is recording, exactly like starting and
stopping a UIforETW capture around a testbench run (paper Fig. 1).
"""

from repro.trace.etl import EtlTrace
from repro.trace.records import (
    ContextSwitchRecord,
    FramePresentRecord,
    GpuPacketRecord,
    MarkRecord,
)

#: Provider flags, mirroring the WPA analyses the paper extracts.
CPU_USAGE_PRECISE = "cpu-usage-precise"
GPU_UTILIZATION_FM = "gpu-utilization-fm"
FRAME_PRESENTS = "frame-presents"
MARKS = "marks"

ALL_PROVIDERS = frozenset(
    {CPU_USAGE_PRECISE, GPU_UTILIZATION_FM, FRAME_PRESENTS, MARKS})


class TraceSession:
    """Collects records between :meth:`start` and :meth:`stop`."""

    def __init__(self, env, providers=ALL_PROVIDERS, machine_name=""):
        unknown = set(providers) - ALL_PROVIDERS
        if unknown:
            raise ValueError(f"unknown trace providers: {sorted(unknown)}")
        self.env = env
        self.providers = frozenset(providers)
        self.machine_name = machine_name
        self.recording = False
        self._start_time = None
        self._cswitches = []
        self._gpu_packets = []
        self._frames = []
        self._marks = []

    def start(self):
        """Begin recording (idempotent error: cannot start twice)."""
        if self.recording:
            raise RuntimeError("trace session already recording")
        self.recording = True
        self._start_time = self.env.now
        self._cswitches.clear()
        self._gpu_packets.clear()
        self._frames.clear()
        self._marks.clear()

    def stop(self):
        """Stop recording and return the captured :class:`EtlTrace`."""
        if not self.recording:
            raise RuntimeError("trace session is not recording")
        self.recording = False
        return EtlTrace(
            self._start_time,
            self.env.now,
            cswitches=self._cswitches,
            gpu_packets=self._gpu_packets,
            frames=self._frames,
            marks=self._marks,
            machine_name=self.machine_name,
        )

    # -- emit hooks called by the simulated kernel / GPU ---------------

    def emit_cswitch(self, process, pid, tid, thread_name, cpu,
                     ready_time, switch_in_time, switch_out_time):
        if self.recording and CPU_USAGE_PRECISE in self.providers:
            self._cswitches.append(ContextSwitchRecord(
                process, pid, tid, thread_name, cpu,
                ready_time, switch_in_time, switch_out_time))

    def emit_gpu_packet(self, process, pid, engine, packet_type,
                        submit_time, start_execution, finished):
        if self.recording and GPU_UTILIZATION_FM in self.providers:
            self._gpu_packets.append(GpuPacketRecord(
                process, pid, engine, packet_type,
                submit_time, start_execution, finished))

    def emit_frame(self, process, pid, present_time, target_fps,
                   reprojected=False):
        if self.recording and FRAME_PRESENTS in self.providers:
            self._frames.append(FramePresentRecord(
                process, pid, present_time, target_fps, reprojected))

    def emit_mark(self, process, pid, label):
        if self.recording and MARKS in self.providers:
            self._marks.append(MarkRecord(process, pid, self.env.now, label))


class NullSession:
    """A do-nothing session for runs that do not need tracing."""

    recording = False

    def emit_cswitch(self, *args, **kwargs):
        pass

    def emit_gpu_packet(self, *args, **kwargs):
        pass

    def emit_frame(self, *args, **kwargs):
        pass

    def emit_mark(self, *args, **kwargs):
        pass
