"""Kernel-level trace sessions — the ETW / UIforETW substitute.

The simulated OS kernel and GPU call the ``emit_*`` hooks; records are
only retained while the session is recording, exactly like starting and
stopping a UIforETW capture around a testbench run (paper Fig. 1).

Two performance modes layer on top of that contract:

* **Columnar buffering** (default): records are appended to flat
  :mod:`~repro.trace.columns` stores instead of per-record dataclasses;
  the :class:`~repro.trace.etl.EtlTrace` returned by :meth:`stop`
  materializes dataclass records lazily, and the WPA tables read the
  column tuples directly.  ``columnar=False`` keeps the original
  record-list behaviour (used as the benchmark baseline).
* **Streaming** (``retain_records=False``): nothing is buffered at all;
  subscribers registered via :meth:`subscribe` (the online metrics
  engine) receive every event as it happens and maintain their
  accumulators in O(1) memory.

Subscribers also receive *occupancy edges* (``emit_cpu_busy`` /
``emit_cpu_idle`` from the scheduler, ``emit_engine_busy`` /
``emit_engine_idle`` from GPU engines).  Unlike record emission these
fire in strict simulation-time order, which is what lets streaming
consumers run an exact sweep without sorting; they are delivered even
while the session is not recording so consumers can track intervals
that straddle the recording window.
"""

from repro.trace.columns import (
    CswitchColumns,
    FrameColumns,
    GpuPacketColumns,
    MarkColumns,
)
from repro.trace.etl import EtlTrace
from repro.trace.records import (
    ContextSwitchRecord,
    FramePresentRecord,
    GpuPacketRecord,
    MarkRecord,
)

#: Provider flags, mirroring the WPA analyses the paper extracts.
CPU_USAGE_PRECISE = "cpu-usage-precise"
GPU_UTILIZATION_FM = "gpu-utilization-fm"
FRAME_PRESENTS = "frame-presents"
MARKS = "marks"

ALL_PROVIDERS = frozenset(
    {CPU_USAGE_PRECISE, GPU_UTILIZATION_FM, FRAME_PRESENTS, MARKS})


class TraceSession:
    """Collects records between :meth:`start` and :meth:`stop`."""

    def __init__(self, env, providers=ALL_PROVIDERS, machine_name="",
                 columnar=True, retain_records=True):
        unknown = set(providers) - ALL_PROVIDERS
        if unknown:
            raise ValueError(f"unknown trace providers: {sorted(unknown)}")
        self.env = env
        self.providers = frozenset(providers)
        self.machine_name = machine_name
        self.columnar = columnar
        self.retain_records = retain_records
        self.recording = False
        self.subscribers = []
        self._start_time = None
        self._alloc_buffers()

    def _alloc_buffers(self):
        """Fresh, unshared buffers.

        Allocating (rather than clearing in place) matters: with lazy
        columnar traces, the stores handed to a previously returned
        :class:`EtlTrace` must stay untouched when the session records
        again — clearing shared buffers would silently empty traces the
        caller still holds.
        """
        if self.columnar:
            self._cswitches = CswitchColumns()
            self._gpu_packets = GpuPacketColumns()
            self._frames = FrameColumns()
            self._marks = MarkColumns()
        else:
            self._cswitches = []
            self._gpu_packets = []
            self._frames = []
            self._marks = []

    # -- streaming consumers -------------------------------------------

    def subscribe(self, consumer):
        """Register a streaming consumer for emit and occupancy events.

        Consumers implement (any subset is fine — missing hooks are
        simply never called by *this* session's fan-out helpers):
        ``on_window_start/stop(now)``, ``on_cpu_busy/idle(process, cpu,
        now)``, ``on_engine_busy/idle(process, engine, now)``,
        ``on_frame(...)`` and ``on_mark(...)``.
        """
        self.subscribers.append(consumer)
        return consumer

    def unsubscribe(self, consumer):
        self.subscribers.remove(consumer)

    def start(self):
        """Begin recording (idempotent error: cannot start twice)."""
        if self.recording:
            raise RuntimeError("trace session already recording")
        self.recording = True
        self._start_time = self.env.now
        self._alloc_buffers()
        # While recording with columnar retention, the two high-volume
        # emit hooks collapse to the column stores' bound ``append``
        # methods (instance attributes shadowing the class methods):
        # the per-record provider/flag checks run once here instead of
        # tens of thousands of times in the scheduler hot loop.  The
        # signatures match field-for-field; :meth:`stop` removes the
        # shadows so the checking class methods return.
        if self.columnar and self.retain_records:
            if CPU_USAGE_PRECISE in self.providers:
                self.emit_cswitch = self._cswitches.append
            if GPU_UTILIZATION_FM in self.providers:
                self.emit_gpu_packet = self._gpu_packets.append
        for consumer in self.subscribers:
            consumer.on_window_start(self.env.now)

    def stop(self):
        """Stop recording and return the captured :class:`EtlTrace`.

        A zero-length window (stop at the same instant as start) yields
        a valid, empty trace; downstream metrics guard against it with
        an explicit ``ValueError`` rather than dividing by the zero
        duration.
        """
        if not self.recording:
            raise RuntimeError("trace session is not recording")
        self.recording = False
        self.__dict__.pop("emit_cswitch", None)
        self.__dict__.pop("emit_gpu_packet", None)
        trace = EtlTrace(
            self._start_time,
            self.env.now,
            cswitches=self._cswitches,
            gpu_packets=self._gpu_packets,
            frames=self._frames,
            marks=self._marks,
            machine_name=self.machine_name,
        )
        # Detach: the returned trace owns these buffers now.
        self._alloc_buffers()
        for consumer in self.subscribers:
            consumer.on_window_stop(self.env.now)
        return trace

    def abort(self):
        """Seal whatever has been recorded so far, never raising.

        The crash-salvage path of the harness
        (:func:`repro.harness.runner.run_app_once` with
        ``salvage=True``) calls this when a simulation dies mid-run:
        unlike :meth:`stop` it is safe in any state — if the session is
        recording it behaves exactly like ``stop`` (so the partial
        capture becomes an ordinary, shorter trace); if it never
        started or already stopped it returns ``None`` instead of
        raising, because crash cleanup must not mask the original
        error with a session-state one.
        """
        if not self.recording:
            return None
        return self.stop()

    # -- emit hooks called by the simulated kernel / GPU ---------------

    def emit_cswitch(self, process, pid, tid, thread_name, cpu,
                     ready_time, switch_in_time, switch_out_time):
        if self.recording and CPU_USAGE_PRECISE in self.providers:
            if not self.retain_records:
                return
            if self.columnar:
                self._cswitches.append(
                    process, pid, tid, thread_name, cpu,
                    ready_time, switch_in_time, switch_out_time)
            else:
                self._cswitches.append(ContextSwitchRecord(
                    process, pid, tid, thread_name, cpu,
                    ready_time, switch_in_time, switch_out_time))

    def emit_gpu_packet(self, process, pid, engine, packet_type,
                        submit_time, start_execution, finished):
        if self.recording and GPU_UTILIZATION_FM in self.providers:
            if not self.retain_records:
                return
            if self.columnar:
                self._gpu_packets.append(
                    process, pid, engine, packet_type,
                    submit_time, start_execution, finished)
            else:
                self._gpu_packets.append(GpuPacketRecord(
                    process, pid, engine, packet_type,
                    submit_time, start_execution, finished))

    def emit_frame(self, process, pid, present_time, target_fps,
                   reprojected=False):
        if self.recording and FRAME_PRESENTS in self.providers:
            if self.retain_records:
                if self.columnar:
                    self._frames.append(process, pid, present_time,
                                        target_fps, reprojected)
                else:
                    self._frames.append(FramePresentRecord(
                        process, pid, present_time, target_fps, reprojected))
            for consumer in self.subscribers:
                consumer.on_frame(process, pid, present_time, target_fps,
                                  reprojected)

    def emit_mark(self, process, pid, label):
        if self.recording and MARKS in self.providers:
            if self.retain_records:
                if self.columnar:
                    self._marks.append(process, pid, self.env.now, label)
                else:
                    self._marks.append(
                        MarkRecord(process, pid, self.env.now, label))
            for consumer in self.subscribers:
                consumer.on_mark(process, pid, self.env.now, label)

    # -- occupancy edges (scheduler / GPU engines) ---------------------
    #
    # Callers guard on ``session.subscribers`` being non-empty, so the
    # default (non-streaming) hot path never pays these calls.

    def emit_cpu_busy(self, process, cpu):
        now = self.env.now
        for consumer in self.subscribers:
            consumer.on_cpu_busy(process, cpu, now)

    def emit_cpu_idle(self, process, cpu):
        now = self.env.now
        for consumer in self.subscribers:
            consumer.on_cpu_idle(process, cpu, now)

    def emit_engine_busy(self, process, engine):
        now = self.env.now
        for consumer in self.subscribers:
            consumer.on_engine_busy(process, engine, now)

    def emit_engine_idle(self, process, engine):
        now = self.env.now
        for consumer in self.subscribers:
            consumer.on_engine_idle(process, engine, now)


class NullSession:
    """A do-nothing session for runs that do not need tracing."""

    recording = False
    subscribers = ()

    def emit_cswitch(self, *args, **kwargs):
        pass

    def emit_gpu_packet(self, *args, **kwargs):
        pass

    def emit_frame(self, *args, **kwargs):
        pass

    def emit_mark(self, *args, **kwargs):
        pass

    def emit_cpu_busy(self, *args, **kwargs):
        pass

    def emit_cpu_idle(self, *args, **kwargs):
        pass

    def emit_engine_busy(self, *args, **kwargs):
        pass

    def emit_engine_idle(self, *args, **kwargs):
        pass
