"""WPA-substitute table extraction and the ``wpaexporter`` CSV step.

The paper's workflow (Fig. 1) opens the ``.etl`` trace in Windows
Performance Analyzer, extracts two tables and exports them to CSV:

* **CPU Usage (Precise), Timeline by CPU** — columns Process, CPU,
  Ready Time, Switch-In Time (we carry Switch-Out Time as well).
* **GPU Utilization (FM)** — columns Process, Start Execution,
  Finished.

Custom scripts then post-process the CSVs into TLP and GPU-utilization
numbers.  This module is that entire middle of the pipeline.
"""

import csv


def _freeze_processes(processes):
    """Hashable cache key for an optional process-name set."""
    return None if processes is None else frozenset(processes)


class CpuUsagePreciseTable:
    """Rows of the CPU Usage (Precise) analysis.

    Rows are immutable by convention (like the trace they come from);
    the per-process-set event and interval extractions below are
    memoized on that assumption, so every windowed query over the same
    table — ``measure_tlp`` plus hundreds of ``instantaneous_tlp``
    windows — shares one sorted array instead of re-extracting and
    re-sorting the records each time.
    """

    COLUMNS = ("process", "pid", "tid", "thread_name", "cpu",
               "ready_time", "switch_in_time", "switch_out_time")

    def __init__(self, rows, trace_start, trace_stop, store=None):
        self._rows = None if rows is None else list(rows)
        #: Columnar backing store (``trace.columns.CswitchColumns``)
        #: when the table was extracted from a columnar trace; the
        #: batched kernels read its buffers, and row materialization
        #: is deferred until someone actually needs tuples.
        self._store = store
        if rows is None and store is None:
            raise ValueError("need rows or a columnar store")
        self.trace_start = trace_start
        self.trace_stop = trace_stop
        self._events_cache = {}
        self._arrays_cache = {}
        self._by_cpu_cache = {}

    @property
    def rows(self):
        """Row tuples, sorted by (switch-in, cpu) — materialized
        lazily from the columnar store when first needed."""
        if self._rows is None:
            self._rows = sorted(self._store.rows(),
                                key=lambda row: (row[6], row[4]))
        return self._rows

    @classmethod
    def from_trace(cls, trace):
        """Extract the table from an :class:`~repro.trace.etl.EtlTrace`.

        Uses the trace's tuple fast path (``cswitch_rows``), which for
        columnar traces skips dataclass materialization entirely; a
        still-columnar group is carried as the backing store so the
        batched kernels can sweep its buffers without ever building
        row tuples.
        """
        store = (trace.cswitch_store()
                 if hasattr(trace, "cswitch_store") else None)
        if store is not None:
            return cls(None, trace.start_time, trace.stop_time,
                       store=store)
        if hasattr(trace, "cswitch_rows"):
            raw = trace.cswitch_rows()
        else:
            raw = [(r.process, r.pid, r.tid, r.thread_name, r.cpu,
                    r.ready_time, r.switch_in_time, r.switch_out_time)
                   for r in trace.cswitches]
        rows = sorted(raw, key=lambda row: (row[6], row[4]))
        return cls(rows, trace.start_time, trace.stop_time)

    def busy_intervals(self, processes=None):
        """Yield ``(cpu, start, stop)`` run intervals, optionally
        restricted to a set of process names."""
        for row in self.rows:
            if processes is None or row[0] in processes:
                yield row[4], row[6], row[7]

    def busy_events(self, processes=None):
        """Sorted ``(time, +1/-1)`` switch-in/out events, memoized per
        process set — the fast path behind ``measure_tlp``."""
        key = _freeze_processes(processes)
        events = self._events_cache.get(key)
        if events is None:
            events = []
            for row in self.rows:
                if processes is None or row[0] in processes:
                    events.append((row[6], 1))
                    events.append((row[7], -1))
            events.sort()
            self._events_cache[key] = events
        return events

    def busy_event_arrays(self, processes=None):
        """Sorted parallel ``(times, deltas)`` buffers of the
        switch-in/out events, memoized per process set — what the
        batched kernels (:mod:`repro.metrics.kernels`) sweep.

        Backed directly by the columnar store's ``array('q')`` buffers
        when the table has one (no row tuples are ever built); built
        from the row list otherwise.
        """
        from repro.metrics.kernels import build_event_arrays, interned_mask

        key = _freeze_processes(processes)
        arrays = self._arrays_cache.get(key)
        if arrays is None:
            store = self._store
            if store is not None:
                mask = None
                if processes is not None:
                    mask = interned_mask(store._process,
                                         store.process_names, processes)
                if processes is None or mask is not None:
                    arrays = build_event_arrays(store._in, store._out,
                                                mask=mask)
            if arrays is None:
                keep = [row for row in self.rows
                        if processes is None or row[0] in processes]
                arrays = build_event_arrays(
                    [row[6] for row in keep], [row[7] for row in keep])
            self._arrays_cache[key] = arrays
        return arrays

    def intervals_by_cpu(self, processes=None):
        """``{cpu: [(start, stop), ...]}`` sorted per CPU, memoized."""
        key = _freeze_processes(processes)
        by_cpu = self._by_cpu_cache.get(key)
        if by_cpu is None:
            by_cpu = {}
            for row in self.rows:
                if processes is None or row[0] in processes:
                    by_cpu.setdefault(row[4], []).append((row[6], row[7]))
            for intervals in by_cpu.values():
                intervals.sort()
            self._by_cpu_cache[key] = by_cpu
        return by_cpu

    def process_names(self):
        """Sorted distinct process names in the table."""
        if self._rows is None:
            return sorted(self._store.used_processes())
        return sorted({row[0] for row in self.rows})


class GpuUtilizationTable:
    """Rows of the GPU Utilization (FM) analysis."""

    COLUMNS = ("process", "pid", "engine", "packet_type",
               "submit_time", "start_execution", "finished")

    def __init__(self, rows, trace_start, trace_stop, store=None):
        self._rows = None if rows is None else list(rows)
        self._store = store
        if rows is None and store is None:
            raise ValueError("need rows or a columnar store")
        self.trace_start = trace_start
        self.trace_stop = trace_stop
        self._events_cache = {}
        self._arrays_cache = {}
        self._spans_cache = {}

    @property
    def rows(self):
        """Row tuples, sorted by (start-execution, engine) —
        materialized lazily from the columnar store."""
        if self._rows is None:
            self._rows = sorted(self._store.rows(),
                                key=lambda row: (row[5], row[2]))
        return self._rows

    @classmethod
    def from_trace(cls, trace):
        store = trace.gpu_store() if hasattr(trace, "gpu_store") else None
        if store is not None:
            return cls(None, trace.start_time, trace.stop_time,
                       store=store)
        if hasattr(trace, "gpu_rows"):
            raw = trace.gpu_rows()
        else:
            raw = [(r.process, r.pid, r.engine, r.packet_type,
                    r.submit_time, r.start_execution, r.finished)
                   for r in trace.gpu_packets]
        rows = sorted(raw, key=lambda row: (row[5], row[2]))
        return cls(rows, trace.start_time, trace.stop_time)

    def packet_intervals(self, processes=None):
        """Yield ``(engine, start_execution, finished)`` per packet."""
        for row in self.rows:
            if processes is None or row[0] in processes:
                yield row[2], row[5], row[6]

    def packet_events(self, processes=None):
        """Sorted ``(time, +1/-1)`` packet start/finish events, memoized
        per process set (rows are immutable by convention)."""
        key = _freeze_processes(processes)
        events = self._events_cache.get(key)
        if events is None:
            events = []
            for row in self.rows:
                if processes is None or row[0] in processes:
                    events.append((row[5], 1))
                    events.append((row[6], -1))
            events.sort()
            self._events_cache[key] = events
        return events

    def packet_event_arrays(self, processes=None):
        """Sorted parallel ``(times, deltas)`` buffers of the packet
        start/finish events (see ``CpuUsagePreciseTable.
        busy_event_arrays``), memoized per process set."""
        from repro.metrics.kernels import build_event_arrays, interned_mask

        key = _freeze_processes(processes)
        arrays = self._arrays_cache.get(key)
        if arrays is None:
            store = self._store
            if store is not None:
                mask = None
                if processes is not None:
                    mask = interned_mask(store._process,
                                         store.process_names, processes)
                if processes is None or mask is not None:
                    arrays = build_event_arrays(store._start,
                                                store._finished, mask=mask)
            if arrays is None:
                keep = [row for row in self.rows
                        if processes is None or row[0] in processes]
                arrays = build_event_arrays(
                    [row[5] for row in keep], [row[6] for row in keep])
            self._arrays_cache[key] = arrays
        return arrays

    def packet_spans(self, processes=None):
        """Sorted ``(start_execution, finished)`` pairs, memoized —
        feeds the sum-of-ratios utilization without re-filtering."""
        key = _freeze_processes(processes)
        spans = self._spans_cache.get(key)
        if spans is None:
            spans = sorted((row[5], row[6]) for row in self.rows
                           if processes is None or row[0] in processes)
            self._spans_cache[key] = spans
        return spans

    def process_names(self):
        if self._rows is None:
            return sorted(self._store.used_processes())
        return sorted({row[0] for row in self.rows})


def export_csv(table, path):
    """``wpaexporter`` substitute: write a WPA table to CSV.

    The first line holds trace metadata so the CSV round-trips without
    the original trace file.
    """
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["#trace", table.trace_start, table.trace_stop])
        writer.writerow(table.COLUMNS)
        writer.writerows(table.rows)


def _load_rows(path, expected_columns):
    with open(path, "r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        meta = next(reader)
        if meta[0] != "#trace":
            raise ValueError(f"{path} is not a wpaexporter CSV")
        trace_start, trace_stop = int(meta[1]), int(meta[2])
        header = tuple(next(reader))
        if header != expected_columns:
            raise ValueError(
                f"unexpected columns in {path}: {header} != {expected_columns}")
        rows = [tuple(row) for row in reader]
    return rows, trace_start, trace_stop


def load_cpu_csv(path):
    """Load a CSV written from a :class:`CpuUsagePreciseTable`."""
    raw, start, stop = _load_rows(path, CpuUsagePreciseTable.COLUMNS)
    rows = [(p, int(pid), int(tid), tname, int(cpu), int(rt), int(si), int(so))
            for p, pid, tid, tname, cpu, rt, si, so in raw]
    return CpuUsagePreciseTable(rows, start, stop)


def load_gpu_csv(path):
    """Load a CSV written from a :class:`GpuUtilizationTable`."""
    raw, start, stop = _load_rows(path, GpuUtilizationTable.COLUMNS)
    rows = [(p, int(pid), engine, ptype, int(sub), int(se), int(fin))
            for p, pid, engine, ptype, sub, se, fin in raw]
    return GpuUtilizationTable(rows, start, stop)
