"""Trace-invariant validation, fault injection and golden fingerprints.

Every number the reproduction reports — Eq.-1 TLP, GPU utilization,
the core-scaling and SMT deltas — is derived from the ETW-style traces
the simulator emits.  This package is the safety net underneath that
pipeline:

* :mod:`repro.validate.invariants` checks that a trace is internally
  consistent (post-hoc on an :class:`~repro.trace.etl.EtlTrace`, or
  online against the live occupancy-edge stream);
* :mod:`repro.validate.faults` deliberately breaks traces in seeded,
  reproducible ways to prove each invariant actually fires — a
  mutation-testing loop for the trace pipeline;
* :mod:`repro.validate.golden` condenses a run into a compact metric
  fingerprint and diffs it against the committed golden suite under
  ``tests/golden/``.

Entry points: ``python -m repro validate`` (CLI), the ``--validate``
flag of ``run``/``suite``, and ``validate=True`` on
:func:`repro.harness.run_app_once`.
"""

from repro.validate.faults import (
    EXEC_FAULTS,
    FAULTS,
    FaultPreconditionError,
    InjectedCrash,
    inject_fault,
    install_exec_fault,
    is_exec_fault,
)
from repro.validate.golden import (
    GOLDEN_CONFIGS,
    GOLDEN_DURATION_US,
    GOLDEN_SEED,
    compare_fingerprints,
    compute_fingerprints,
    config_id,
    default_golden_path,
    fingerprint_run,
    golden_machine,
    golden_spec,
    load_goldens,
    save_goldens,
)
from repro.validate.invariants import (
    INVARIANT_NAMES,
    OnlineValidator,
    TraceValidationError,
    TraceValidator,
    ValidationReport,
    Violation,
    check_single_run,
    validate_trace,
)

__all__ = [
    "EXEC_FAULTS",
    "FAULTS",
    "FaultPreconditionError",
    "InjectedCrash",
    "GOLDEN_CONFIGS",
    "GOLDEN_DURATION_US",
    "GOLDEN_SEED",
    "INVARIANT_NAMES",
    "OnlineValidator",
    "TraceValidationError",
    "TraceValidator",
    "ValidationReport",
    "Violation",
    "check_single_run",
    "compare_fingerprints",
    "compute_fingerprints",
    "config_id",
    "default_golden_path",
    "fingerprint_run",
    "golden_machine",
    "golden_spec",
    "inject_fault",
    "install_exec_fault",
    "is_exec_fault",
    "load_goldens",
    "save_goldens",
    "validate_trace",
]
