"""Deterministic fault injection — mutation testing for the trace layer.

Each injector takes a well-formed :class:`~repro.trace.etl.EtlTrace`
and returns a *new* trace with one seeded, reproducible corruption of
the kind a real tracing pipeline can suffer: a lost switch-out event, a
skewed clock, a replayed DMA packet, a truncated capture file, edges
paired across the wrong threads.  Every fault is registered with the
invariant it must trip (``violates``); the property suite asserts the
:class:`~repro.validate.invariants.TraceValidator` names that invariant
for every seed — zero silent mutations.

Mutated traces are rebuilt on columnar buffers
(:mod:`repro.trace.columns`), which append without per-record
validation — exactly like the simulator's hot path, and the only way
to represent corruptions (e.g. ``switch_out < switch_in``) that the
dataclass constructors would refuse to build.
"""

import random
import time
from dataclasses import dataclass

from repro.trace.columns import CswitchColumns, GpuPacketColumns
from repro.trace.etl import EtlTrace


class FaultPreconditionError(ValueError):
    """The trace is too small/simple for this fault to be injectable."""


class InjectedCrash(RuntimeError):
    """Raised by the ``worker-crash`` execution fault mid-simulation."""


@dataclass(frozen=True)
class FaultSpec:
    """A registered fault class."""

    name: str
    violates: str       # invariant the TraceValidator must name
    description: str
    inject: object      # (cswitch_rows, gpu_rows, start, stop, rng) ->
                        #   (cswitch_rows, gpu_rows, start, stop)


def _rebuild(trace, cswitches, gpu, start, stop):
    """A columnar trace with mutated CPU/GPU rows (frames/marks kept)."""
    cs = CswitchColumns()
    for row in cswitches:
        cs.append(*row)
    gp = GpuPacketColumns()
    for row in gpu:
        gp.append(*row)
    return EtlTrace(start, stop, cswitches=cs, gpu_packets=gp,
                    frames=list(trace.frames), marks=list(trace.marks),
                    machine_name=trace.machine_name)


def _require(condition, message):
    if not condition:
        raise FaultPreconditionError(message)


def _dropped_switch_out(cswitches, gpu, start, stop, rng):
    """Lose a switch-out event: the slice silently absorbs the next
    slice on its CPU, double-booking the logical CPU."""
    by_cpu = {}
    for index, row in enumerate(cswitches):
        by_cpu.setdefault(row[4], []).append((row[6], row[7], index))
    pairs = []
    for slices in by_cpu.values():
        slices.sort()
        for k in range(len(slices) - 1):
            # The swallowed successor needs positive length, or the
            # extended slice merely touches it without overlapping.
            if slices[k + 1][1] > slices[k + 1][0]:
                pairs.append((slices[k][2], slices[k + 1][2]))
    _require(pairs, "need consecutive CPU slices with a positive-length "
                    "successor")
    i, j = pairs[rng.randrange(len(pairs))]
    nxt = cswitches[j]
    row = list(cswitches[i])
    row[7] = max(nxt[7], row[7])  # run straight through the next slice
    mutated = list(cswitches)
    mutated[i] = tuple(row)
    return mutated, gpu, start, stop


def _timestamp_skew(cswitches, gpu, start, stop, rng):
    """Skew one slice's clock forward so the thread overlaps its own
    next scheduling slice — a thread running in two places at once."""
    by_thread = {}
    for index, row in enumerate(cswitches):
        by_thread.setdefault((row[1], row[2]), []).append(
            (row[6], row[7], index))
    pairs = []
    for slices in by_thread.values():
        slices.sort()
        for k in range(len(slices) - 1):
            # A strictly later switch-in guarantees the stretched slice
            # still sorts first, so the overlap cannot hide.
            if slices[k + 1][0] > slices[k][0]:
                pairs.append((slices[k][2], slices[k + 1][2]))
    _require(pairs, "need a thread with two slices at distinct switch-ins")
    i, j = pairs[rng.randrange(len(pairs))]
    nxt = cswitches[j]
    row = list(cswitches[i])
    # Stretch past the next slice's switch-in by a positive skew.
    row[7] = nxt[6] + max(1, (nxt[7] - nxt[6]) // 2)
    row[7] = max(row[7], row[6] + 1)
    mutated = list(cswitches)
    mutated[i] = tuple(row)
    return mutated, gpu, start, stop


def _duplicated_gpu_packet(cswitches, gpu, start, stop, rng):
    """Replay one GPU packet verbatim — two identical packets executing
    on the same engine at the same time."""
    candidates = [i for i, row in enumerate(gpu) if row[6] > row[5]]
    _require(candidates, "need a GPU packet with positive running time")
    index = candidates[rng.randrange(len(candidates))]
    mutated = list(gpu)
    mutated.insert(index, gpu[index])
    return cswitches, mutated, start, stop


def _truncated_trace(cswitches, gpu, start, stop, rng):
    """Truncate the capture: the header's stop time shrinks but late
    records survive, landing outside the advertised window."""
    last = max(
        [row[7] for row in cswitches] + [row[6] for row in gpu],
        default=None)
    _require(last is not None and last > start,
             "need at least one record with positive extent")
    # A cut strictly inside (start, last) strands at least one record.
    cut = start + rng.randrange(max(1, last - start - 1)) + 1
    cut = min(cut, last - 1) if last - 1 > start else last - 1
    _require(cut > start, "trace too short to truncate")
    return cswitches, gpu, start, cut


def _cross_thread_edge_swap(cswitches, gpu, start, stop, rng):
    """Pair switch-out edges with the wrong threads: swapping the outs
    of two disjoint slices leaves one slice ending before it began."""
    ordered = sorted(range(len(cswitches)),
                     key=lambda i: (cswitches[i][6], cswitches[i][7]))
    pairs = []
    for pos, i in enumerate(ordered):
        for j in ordered[pos + 1:]:
            a, b = cswitches[i], cswitches[j]
            if a[2] != b[2] and a[7] < b[6]:
                pairs.append((i, j))
    _require(pairs, "need two disjoint slices of different threads")
    i, j = pairs[rng.randrange(len(pairs))]
    a, b = list(cswitches[i]), list(cswitches[j])
    a[7], b[7] = b[7], a[7]   # b now ends before it begins
    b[5] = min(b[5], b[7])    # keep ready<=out so only the swap shows
    mutated = list(cswitches)
    mutated[i], mutated[j] = tuple(a), tuple(b)
    return mutated, gpu, start, stop


#: Registry: fault name -> :class:`FaultSpec`, in taxonomy order.
FAULTS = {
    spec.name: spec for spec in (
        FaultSpec(
            "dropped-switch-out", "cpu-occupancy",
            "a switch-out event is lost; the slice swallows its "
            "successor on the same CPU",
            _dropped_switch_out),
        FaultSpec(
            "timestamp-skew", "thread-monotonic",
            "one slice's clock drifts forward into the thread's next "
            "slice",
            _timestamp_skew),
        FaultSpec(
            "duplicated-gpu-packet", "gpu-engine-exclusive",
            "a GPU packet is replayed on its engine",
            _duplicated_gpu_packet),
        FaultSpec(
            "truncated-trace", "window-containment",
            "the capture stops early; records outlive the header window",
            _truncated_trace),
        FaultSpec(
            "cross-thread-edge-swap", "balanced-switch-edges",
            "switch-out edges are paired with the wrong threads",
            _cross_thread_edge_swap),
    )
}


# -- execution faults ----------------------------------------------------
#
# Trace faults above corrupt *data*; execution faults corrupt the
# *worker process* running a simulation, which is what the supervised
# executor (:mod:`repro.harness.supervisor`) must survive.  They are
# spelled as ``fault`` names on a run spec, alongside the trace faults:
#
# ``worker-crash``          raise :class:`InjectedCrash` mid-simulation
# ``worker-hang``           block on wall-clock sleep mid-simulation
#                           (only a watchdog SIGTERM ends the run)
# ``flaky-crash:<path>``    crash once, then run clean — the marker
# ``flaky-hang:<path>``     file at ``<path>`` records the first strike,
#                           so a retry of the same spec succeeds
#
# The flaky variants are what exercise the retry loop end to end: the
# marker file is the only cross-attempt state, created atomically with
# ``open(path, "x")`` so exactly one attempt faults even if two race.

EXEC_FAULTS = ("worker-crash", "worker-hang")
_FLAKY_PREFIXES = ("flaky-crash:", "flaky-hang:")


def is_exec_fault(fault):
    """True if ``fault`` names an execution fault (not a trace fault)."""
    return isinstance(fault, str) and (
        fault in EXEC_FAULTS
        or fault.startswith(_FLAKY_PREFIXES))


def _strike(fault):
    """Whether this attempt should fault, consuming flaky markers."""
    if fault in EXEC_FAULTS:
        return True
    prefix, _, path = fault.partition(":")
    try:
        with open(path, "x"):
            return True       # first strike: marker created, fault fires
    except FileExistsError:
        return False          # already struck once: run clean


def install_exec_fault(env, duration_us, fault):
    """Arm ``fault`` on a simulation environment.

    Schedules the fault at half the measurement window via
    ``env.timeout`` — deep inside the run, so a crash leaves a
    half-recorded trace for the salvage path and a hang leaves the
    worker genuinely wedged mid-simulation.  Raising from a timeout
    callback propagates out of ``env.run`` (see
    :mod:`repro.sim.environment`), which is exactly how a real
    simulation bug would surface.
    """
    if not is_exec_fault(fault):
        raise ValueError(f"not an execution fault: {fault!r}")
    if not _strike(fault):
        return

    def detonate(_event):
        if "hang" in fault.partition(":")[0]:
            while True:       # wedged until the watchdog SIGTERMs us
                time.sleep(0.05)
        raise InjectedCrash(f"injected execution fault: {fault}")

    env.timeout(max(1, duration_us // 2)).callbacks.append(detonate)


def inject_fault(trace, fault, seed=0):
    """Return a copy of ``trace`` corrupted by ``fault`` (registry name
    or :class:`FaultSpec`), deterministically for a given ``seed``.

    Raises :class:`FaultPreconditionError` when the trace lacks the
    structure the fault needs (e.g. a single-slice trace cannot lose a
    switch-out boundary meaningfully).
    """
    spec = FAULTS[fault] if isinstance(fault, str) else fault
    rng = random.Random(seed)
    cswitches = [tuple(row) for row in (
        trace.cswitch_rows() if hasattr(trace, "cswitch_rows")
        else [(r.process, r.pid, r.tid, r.thread_name, r.cpu,
               r.ready_time, r.switch_in_time, r.switch_out_time)
              for r in trace.cswitches])]
    gpu = [tuple(row) for row in (
        trace.gpu_rows() if hasattr(trace, "gpu_rows")
        else [(r.process, r.pid, r.engine, r.packet_type,
               r.submit_time, r.start_execution, r.finished)
              for r in trace.gpu_packets])]
    cswitches, gpu, start, stop = spec.inject(
        cswitches, gpu, trace.start_time, trace.stop_time, rng)
    return _rebuild(trace, cswitches, gpu, start, stop)
