"""Golden trace fingerprints — the bit-identity regression suite.

A *fingerprint* condenses one simulated run into the numbers the paper
reports — Eq.-1 TLP, the ``c_i`` concurrency histogram, GPU
utilization, frame statistics — hashed over their exact bit patterns
(``float.hex``), so the committed goldens under ``tests/golden/`` pin
the entire pipeline: scheduler, trace buffers, WPA extraction and the
fused-sweep metrics.  Any change that perturbs a single bit of any
metric for any app at any machine configuration flips a digest.

The golden grid mirrors the paper's machine sweeps: 4/8/12 logical
CPUs with SMT on, plus 4/6 with SMT off (the i7-8700K exposes six
physical cores, so 8- and 12-CPU configurations only exist with SMT).

Fingerprints deliberately cover only *metric digests* — never raw
records — so the streaming (:mod:`repro.metrics.online`) backend can
be diffed against the same goldens as the post-hoc trace pipeline.

Workflow: ``python -m repro validate`` checks apps against the
goldens; ``python -m repro validate --update-golden`` re-records them
after an intentional behaviour change.
"""

import hashlib
import json
from pathlib import Path

from repro.harness.executor import make_spec, resolve_executor
from repro.hardware import paper_machine
from repro.sim import SECOND

#: ``(logical_cpus, smt_enabled)`` grid points of the golden suite.
GOLDEN_CONFIGS = ((4, True), (8, True), (12, True), (4, False), (6, False))
#: One simulated second keeps every app's behavioural phases while the
#: whole 30-app x 5-config grid replays in a few seconds of wall time.
GOLDEN_DURATION_US = 1 * SECOND
GOLDEN_SEED = 2019
#: Bump when the fingerprint payload shape changes.
GOLDEN_FORMAT = 1


def config_id(cores, smt):
    """Stable key of one grid point, e.g. ``c08-smt`` / ``c04-nosmt``."""
    return f"c{cores:02d}-{'smt' if smt else 'nosmt'}"


def golden_machine(cores, smt):
    """The paper machine restricted to one golden grid point."""
    machine = paper_machine()
    if not smt:
        machine = machine.with_smt(False)
    return machine.with_logical_cpus(cores)


def golden_spec(app_name, cores, smt, streaming=False):
    """The :class:`~repro.harness.executor.RunSpec` of one grid point."""
    return make_spec(app_name, machine=golden_machine(cores, smt),
                     duration_us=GOLDEN_DURATION_US, seed=GOLDEN_SEED,
                     streaming=streaming)


def _hex(value):
    """Exact, portable text form of a float (or pass-through int)."""
    return value.hex() if isinstance(value, float) else value


def fingerprint_run(run):
    """Condense a :class:`~repro.harness.runner.SingleRun` into a
    digest-bearing fingerprint dict.

    Every float is serialized via ``float.hex`` so equality means
    bit-identity, not approximate agreement.
    """
    tlp = run.tlp
    gpu = run.gpu_util
    frames = run.frame_stats
    payload = {
        "tlp": _hex(tlp.tlp),
        "fractions": [_hex(f) for f in tlp.fractions],
        "max_instantaneous": tlp.max_instantaneous,
        "window_us": tlp.window_us,
        "gpu_pct": _hex(gpu.utilization_pct),
        "gpu_peak_packets": gpu.max_concurrent_packets,
        "gpu_capped": gpu.capped,
        "frames": [frames.count, frames.reprojected,
                   frames.first_present, frames.last_present],
        "processes": sorted(run.process_names),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    payload["digest"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return payload


def compute_fingerprints(apps, configs=GOLDEN_CONFIGS, jobs=None,
                         executor=None, streaming=False):
    """Fingerprint every ``app x config`` grid point.

    Returns ``{app: {config_id: fingerprint}}``.  The grid is one flat
    batch of independent specs, so it fans out over any executor
    backend (``jobs=N``) with bit-identical results — that equivalence
    is exactly what the golden tests assert.
    """
    grid = [(app, cores, smt)
            for app in apps for cores, smt in configs]
    specs = [golden_spec(app, cores, smt, streaming=streaming)
             for app, cores, smt in grid]
    runs = resolve_executor(jobs=jobs, executor=executor).map(specs)
    fingerprints = {}
    for (app, cores, smt), run in zip(grid, runs):
        fingerprints.setdefault(app, {})[config_id(cores, smt)] = \
            fingerprint_run(run)
    return fingerprints


def default_golden_path():
    """The committed golden file: ``tests/golden/golden_traces.json``."""
    return (Path(__file__).resolve().parents[3]
            / "tests" / "golden" / "golden_traces.json")


def save_goldens(fingerprints, path=None):
    """Write the golden file (sorted keys, stable diffs)."""
    path = Path(path) if path is not None else default_golden_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "_meta": {
            "format": GOLDEN_FORMAT,
            "duration_us": GOLDEN_DURATION_US,
            "seed": GOLDEN_SEED,
            "configs": [config_id(c, s) for c, s in GOLDEN_CONFIGS],
        },
        "apps": fingerprints,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return path


def load_goldens(path=None):
    """Read a golden file; returns ``{app: {config_id: fingerprint}}``."""
    path = Path(path) if path is not None else default_golden_path()
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    meta = document.get("_meta", {})
    if meta.get("format") != GOLDEN_FORMAT:
        raise ValueError(
            f"golden file {path} has format {meta.get('format')!r}, "
            f"expected {GOLDEN_FORMAT}")
    return document["apps"]


def compare_fingerprints(expected, actual):
    """Human-readable mismatches between two fingerprint dicts.

    Compares digests first (bit-identity), then names the fields that
    diverge so a regression report says *what* moved, not just that
    something did.
    """
    if expected["digest"] == actual["digest"]:
        return []
    problems = []
    for key in ("tlp", "fractions", "max_instantaneous", "window_us",
                "gpu_pct", "gpu_peak_packets", "gpu_capped", "frames",
                "processes"):
        if expected.get(key) != actual.get(key):
            problems.append(
                f"{key}: expected {expected.get(key)!r}, "
                f"got {actual.get(key)!r}")
    if not problems:
        problems.append(
            f"digest mismatch ({expected['digest'][:12]} != "
            f"{actual['digest'][:12]}) with no field-level difference "
            f"— fingerprint payload shape changed?")
    return problems
