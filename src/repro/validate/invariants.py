"""Trace invariants — what a well-formed ETW-substitute trace obeys.

The checker reads the raw row tuples (``cswitch_rows`` / ``gpu_rows``),
not the dataclass records: columnar buffers append without
``__post_init__`` validation, so a scheduler or buffer regression can
only be caught at this level.  The same code path therefore validates
both columnar and record-list backed traces.

Invariant catalogue (names are stable — tests, fault specs and docs
refer to them):

``thread-monotonic``
    A thread runs in at most one place at a time: per ``(pid, tid)``,
    scheduling slices ordered by switch-in time never overlap.
``balanced-switch-edges``
    Every slice is a balanced in/out edge pair: ``ready <= switch_in
    <= switch_out`` per row, and the global +1/-1 edge sweep never goes
    negative and returns to zero.
``cpu-occupancy``
    A logical CPU runs one thread at a time (per-CPU slices never
    overlap), CPU indices are within the machine, and the instantaneous
    number of busy CPUs never exceeds the logical core count.
``gpu-engine-exclusive``
    A GPU engine executes one packet at a time: ``submit <=
    start_execution <= finished`` per packet and per-engine execution
    spans never overlap.
``window-containment``
    Execution times lie inside ``[start_time, stop_time]``.  (Ready and
    submit times are exempt: a thread may become ready, and a packet
    may be submitted, before the recording window opens.)
``busy-conservation``
    Total scheduled busy time equals the integral of the fused-sweep
    concurrency histogram (``sum(c_i * i)`` in microseconds), for the
    CPU and the GPU row sets alike.  This cross-checks the trace
    against the *metrics pipeline itself*: it recomputes the histogram
    through :func:`repro.metrics.intervals.fused_sweep`, so a sweep
    regression fires here even on a pristine trace.
"""

from dataclasses import dataclass, field

from repro.metrics.intervals import first_time_above, fused_sweep, interval_events


@dataclass(frozen=True)
class Violation:
    """One broken invariant occurrence.

    ``time`` is the earliest simulation time (µs) at which the trace is
    known to be inconsistent, when the check can name one.  It is what
    the salvage pass (:func:`repro.trace.salvage.salvage_prefix`) cuts
    at to recover the longest valid prefix; checks that cannot place a
    violation in time (e.g. ``busy-conservation``) leave it ``None``.
    """

    invariant: str
    message: str
    time: object = None

    def __str__(self):
        return f"[{self.invariant}] {self.message}"


@dataclass
class ValidationReport:
    """The outcome of a validation pass."""

    violations: list = field(default_factory=list)
    checked: tuple = ()

    @property
    def ok(self):
        return not self.violations

    @property
    def invariants_violated(self):
        """Names of the invariants that fired, in catalogue order."""
        seen = []
        for violation in self.violations:
            if violation.invariant not in seen:
                seen.append(violation.invariant)
        return seen

    def raise_if_failed(self):
        if self.violations:
            raise TraceValidationError(self)
        return self

    def __str__(self):
        if self.ok:
            return f"ok ({len(self.checked)} invariants checked)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class TraceValidationError(RuntimeError):
    """Raised by ``raise_if_failed`` on a non-empty report."""

    def __init__(self, report):
        super().__init__(str(report))
        self.report = report


def _cswitch_rows(trace):
    if hasattr(trace, "cswitch_rows"):
        return trace.cswitch_rows()
    return [(r.process, r.pid, r.tid, r.thread_name, r.cpu,
             r.ready_time, r.switch_in_time, r.switch_out_time)
            for r in trace.cswitches]


def _gpu_rows(trace):
    if hasattr(trace, "gpu_rows"):
        return trace.gpu_rows()
    return [(r.process, r.pid, r.engine, r.packet_type,
             r.submit_time, r.start_execution, r.finished)
            for r in trace.gpu_packets]


class TraceValidator:
    """Composable post-hoc invariant checker for finished traces.

    ``n_logical`` bounds the ``cpu-occupancy`` check (omit it to skip
    the machine-wide bound while keeping per-CPU exclusivity);
    ``invariants`` selects a subset of the catalogue.  ``max_report``
    caps the violations collected per invariant so a badly corrupted
    million-record trace does not produce a million-line report.
    """

    def __init__(self, n_logical=None, invariants=None, max_report=20):
        self.n_logical = n_logical
        self.max_report = max_report
        unknown = set(invariants or ()) - set(INVARIANT_NAMES)
        if unknown:
            raise ValueError(f"unknown invariants: {sorted(unknown)}")
        self.invariants = tuple(invariants) if invariants else INVARIANT_NAMES

    def validate(self, trace):
        """Run every selected invariant; returns a
        :class:`ValidationReport` (never raises on violations)."""
        cswitches = _cswitch_rows(trace)
        gpu = _gpu_rows(trace)
        violations = []
        for name in self.invariants:
            found = list(_CHECKS[name](self, trace, cswitches, gpu))
            violations.extend(found[:self.max_report])
        return ValidationReport(violations=violations,
                                checked=self.invariants)

    # -- individual checks ---------------------------------------------

    def _check_thread_monotonic(self, trace, cswitches, gpu):
        by_thread = {}
        for row in cswitches:
            by_thread.setdefault((row[1], row[2]), []).append(row)
        for (pid, tid), rows in sorted(by_thread.items()):
            rows.sort(key=lambda row: (row[6], row[7]))
            prev = None
            for row in rows:
                if prev is not None and row[6] < prev[7]:
                    yield Violation(
                        "thread-monotonic",
                        f"thread {row[0]}/{pid}:{tid} runs in two places: "
                        f"slice in={row[6]} overlaps previous out={prev[7]}",
                        time=row[6])
                prev = row

    def _check_balanced_edges(self, trace, cswitches, gpu):
        for row in cswitches:
            if not row[5] <= row[6] <= row[7]:
                yield Violation(
                    "balanced-switch-edges",
                    f"slice of {row[0]}:{row[2]} on cpu {row[4]} has "
                    f"disordered edges ready={row[5]} in={row[6]} "
                    f"out={row[7]}",
                    time=min(row[6], row[7]))
        # Global sweep balance: one +1 per switch-in, one -1 per
        # switch-out; the running level of the sorted edge stream must
        # stay non-negative and end at zero.  Zero-length slices are
        # excluded: they are balanced degenerate pairs, but the event
        # tie-break (-1 before +1) would make them dip the sweep.
        events = interval_events(
            [(row[6], row[7]) for row in cswitches if row[7] > row[6]])
        level = 0
        dipped = False
        for time, delta in events:
            level += delta
            if level < 0 and not dipped:
                dipped = True
                yield Violation(
                    "balanced-switch-edges",
                    f"switch-out edge at t={time} precedes any matching "
                    f"switch-in (sweep level went negative)",
                    time=time)
        if level != 0:
            yield Violation(
                "balanced-switch-edges",
                f"unbalanced switch edges: sweep ends at level {level}")

    def _check_cpu_occupancy(self, trace, cswitches, gpu):
        by_cpu = {}
        for row in cswitches:
            if self.n_logical is not None and not 0 <= row[4] < self.n_logical:
                yield Violation(
                    "cpu-occupancy",
                    f"slice of {row[0]}:{row[2]} on cpu {row[4]} outside "
                    f"machine (0..{self.n_logical - 1})",
                    time=row[6])
            by_cpu.setdefault(row[4], []).append((row[6], row[7], row))
        for cpu, slices in sorted(by_cpu.items()):
            slices.sort(key=lambda item: item[:2])
            prev = None
            for start, stop, row in slices:
                if prev is not None and start < prev[1]:
                    yield Violation(
                        "cpu-occupancy",
                        f"cpu {cpu} double-booked: {row[0]}:{row[2]} "
                        f"in={start} overlaps previous out={prev[1]}",
                        time=start)
                prev = (start, stop)
        if self.n_logical is not None and cswitches:
            events = interval_events([(row[6], row[7]) for row in cswitches])
            sweep = fused_sweep((), trace.start_time, trace.stop_time,
                                events=events)
            if sweep.max_concurrency > self.n_logical:
                when = first_time_above(events, self.n_logical)
                yield Violation(
                    "cpu-occupancy",
                    f"{sweep.max_concurrency} CPUs busy at once on a "
                    f"{self.n_logical}-logical-CPU machine "
                    f"(first oversubscribed at t={when})",
                    time=when)

    def _check_gpu_exclusive(self, trace, cswitches, gpu):
        for row in gpu:
            if not row[4] <= row[5] <= row[6]:
                yield Violation(
                    "gpu-engine-exclusive",
                    f"packet of {row[0]} on {row[2]} has disordered times "
                    f"submit={row[4]} start={row[5]} finish={row[6]}",
                    time=min(row[5], row[6]))
        by_engine = {}
        for row in gpu:
            by_engine.setdefault(row[2], []).append((row[5], row[6], row))
        for engine, spans in sorted(by_engine.items()):
            spans.sort(key=lambda item: item[:2])
            prev = None
            for start, stop, row in spans:
                if prev is not None and start < prev[1]:
                    yield Violation(
                        "gpu-engine-exclusive",
                        f"engine {engine} runs two packets at once: "
                        f"{row[0]} start={start} overlaps previous "
                        f"finish={prev[1]}",
                        time=start)
                prev = (start, stop)

    def _check_window_containment(self, trace, cswitches, gpu):
        lo, hi = trace.start_time, trace.stop_time
        for row in cswitches:
            if row[6] < lo or row[7] > hi:
                # Records predating the window cannot be salvaged by a
                # prefix cut, so only the late-overhang case carries a
                # cut hint (clip everything to the advertised stop).
                yield Violation(
                    "window-containment",
                    f"slice of {row[0]}:{row[2]} [{row[6]}, {row[7]}] "
                    f"outside trace window [{lo}, {hi}]",
                    time=hi if row[6] >= lo else None)
        for row in gpu:
            if row[5] < lo or row[6] > hi:
                yield Violation(
                    "window-containment",
                    f"packet of {row[0]} on {row[2]} [{row[5]}, {row[6]}] "
                    f"outside trace window [{lo}, {hi}]",
                    time=hi if row[5] >= lo else None)

    def _check_busy_conservation(self, trace, cswitches, gpu):
        for kind, rows, spans in (
                ("cpu", cswitches, [(row[6], row[7]) for row in cswitches]),
                ("gpu", gpu, [(row[5], row[6]) for row in gpu])):
            if not rows:
                continue
            recorded = sum(stop - start for start, stop in spans)
            sweep = fused_sweep(spans, trace.start_time, trace.stop_time)
            integrated = sum(level * span
                             for level, span in sweep.profile.items()
                             if level > 0)
            if recorded != integrated:
                yield Violation(
                    "busy-conservation",
                    f"{kind} busy time {recorded}us disagrees with the "
                    f"fused-sweep histogram integral {integrated}us")
            if sweep.union_length > trace.duration:
                yield Violation(
                    "busy-conservation",
                    f"{kind} union busy time {sweep.union_length}us exceeds "
                    f"the {trace.duration}us trace window")


_CHECKS = {
    "thread-monotonic": TraceValidator._check_thread_monotonic,
    "balanced-switch-edges": TraceValidator._check_balanced_edges,
    "cpu-occupancy": TraceValidator._check_cpu_occupancy,
    "gpu-engine-exclusive": TraceValidator._check_gpu_exclusive,
    "window-containment": TraceValidator._check_window_containment,
    "busy-conservation": TraceValidator._check_busy_conservation,
}

#: The invariant catalogue, in check order.
INVARIANT_NAMES = tuple(_CHECKS)


def validate_trace(trace, n_logical=None, invariants=None):
    """One-shot helper: validate ``trace`` and return the report."""
    return TraceValidator(n_logical=n_logical,
                          invariants=invariants).validate(trace)


class OnlineValidator:
    """Live invariant checks over the occupancy-edge stream.

    Subscribe to a :class:`~repro.trace.session.TraceSession` (the
    constructor does it) and the validator sees the same busy/idle
    edges the :class:`~repro.metrics.online.OnlineMetricsEngine` folds:
    it asserts simulation time never runs backwards, a CPU/engine is
    never opened twice or closed while idle, occupancy stays within the
    machine, and — at window stop — that the integral of the occupancy
    level equals the summed busy time of the observed intervals (the
    streaming form of ``busy-conservation``).

    Works in both retained and streaming sessions; it only observes,
    so results stay bit-identical with or without it.
    """

    def __init__(self, session, n_logical=None, max_report=20):
        self.n_logical = n_logical
        self.max_report = max_report
        self.violations = []
        self._now = None
        self._open_cpus = {}
        self._open_engines = {}
        self._w0 = None
        self._busy_sum = 0
        self._integral = 0
        self._prev = None
        self._windows_sealed = 0
        if session is not None:
            session.subscribe(self)

    def _flag(self, invariant, message):
        if len(self.violations) < self.max_report:
            self.violations.append(Violation(invariant, message))

    def _advance(self, now):
        if self._now is not None and now < self._now:
            self._flag("thread-monotonic",
                       f"edge time went backwards: {now} after {self._now}")
        self._now = now
        if self._w0 is not None and self._prev is not None and now > self._prev:
            level = len(self._open_cpus) + len(self._open_engines)
            self._integral += level * (now - self._prev)
            self._prev = now
        elif self._w0 is not None and self._prev is None:
            self._prev = max(now, self._w0)

    # -- session callbacks ---------------------------------------------

    def on_window_start(self, now):
        self._w0 = now
        self._prev = now
        self._busy_sum = 0
        self._integral = 0
        # Intervals already in flight count from the window start, the
        # way the post-hoc sweep clamps their edges.
        for key in self._open_cpus:
            self._open_cpus[key] = now
        for key in self._open_engines:
            self._open_engines[key] = now

    def on_window_stop(self, now):
        self._advance(now)
        if self._w0 is None:
            return
        expected = self._busy_sum + sum(
            now - max(opened, self._w0)
            for opened in list(self._open_cpus.values())
            + list(self._open_engines.values()))
        if expected != self._integral:
            self._flag(
                "busy-conservation",
                f"occupancy integral {self._integral}us disagrees with "
                f"summed busy time {expected}us in window "
                f"[{self._w0}, {now}]")
        self._windows_sealed += 1
        self._w0 = None
        self._prev = None

    def on_cpu_busy(self, process, cpu, now):
        self._advance(now)
        if self.n_logical is not None and not 0 <= cpu < self.n_logical:
            self._flag("cpu-occupancy",
                       f"busy edge for cpu {cpu} outside machine "
                       f"(0..{self.n_logical - 1})")
        if cpu in self._open_cpus:
            self._flag("cpu-occupancy",
                       f"cpu {cpu} marked busy twice (process {process}, "
                       f"t={now})")
            self._close_cpu(cpu, now)
        self._open_cpus[cpu] = now
        if (self.n_logical is not None
                and len(self._open_cpus) > self.n_logical):
            self._flag("cpu-occupancy",
                       f"{len(self._open_cpus)} CPUs busy at once on a "
                       f"{self.n_logical}-logical-CPU machine (t={now})")

    def _close_cpu(self, cpu, now):
        opened = self._open_cpus.pop(cpu)
        if self._w0 is not None:
            lo = max(opened, self._w0)
            if now > lo:
                self._busy_sum += now - lo

    def on_cpu_idle(self, process, cpu, now):
        self._advance(now)
        if cpu not in self._open_cpus:
            self._flag("balanced-switch-edges",
                       f"idle edge for cpu {cpu} that was never busy "
                       f"(process {process}, t={now})")
            return
        self._close_cpu(cpu, now)

    def on_engine_busy(self, process, engine, now):
        self._advance(now)
        if engine in self._open_engines:
            self._flag("gpu-engine-exclusive",
                       f"engine {engine} marked busy twice "
                       f"(process {process}, t={now})")
            self._close_engine(engine, now)
        self._open_engines[engine] = now

    def _close_engine(self, engine, now):
        opened = self._open_engines.pop(engine)
        if self._w0 is not None:
            lo = max(opened, self._w0)
            if now > lo:
                self._busy_sum += now - lo

    def on_engine_idle(self, process, engine, now):
        self._advance(now)
        if engine not in self._open_engines:
            self._flag("balanced-switch-edges",
                       f"idle edge for engine {engine} that was never busy "
                       f"(process {process}, t={now})")
            return
        self._close_engine(engine, now)

    def on_frame(self, process, pid, present_time, target_fps,
                 reprojected=False):
        self._advance(present_time)

    def on_mark(self, process, pid, time, label):
        self._advance(time)

    # -- results -------------------------------------------------------

    def report(self):
        return ValidationReport(violations=list(self.violations),
                                checked=INVARIANT_NAMES)

    def raise_if_failed(self):
        return self.report().raise_if_failed()


def check_single_run(run, n_logical=None):
    """Plausibility checks on a harness result (cached or fresh).

    Returns a list of problem strings (empty when the result looks
    sound).  This is intentionally cheap — it guards the result-cache
    reuse path against corrupt or stale entries, not against subtle
    metric drift (the golden suite owns that).
    """
    problems = []
    tlp = getattr(run, "tlp", None)
    gpu = getattr(run, "gpu_util", None)
    if tlp is None or gpu is None:
        return [f"result of type {type(run).__name__} has no metrics"]
    if tlp.window_us <= 0:
        problems.append(f"non-positive TLP window {tlp.window_us}us")
    if not tlp.fractions:
        problems.append("empty concurrency-fraction vector")
    else:
        total = sum(tlp.fractions)
        if abs(total - 1.0) > 1e-6:
            problems.append(f"concurrency fractions sum to {total!r}, not 1")
        if any(f < -1e-12 or f > 1.0 + 1e-12 for f in tlp.fractions):
            problems.append("concurrency fraction outside [0, 1]")
        limit = len(tlp.fractions) - 1
        if not 0.0 <= tlp.tlp <= limit:
            problems.append(f"TLP {tlp.tlp!r} outside [0, {limit}]")
        if not 0 <= tlp.max_instantaneous <= limit:
            problems.append(
                f"max instantaneous TLP {tlp.max_instantaneous} outside "
                f"[0, {limit}]")
    if n_logical is not None and tlp.fractions \
            and len(tlp.fractions) != n_logical + 1:
        problems.append(
            f"{len(tlp.fractions)} concurrency levels for an "
            f"{n_logical}-logical-CPU machine")
    if not 0.0 <= gpu.utilization_pct <= 100.0:
        problems.append(
            f"GPU utilization {gpu.utilization_pct!r}% outside [0, 100]")
    if gpu.window_us <= 0:
        problems.append(f"non-positive GPU window {gpu.window_us}us")
    return problems
