"""VR runtime substrate: headsets and the compositor."""

from repro.vr.compositor import Compositor
from repro.vr.headsets import (
    ASW,
    HEADSETS,
    REPROJECTION,
    RIFT,
    VIVE,
    VIVE_PRO,
    HeadsetSpec,
)

__all__ = [
    "ASW",
    "Compositor",
    "HEADSETS",
    "HeadsetSpec",
    "REPROJECTION",
    "RIFT",
    "VIVE",
    "VIVE_PRO",
]
