"""The VR compositor: vsync pacing, ASW, asynchronous reprojection.

The compositor runs in its own process (the SteamVR / Oculus runtime)
and ticks at the headset refresh rate.  Each tick it either presents a
freshly rendered frame or applies the headset's miss policy:

* **Reprojection (Vive / Vive Pro)** — insert an adjusted frame
  (``reprojected=True``) and keep requesting full-rate rendering; the
  real frame rate oscillates between 90 and 45 (Fig. 13).
* **ASW (Rift)** — after a burst of misses, clamp the application to
  half rate for a hold-off window: the game renders every other vsync
  and synthesized frames fill in.  Frame delivery becomes *stable*
  at 45 (or stays stable at 90 when the system keeps up) — the Fig. 13
  contrast, and the 4-logical-core clamp of Fig. 7.
"""

from repro.gpu.device import ENGINE_3D
from repro.os.work import WorkClass
from repro.sim import MS, SECOND
from repro.vr.headsets import ASW

#: Misses within the detection window that trigger ASW half-rate.
_ASW_MISS_THRESHOLD = 6
_ASW_WINDOW_TICKS = 18
#: Ticks ASW stays in half-rate before probing full rate again.
_ASW_HOLDOFF_TICKS = 270


class Compositor:
    """Paces one VR application at the headset's refresh rate."""

    def __init__(self, rt, headset, process_name="vrcompositor.exe"):
        self.rt = rt
        self.headset = headset
        self.process = rt.spawn_process(process_name)
        self.frame_period_us = SECOND // headset.target_fps
        #: Set by the game's render thread when a frame finishes on GPU.
        self._frames_ready = 0
        #: The game waits on this gate; released once per (active) tick.
        self._tick_gates = []
        self.half_rate = False
        self.real_frames = 0
        self.reprojected_frames = 0
        self._recent_misses = []
        self._holdoff = 0
        self._tick_index = 0
        self._runtime_gates = []
        # The compositor is latency-critical: it runs at high priority
        # on the CPU and its timewarp packets use the GPU's preemption
        # queue, as real VR runtimes do.
        self.process.spawn_thread(self._compositor_body, name="compositor",
                                  priority=1)
        for index in range(headset.runtime_threads):
            self.process.spawn_thread(self._runtime_body(),
                                      name=f"runtime-{index}")

    def register_game(self, gate):
        """The game's frame loop waits on ``gate`` (a Semaphore)."""
        self._tick_gates.append(gate)

    def frame_done(self):
        """Called (via completion callback) when a GPU frame finishes."""
        self._frames_ready += 1

    def _runtime_body(self):
        """A vendor-runtime worker (tracking, timewarp prep) that runs
        its share of work every vsync, synchronized with the tick —
        Rift's heavier client runtime is what lifts its TLP in
        Fig. 12a."""
        from repro.os.sync import Semaphore

        rt, headset = self.rt, self.headset
        rng = rt.fork_rng()
        gate = Semaphore(rt.kernel, 0)
        self._runtime_gates.append(gate)
        period = self.frame_period_us

        def body(ctx):
            while ctx.now < rt.end_time:
                yield ctx.wait(gate.acquire())
                if ctx.now >= rt.end_time:
                    return
                busy = max(1, int(period * headset.runtime_duty
                                  * rng.uniform(0.7, 1.3)))
                yield ctx.cpu(busy, WorkClass.UI)

        return body

    def _compositor_body(self, ctx):
        rt = self.rt
        period = self.frame_period_us
        while ctx.now < rt.end_time:
            tick_start = ctx.now
            self._tick_index += 1
            yield ctx.cpu(int(0.5 * MS), WorkClass.UI)
            if self._frames_ready > 0:
                self._frames_ready -= 1
                self.real_frames += 1
                self._recent_misses.append(0)
                rt.kernel.session.emit_frame(
                    self.process.name, self.process.pid, ctx.now,
                    self.headset.target_fps, reprojected=False)
            else:
                self.reprojected_frames += 1
                self._recent_misses.append(1)
                # Synthesize the adjusted frame: a small timewarp pass
                # through the GPU's high-priority queue.
                rt.gpu.submit(self.process, ENGINE_3D, "timewarp",
                              int(1.2 * MS), priority=1)
                rt.kernel.session.emit_frame(
                    self.process.name, self.process.pid, ctx.now,
                    self.headset.target_fps, reprojected=True)
            del self._recent_misses[:-_ASW_WINDOW_TICKS]
            if self.headset.policy == ASW:
                self._update_asw()
            # Release the game for the next frame; in ASW half-rate
            # mode only every other tick renders.
            if not (self.half_rate and self._tick_index % 2):
                for gate in self._tick_gates:
                    gate.release()
            for gate in self._runtime_gates:
                gate.release()
            rt.outputs["real_frames"] = self.real_frames
            rt.outputs["reprojected_frames"] = self.reprojected_frames
            elapsed = ctx.now - tick_start
            if elapsed < period and ctx.now < rt.end_time:
                yield ctx.sleep(min(period - elapsed,
                                    max(1, rt.end_time - ctx.now)))
        for gate in self._tick_gates + self._runtime_gates:
            gate.release()

    def _update_asw(self):
        if self.half_rate:
            self._holdoff -= 1
            if self._holdoff <= 0:
                self.half_rate = False
                self._recent_misses.clear()
        elif sum(self._recent_misses) >= _ASW_MISS_THRESHOLD:
            self.half_rate = True
            self._holdoff = _ASW_HOLDOFF_TICKS
            self.rt.outputs["asw_engaged"] = (
                self.rt.outputs.get("asw_engaged", 0) + 1)
