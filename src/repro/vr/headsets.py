"""VR headset specifications.

The paper tests Oculus Rift, HTC Vive and HTC Vive Pro (§V-F).  The
relevant behavioural differences:

* **Frame-miss policy** — Rift uses Asynchronous SpaceWarp (ASW):
  when the system cannot sustain 90 FPS the render rate is *clamped*
  to 45 and synthesized frames fill the gaps, giving the stable frame
  rates of Fig. 13.  Vive and Vive Pro use asynchronous reprojection:
  the GPU keeps chasing 90 FPS and an adjusted frame is inserted
  whenever a render misses vsync, so the real frame rate oscillates
  between 90 and 45.
* **Resolution** — Vive Pro renders ~1.78x the pixels of Rift/Vive;
  with the adaptive-quality scaling VR titles apply, the effective GPU
  load factor is lower than raw pixel count, but still the highest of
  the three (highest GPU utilization in Fig. 12b).
* **Runtime** — the Oculus runtime runs more client-side work than
  SteamVR, which the paper sees as Rift's consistently higher TLP.
"""

from dataclasses import dataclass

ASW = "asw"
REPROJECTION = "reprojection"


@dataclass(frozen=True)
class HeadsetSpec:
    key: str
    name: str
    target_fps: int
    #: Effective GPU load multiplier vs. the Rift/Vive baseline.
    gpu_load_factor: float
    #: Frame-miss policy: ASW (Rift) or asynchronous reprojection.
    policy: str
    #: Duty cycle of the vendor runtime's client-side threads.
    runtime_threads: int
    runtime_duty: float
    #: CPU-side cost multiplier from resolution (draw-call submission
    #: grows with render resolution; hurts CPU-bound titles).
    cpu_load_factor: float = 1.0


RIFT = HeadsetSpec(
    key="rift", name="Oculus Rift", target_fps=90,
    gpu_load_factor=1.0, policy=ASW,
    runtime_threads=2, runtime_duty=0.10, cpu_load_factor=1.0)

VIVE = HeadsetSpec(
    key="vive", name="HTC Vive", target_fps=90,
    gpu_load_factor=1.0, policy=REPROJECTION,
    runtime_threads=1, runtime_duty=0.06, cpu_load_factor=1.0)

VIVE_PRO = HeadsetSpec(
    key="vive-pro", name="HTC Vive Pro", target_fps=90,
    gpu_load_factor=1.17, policy=REPROJECTION,
    runtime_threads=1, runtime_duty=0.06, cpu_load_factor=1.25)

HEADSETS = {h.key: h for h in (RIFT, VIVE, VIVE_PRO)}
