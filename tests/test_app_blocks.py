"""Unit tests for the reusable application behaviour blocks."""

import pytest

from repro.apps.base import AppRuntime
from repro.apps.blocks import (
    compute,
    duty_cycle_thread,
    fan_out,
    gpu_stream_thread,
    housekeeping_thread,
    ui_pump,
)
from repro.automation import InputDriver, InputScript
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.os import Kernel, WorkClass
from repro.sim import MS, SECOND, Environment
from repro.trace import TraceSession


@pytest.fixture
def runtime():
    env = Environment()
    machine = paper_machine()
    session = TraceSession(env)
    kernel = Kernel(env, machine, session=session, turbo=False)
    gpu = GpuDevice(env, machine.gpu, session)
    driver = InputDriver(kernel, seed=1)
    session.start()
    rt = AppRuntime(kernel, gpu, driver, 5 * SECOND, seed=1)
    rt.session = session
    return rt


def finish(rt):
    rt.env.run(until=rt.end_time)
    return rt.session.stop()


class TestFanOut:
    def test_splits_work_across_workers(self, runtime):
        process = runtime.spawn_process("app.exe")
        done = fan_out(runtime, process, 600 * MS, 6, WorkClass.BALANCED)
        trace = finish(runtime)
        assert done.triggered
        names = {r.thread_name for r in trace.cswitches
                 if r.process == "app.exe"}
        assert len([n for n in names if n.startswith("worker")]) == 6

    def test_total_work_preserved(self, runtime):
        process = runtime.spawn_process("app.exe")
        fan_out(runtime, process, 600 * MS, 6, WorkClass.BALANCED,
                imbalance=0.0)
        finish(runtime)
        retired = runtime.kernel.scheduler.retired_work["app.exe"]
        assert retired == pytest.approx(600 * MS, rel=0.02)

    def test_worker_validation(self, runtime):
        process = runtime.spawn_process("app.exe")
        with pytest.raises(ValueError):
            fan_out(runtime, process, MS, 0)

    def test_imbalance_spreads_finish_times(self, runtime):
        process = runtime.spawn_process("app.exe")
        fan_out(runtime, process, 1_200 * MS, 4, WorkClass.BALANCED,
                imbalance=0.3)
        trace = finish(runtime)
        last_by_thread = {}
        for record in trace.cswitches:
            if record.thread_name.startswith("worker"):
                last_by_thread[record.thread_name] = record.switch_out_time
        finishes = sorted(last_by_thread.values())
        assert finishes[-1] - finishes[0] > 10 * MS


class TestDutyCycle:
    def test_duty_approximates_requested_share(self, runtime):
        process = runtime.spawn_process("app.exe")
        duty_cycle_thread(runtime, process, 0.25, jitter=0.0)
        finish(runtime)
        retired = runtime.kernel.scheduler.retired_work["app.exe"]
        assert retired / runtime.duration_us == pytest.approx(0.25, abs=0.04)

    def test_duty_validation(self, runtime):
        process = runtime.spawn_process("app.exe")
        with pytest.raises(ValueError):
            duty_cycle_thread(runtime, process, 0.0)
        with pytest.raises(ValueError):
            duty_cycle_thread(runtime, process, 1.5)


class TestGpuStream:
    def test_utilization_approximates_target(self, runtime):
        process = runtime.spawn_process("app.exe")
        gpu_stream_thread(runtime, process, 0.2, packet_ref_us=4 * MS)
        finish(runtime)
        measured = runtime.gpu.utilization_pct(runtime.duration_us)
        assert measured == pytest.approx(20.0, abs=4.0)

    def test_validation(self, runtime):
        process = runtime.spawn_process("app.exe")
        with pytest.raises(ValueError):
            gpu_stream_thread(runtime, process, 0.0)


class TestHousekeeping:
    def test_bursts_reach_machine_width(self, runtime):
        from repro.metrics import measure_tlp
        from repro.trace import CpuUsagePreciseTable

        process = runtime.spawn_process("app.exe")
        housekeeping_thread(runtime, process, period_us=1 * SECOND,
                            burst_us=8 * MS)
        trace = finish(runtime)
        table = CpuUsagePreciseTable.from_trace(trace)
        result = measure_tlp(table, 12, processes={"app.exe"})
        assert result.max_instantaneous >= 11

    def test_total_cost_is_tiny(self, runtime):
        process = runtime.spawn_process("app.exe")
        housekeeping_thread(runtime, process, period_us=1 * SECOND,
                            burst_us=8 * MS)
        finish(runtime)
        retired = runtime.kernel.scheduler.retired_work.get("app.exe", 0)
        assert retired < 0.15 * runtime.duration_us


class TestUiPump:
    def test_handler_called_per_action_with_marks(self, runtime):
        process = runtime.spawn_process("app.exe")
        handled = []

        def handler(ctx, action):
            handled.append(action.label)
            yield ctx.cpu(5 * MS, WorkClass.UI)

        script = (InputScript().wait(100 * MS).click("a")
                  .wait(100 * MS).click("b"))
        ui_pump(runtime, process, script, handler)
        trace = finish(runtime)
        assert handled == ["a", "b"]
        labels = [m.label for m in trace.marks]
        assert "input:a" in labels and "response:b" in labels

    def test_idle_ticks_after_script_ends(self, runtime):
        process = runtime.spawn_process("app.exe")

        def handler(ctx, action):
            yield ctx.cpu(MS, WorkClass.UI)

        ui_pump(runtime, process, InputScript().click("only"), handler)
        trace = finish(runtime)
        ui_records = [r for r in trace.cswitches
                      if r.thread_name == "ui-main"]
        # Repaint ticks continue across the window.
        assert max(r.switch_out_time for r in ui_records) > 4 * SECOND


class TestCompute:
    def test_compute_chunks_work(self, runtime):
        process = runtime.spawn_process("app.exe")

        def body(ctx):
            yield from compute(ctx, 100 * MS, WorkClass.UI, chunk_us=10 * MS)

        process.spawn_thread(body)
        trace = finish(runtime)
        busy = sum(r.duration for r in trace.cswitches
                   if r.process == "app.exe")
        assert busy == pytest.approx(100 * MS, rel=0.02)
