"""Behavioural validation of every application model against Table II.

Each model is simulated once (40 simulated seconds, fixed seed) and
its TLP / GPU utilization are checked against the paper's reported
values within tolerance bands.  Structural properties the paper calls
out (Excel's burst to 12, PhoenixMiner's saturated dual queues,
EasyMiner's thread-per-core, browser process counts...) are asserted
directly.
"""

import pytest

from repro.apps import REGISTRY, create_app
from repro.harness import run_app_once
from repro.sim import SECOND

DURATION = 40 * SECOND

#: Absolute tolerance floors; relative tolerance on top.
TLP_ABS, TLP_REL = 0.45, 0.18
GPU_ABS, GPU_REL = 1.8, 0.25

_cache = {}


def run_cached(name, **config):
    key = (name, tuple(sorted(config.items())))
    if key not in _cache:
        _cache[key] = run_app_once(create_app(name, **config),
                                   duration_us=DURATION, seed=5)
    return _cache[key]


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_tlp_matches_paper(name):
    cls = REGISTRY[name]
    result = run_cached(name)
    tolerance = max(TLP_ABS, cls.paper_tlp * TLP_REL)
    assert result.tlp.tlp == pytest.approx(cls.paper_tlp, abs=tolerance), (
        f"{name}: measured TLP {result.tlp.tlp:.2f}, "
        f"paper {cls.paper_tlp}")


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_gpu_utilization_matches_paper(name):
    cls = REGISTRY[name]
    result = run_cached(name)
    tolerance = max(GPU_ABS, cls.paper_gpu_util * GPU_REL)
    assert result.gpu_util.utilization_pct == pytest.approx(
        cls.paper_gpu_util, abs=tolerance), (
        f"{name}: measured GPU {result.gpu_util.utilization_pct:.2f}%, "
        f"paper {cls.paper_gpu_util}%")


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_tlp_is_physical(name):
    result = run_cached(name)
    assert 0.0 < result.tlp.tlp <= 12.0
    assert 0 <= result.gpu_util.utilization_pct <= 100.0
    assert sum(result.tlp.fractions) == pytest.approx(1.0)


class TestHeadlineStructure:
    """Structural observations the paper highlights per application."""

    def test_excel_touches_maximum_instantaneous_tlp(self):
        # "its instantaneous TLP reaches the maximum of 12" with
        # roughly 3.7% of busy time at the maximum.
        result = run_cached("excel")
        assert result.tlp.max_instantaneous == 12
        busy = 1.0 - result.tlp.fractions[0]
        c12_of_busy = result.tlp.fractions[12] / busy
        assert 0.015 < c12_of_busy < 0.08

    def test_handbrake_mostly_at_maximum_with_dips(self):
        result = run_cached("handbrake")
        fractions = result.tlp.fractions
        busy = 1.0 - fractions[0]
        assert fractions[12] / busy > 0.5        # mostly at max
        assert sum(fractions[1:6]) / busy > 0.03  # serialization dips

    def test_photoshop_reaches_max_during_filter_render(self):
        result = run_cached("photoshop")
        assert result.tlp.max_instantaneous == 12

    def test_phoenixminer_two_simultaneous_packets(self):
        result = run_cached("phoenixminer")
        assert result.gpu_util.capped          # the "*100.0" footnote
        assert result.gpu_util.max_concurrent_packets >= 2

    def test_wineth_single_stream_not_capped(self):
        result = run_cached("wineth")
        assert not result.gpu_util.capped
        assert result.gpu_util.utilization_pct > 97.0

    def test_easyminer_one_thread_per_logical_core(self):
        result = run_cached("easyminer")
        assert result.tlp.max_instantaneous == 12
        assert result.tlp.tlp > 11.0

    def test_acrobat_and_braina_use_no_gpu(self):
        for name in ("acrobat", "braina"):
            assert run_cached(name).gpu_util.utilization_pct == 0.0

    def test_handbrake_gpu_stays_below_one_percent(self):
        assert run_cached("handbrake").gpu_util.utilization_pct < 1.0

    def test_winx_gpu_toggle_changes_behaviour(self):
        gpu_on = run_cached("winx")
        gpu_off = run_cached("winx", use_gpu=False)
        assert gpu_on.outputs["gpu_path"] is True
        assert gpu_off.outputs["gpu_path"] is False
        # Offload: higher rate, lower TLP, GPU becomes busy (Table III).
        assert gpu_on.outputs["frames"] > gpu_off.outputs["frames"] * 1.2
        assert gpu_on.tlp.tlp < gpu_off.tlp.tlp
        assert gpu_off.gpu_util.utilization_pct == 0.0

    def test_chrome_spawns_many_renderer_processes(self):
        chrome = run_cached("chrome")
        firefox = run_cached("firefox")
        assert chrome.outputs["renderer_processes"] > \
            2 * firefox.outputs["renderer_processes"]

    def test_vr_games_hold_90_fps_on_full_machine(self):
        result = run_cached("arizona-sunshine")
        fps = result.outputs["real_frames"] / (DURATION / SECOND)
        assert fps == pytest.approx(90, abs=3)

    def test_media_player_plays_at_30_fps(self):
        result = run_cached("vlc")
        fps = result.outputs["frames_played"] / (DURATION / SECOND)
        assert fps == pytest.approx(30, abs=1)

    def test_assistant_answers_all_queries(self):
        result = run_cached("cortana")
        assert result.outputs["queries_answered"] == 7

    def test_mining_hash_rates_are_plausible(self):
        # GTX 1080 Ti ethash is ~32 MH/s in the real world.
        wineth = run_cached("wineth")
        assert 25e6 < wineth.outputs["hash_rate"] < 40e6

    def test_most_apps_touch_maximum_instantaneous_tlp(self):
        # Abstract: "most applications attaining the maximum
        # instantaneous TLP of 12 during execution".
        reaching = sum(1 for name in REGISTRY
                       if run_cached(name).tlp.max_instantaneous >= 12)
        assert reaching >= 24

    def test_results_are_deterministic(self):
        first = run_app_once(create_app("excel"), duration_us=DURATION,
                             seed=5)
        again = run_app_once(create_app("excel"), duration_us=DURATION,
                             seed=5)
        assert first.tlp.tlp == again.tlp.tlp
        assert first.gpu_util.utilization_pct == \
            again.gpu_util.utilization_pct

    def test_different_seeds_vary_slightly(self):
        a = run_app_once(create_app("powerdirector"),
                         duration_us=DURATION, seed=5)
        b = run_app_once(create_app("powerdirector"),
                         duration_us=DURATION, seed=6)
        assert a.tlp.tlp != b.tlp.tlp
        assert abs(a.tlp.tlp - b.tlp.tlp) < 0.8
