"""Tests for the application registry and model metadata."""

import pytest

from repro.apps import CATEGORIES, REGISTRY, SUITE, Category, create_app
from repro.data import PAPER_TABLE2


class TestRegistry:
    def test_thirty_applications(self):
        assert len(REGISTRY) == 30
        assert len(SUITE) == 30

    def test_suite_order_matches_registry(self):
        assert set(SUITE) == set(REGISTRY)

    def test_nine_categories(self):
        assert len(CATEGORIES) == 9
        assert set(CATEGORIES) == set(Category)

    def test_category_sizes_match_table2(self):
        sizes = {category.value: len(names)
                 for category, names in CATEGORIES.items()}
        assert sizes == {
            "Image Authoring": 3,
            "Office": 5,
            "Multimedia Playback": 3,
            "Video Authoring": 2,
            "Video Transcoding": 2,
            "Web Browsing": 3,
            "VR Gaming": 6,
            "Cryptocurrency Mining": 4,
            "Personal Assistant": 2,
        }

    def test_every_app_has_paper_reference_values(self):
        for name, cls in REGISTRY.items():
            assert name in PAPER_TABLE2
            assert cls.paper_tlp == PAPER_TABLE2[name][0]
            assert cls.paper_gpu_util == PAPER_TABLE2[name][1]

    def test_create_app_returns_fresh_instances(self):
        first = create_app("handbrake")
        second = create_app("handbrake")
        assert first is not second

    def test_create_app_unknown_name(self):
        with pytest.raises(ValueError, match="unknown application"):
            create_app("solitaire")

    def test_create_app_forwards_config(self):
        app = create_app("winx", use_gpu=False)
        assert app.use_gpu is False

    def test_display_names_are_unique(self):
        names = [cls.display_name for cls in REGISTRY.values()]
        assert len(names) == len(set(names))

    def test_every_model_documents_itself(self):
        for cls in REGISTRY.values():
            assert cls.__doc__, f"{cls.__name__} lacks a docstring"
            assert cls.version, f"{cls.__name__} lacks a version"
