"""Structural tests of application-model mechanics, per category.

These go below the Table II numbers: queue/pipeline behaviour, process
topology, fallback paths, throttling — the mechanisms the category
docstrings promise.
"""

import pytest

from repro.apps import create_app
from repro.apps.browsing import SITE_PROFILES, TESTS
from repro.apps.transcoding import HandBrake, WinXVideoConverter
from repro.harness import run_app_once
from repro.hardware import GTX_285, paper_machine
from repro.sim import SECOND

SHORT = 15 * SECOND


class TestTranscodingPipeline:
    def test_total_frames_limits_the_run(self):
        run = run_app_once(HandBrake(total_frames=120), duration_us=30 * SECOND,
                           seed=1)
        assert run.outputs["frames"] == 120
        assert run.outputs["completed_at_us"] < 30 * SECOND

    def test_unbounded_run_never_sets_completion(self):
        run = run_app_once(HandBrake(), duration_us=SHORT, seed=1)
        assert "completed_at_us" not in run.outputs

    def test_worker_override_caps_width(self):
        run = run_app_once(HandBrake(workers=4), duration_us=SHORT, seed=1)
        assert run.tlp.max_instantaneous <= 6  # 4 workers + coordinator

    def test_winx_without_nvenc_falls_back_to_cpu(self):
        # The GTX 285 has no NVENC: the CUDA path must quietly fall
        # back to software encode.
        machine = paper_machine().with_gpu(GTX_285)
        run = run_app_once(WinXVideoConverter(use_gpu=True),
                           machine=machine, duration_us=SHORT, seed=1)
        assert run.outputs["gpu_path"] is False

    def test_nvenc_packets_emitted_on_gpu_path(self):
        run = run_app_once(WinXVideoConverter(), duration_us=SHORT,
                           seed=1, keep_trace=True)
        types = {p.packet_type for p in run.trace.gpu_packets}
        assert "nvenc" in types and "cuda-filter" in types

    def test_transcode_fps_helper(self):
        app = HandBrake(total_frames=60)
        run = run_app_once(app, duration_us=30 * SECOND, seed=1)
        fps = app.transcode_fps(run.outputs, 30 * SECOND)
        assert fps == pytest.approx(
            60 * SECOND / run.outputs["completed_at_us"], rel=0.01)


class TestBrowserTopology:
    def test_all_test_names_valid(self):
        for test in TESTS:
            create_app("chrome", test=test)

    def test_unknown_test_rejected(self):
        with pytest.raises(ValueError):
            create_app("chrome", test="incognito")

    def test_site_profiles_complete(self):
        required = {"load_us", "helpers", "tick_duty", "gpu_factor",
                    "iframes", "video", "game"}
        for profile in SITE_PROFILES.values():
            assert required <= set(profile)

    def test_gpu_process_exists(self):
        run = run_app_once(create_app("chrome"), duration_us=SHORT, seed=1)
        assert any(name.endswith("-gpu.exe") for name in run.process_names)

    def test_chrome_isolates_espn_iframes(self):
        run = run_app_once(create_app("chrome", test="espn"),
                           duration_us=SHORT, seed=1)
        renderers = [n for n in run.process_names if "renderer" in n]
        assert len(renderers) == SITE_PROFILES["espn"]["iframes"]

    def test_edge_keeps_one_content_process_on_espn(self):
        run = run_app_once(create_app("edge", test="espn"),
                           duration_us=SHORT, seed=1)
        contents = [n for n in run.process_names if "content" in n]
        assert len(contents) == 1

    def test_youtube_tab_decodes_video_on_gpu(self):
        run = run_app_once(create_app("firefox", test="multi-tab"),
                           duration_us=SHORT, seed=1, keep_trace=True)
        assert any(p.packet_type == "nvdec" for p in run.trace.gpu_packets)


class TestMediaPlayerPipeline:
    def test_no_frames_before_open_input(self):
        run = run_app_once(create_app("vlc"), duration_us=SHORT, seed=1,
                           keep_trace=True)
        first_decode = min(p.submit_time for p in run.trace.gpu_packets
                           if p.packet_type == "nvdec")
        # The scripted open-file click lands around 0.4-0.6 s.
        assert first_decode > 300_000

    def test_quality_switch_doubles_decode_cost(self):
        run = run_app_once(create_app("wmp"), duration_us=30 * SECOND,
                           seed=1, keep_trace=True)
        halfway = 15 * SECOND
        early = [p.running_time for p in run.trace.gpu_packets
                 if p.packet_type == "nvdec" and p.finished < halfway]
        late = [p.running_time for p in run.trace.gpu_packets
                if p.packet_type == "nvdec"
                and p.start_execution > halfway + 2 * SECOND]
        assert sum(late) / len(late) > 1.6 * sum(early) / len(early)


class TestMiningStructure:
    def test_easyminer_threads_follow_core_count(self):
        four = run_app_once(create_app("easyminer"),
                            machine=paper_machine().with_logical_cpus(4),
                            duration_us=SHORT, seed=1)
        assert four.tlp.tlp == pytest.approx(4.0, abs=0.5)

    def test_mining_stats_exposed(self):
        run = run_app_once(create_app("bitcoin-miner"), duration_us=SHORT,
                           seed=1)
        stats = run.outputs["mining_stats"]
        assert stats.batches > 0
        assert stats.cpu_hashes > 0  # hybrid miner

    def test_gpu_only_miners_have_no_cpu_hashes(self):
        run = run_app_once(create_app("wineth"), duration_us=SHORT, seed=1)
        assert run.outputs["mining_stats"].cpu_hashes == 0

    def test_phoenix_uses_two_engines(self):
        run = run_app_once(create_app("phoenixminer"), duration_us=SHORT,
                           seed=1, keep_trace=True)
        engines = {p.engine for p in run.trace.gpu_packets}
        assert len(engines) == 2


class TestAssistantStructure:
    def test_cloud_wait_keeps_cpu_idle(self):
        run = run_app_once(create_app("braina"), duration_us=30 * SECOND,
                           seed=1)
        assert run.tlp.idle_fraction > 0.7

    def test_voice_inputs_counted(self):
        run = run_app_once(create_app("cortana"), duration_us=30 * SECOND,
                           seed=1)
        assert run.outputs["queries_answered"] >= 6


class TestVrStructure:
    def test_all_engine_threads_present(self):
        run = run_app_once(create_app("fallout4"), duration_us=10 * SECOND,
                           seed=1, keep_trace=True)
        names = {r.thread_name for r in run.trace.cswitches
                 if r.process == "Fallout4VR.exe"}
        assert {"game-main", "render", "audio", "sensor-input"} <= names
        assert any(n.startswith("job-") for n in names)

    def test_frame_packets_on_3d_engine(self):
        run = run_app_once(create_app("raw-data"), duration_us=10 * SECOND,
                           seed=1, keep_trace=True)
        frames = [p for p in run.trace.gpu_packets
                  if p.packet_type == "vr-frame"]
        assert frames and all(p.engine == "3D" for p in frames)


class TestImageAuthoringStructure:
    def test_photoshop_counts_filters(self):
        run = run_app_once(create_app("photoshop"), duration_us=60 * SECOND,
                           seed=1)
        assert run.outputs["filters_rendered"] == 5

    def test_photoshop_tiles_use_all_cores(self):
        run = run_app_once(create_app("photoshop"), duration_us=30 * SECOND,
                           seed=1, keep_trace=True)
        tiles = {r.thread_name for r in run.trace.cswitches
                 if r.thread_name.startswith("tile-")}
        assert len(tiles) >= 12

    def test_autocad_regen_helpers(self):
        run = run_app_once(create_app("autocad"), duration_us=SHORT,
                           seed=1, keep_trace=True)
        assert any(r.thread_name.startswith("regen")
                   for r in run.trace.cswitches)
