"""Unit tests for input scripts and drivers (AutoIt substitute)."""

import pytest

from repro.automation import AUTOIT, MANUAL, InputDriver, InputScript
from repro.hardware import paper_machine
from repro.os import Kernel
from repro.sim import MS, SECOND, Environment


@pytest.fixture
def kernel():
    return Kernel(Environment(), paper_machine(), turbo=False)


class TestInputScript:
    def test_actions_are_time_stamped_at_cursor(self):
        script = InputScript().wait(100).click("a").wait(50).key("b")
        assert script.actions[0].at_us == 100
        # click advances cursor by its own duration (80 ms).
        assert script.actions[1].at_us == 100 + 80 * MS + 50

    def test_length_tracks_cursor(self):
        script = InputScript().wait(1000)
        assert script.length_us == 1000

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            InputScript().wait(-1)

    def test_speak_carries_duration(self):
        script = InputScript().speak("query", 2 * SECOND)
        assert script.actions[0].duration_us == 2 * SECOND

    def test_stretched_to_scales_times(self):
        script = InputScript().wait(1000).click("a").wait(1000)
        stretched = script.stretched_to(script.length_us * 2)
        assert stretched.actions[0].at_us == 2000
        assert stretched.length_us == script.length_us * 2

    def test_stretch_of_empty_script_is_noop(self):
        script = InputScript()
        assert script.stretched_to(500) is script

    def test_repeated_appends_with_gap(self):
        script = InputScript().click("a")
        tripled = script.repeated(3, gap_us=100)
        assert len(tripled) == 3
        step = script.length_us + 100
        assert tripled.actions[1].at_us == script.actions[0].at_us + step

    def test_repeated_validation(self):
        with pytest.raises(ValueError):
            InputScript().repeated(0)

    def test_iteration_and_len(self):
        script = InputScript().click("a").key("b")
        assert len(script) == 2
        assert [a.kind for a in script] == ["click", "key"]


class TestInputDriver:
    def _collect(self, kernel, mode, seed=3):
        script = (InputScript().wait(100 * MS).click("one")
                  .wait(200 * MS).click("two"))
        driver = InputDriver(kernel, mode=mode, seed=seed)
        queue = driver.play(script)
        arrivals = []

        def consumer():
            while True:
                event = queue.get()
                action = yield event
                if action is None:
                    return
                arrivals.append((kernel.env.now, action.label))

        kernel.env.process(consumer())
        kernel.env.run()
        return arrivals, driver

    def test_unknown_mode_rejected(self, kernel):
        with pytest.raises(ValueError):
            InputDriver(kernel, mode="telepathy")

    def test_autoit_replays_all_actions_in_order(self, kernel):
        arrivals, driver = self._collect(kernel, AUTOIT)
        assert [label for _t, label in arrivals] == ["one", "two"]
        assert driver.delivered == 2

    def test_autoit_timing_is_tight(self, kernel):
        arrivals, _ = self._collect(kernel, AUTOIT)
        first_time, _ = arrivals[0]
        # nominal: 100ms wait + 80ms click duration (+ <=4ms jitter)
        assert 180 * MS <= first_time <= 190 * MS

    def test_manual_mode_adds_human_jitter(self, kernel):
        arrivals, _ = self._collect(kernel, MANUAL)
        first_time, _ = arrivals[0]
        assert first_time >= 180 * MS  # jitter only delays

    def test_manual_jitter_varies_with_seed(self):
        times = set()
        for seed in range(6):
            kernel = Kernel(Environment(), paper_machine(), turbo=False)
            arrivals, _ = self._collect(kernel, MANUAL, seed=seed)
            times.add(arrivals[0][0])
        assert len(times) > 3

    def test_autoit_is_deterministic_per_seed(self):
        def run(seed):
            kernel = Kernel(Environment(), paper_machine(), turbo=False)
            arrivals, _ = self._collect(kernel, AUTOIT, seed=seed)
            return arrivals

        assert run(5) == run(5)
