"""Chaos suite: every fault injector through the supervised executor.

The robustness contract under test: no injected fault — trace-level or
execution-level — ever escapes the supervisor as an unhandled
exception.  Each one either heals on retry or lands in the result list
as a :class:`RunFailure` with the right taxonomy tag, while every
clean grid point completes normally.  A final property drives a
150-run grid seeded with failures end to end, and a golden-config
sweep proves resume reproduces bit-identical fingerprints.
"""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.executor import make_spec
from repro.harness.runner import SingleRun
from repro.harness.supervisor import (
    FAILURE_KINDS,
    RunFailure,
    SupervisedExecutor,
    SweepJournal,
)
from repro.sim import SECOND
from repro.validate import (
    EXEC_FAULTS,
    FAULTS,
    GOLDEN_CONFIGS,
    fingerprint_run,
    golden_spec,
)

SHORT = SECOND // 2

#: Trace faults are only *detected* when the run validates its trace.
TRACE_FAULTS = sorted(FAULTS)

APPS = ("chrome", "word", "excel", "firefox", "vlc", "photoshop")


def spec(name="chrome", seed=0, **overrides):
    return make_spec(name, duration_us=SHORT, seed=seed, **overrides)


class TestEveryInjectorIsContained:
    @pytest.mark.parametrize("fault", TRACE_FAULTS)
    def test_trace_fault_quarantined_as_invalid_trace(self, fault):
        executor = SupervisedExecutor()
        results = executor.map(
            [spec(seed=1, fault=fault, validate=True)])
        failure = results[0]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "invalid-trace"

    @pytest.mark.parametrize("fault", TRACE_FAULTS)
    def test_trace_fault_salvaged_to_partial_run(self, fault):
        executor = SupervisedExecutor()
        results = executor.map(
            [spec(seed=1, fault=fault, salvage=True)])
        run = results[0]
        assert isinstance(run, SingleRun)
        assert run.partial is True
        assert executor.failures == []

    def test_worker_crash_quarantined(self):
        executor = SupervisedExecutor()
        results = executor.map([spec(seed=1, fault="worker-crash")])
        assert results[0].kind == "crash"

    def test_worker_hang_quarantined_by_deadline(self):
        executor = SupervisedExecutor(jobs=2, deadline_s=1.0)
        results = executor.map(
            [spec(seed=0), spec(seed=1, fault="worker-hang")])
        assert isinstance(results[0], SingleRun)
        assert results[1].kind == "deadline"

    def test_flaky_exec_faults_heal_with_retries(self, tmp_path):
        for mode, deadline in (("crash", None), ("hang", 1.0)):
            fault = f"flaky-{mode}:{tmp_path / mode}"
            executor = SupervisedExecutor(
                jobs=2 if deadline else None, retries=1,
                deadline_s=deadline)
            results = executor.map(
                [spec(seed=0), spec(seed=1, fault=fault)])
            assert all(isinstance(r, SingleRun) for r in results), mode
            assert executor.retried == 1
            assert executor.failures == []

    def test_exec_fault_registry_is_closed(self):
        assert set(EXEC_FAULTS) == {"worker-crash", "worker-hang"}


def chaos_grid(n=150):
    """A deterministic 150-point grid seeded with every failure mode:
    trace corruption under validation, trace corruption under salvage,
    and worker crashes, scattered through clean runs."""
    specs, expected_failures = [], set()
    trace_faults = TRACE_FAULTS
    for i in range(n):
        app = APPS[i % len(APPS)]
        overrides = {}
        if i % 10 == 3:
            overrides = {"fault": trace_faults[i % len(trace_faults)],
                         "fault_seed": i, "validate": True}
            expected_failures.add(i)
        elif i % 10 == 7:
            overrides = {"fault": trace_faults[i % len(trace_faults)],
                         "fault_seed": i, "salvage": True}
        elif i % 25 == 11:
            overrides = {"fault": "worker-crash"}
            expected_failures.add(i)
        specs.append(spec(app, seed=i, **overrides))
    return specs, expected_failures


class TestChaosGrid:
    def test_150_run_sweep_completes_with_quarantine(self, tmp_path):
        path = tmp_path / "chaos.jsonl"
        specs, expected_failures = chaos_grid()
        executor = SupervisedExecutor(jobs=2, journal=path)
        results = executor.map(specs)

        assert len(results) == 150
        for i, slot in enumerate(results):
            assert isinstance(slot, (SingleRun, RunFailure)), i
            if isinstance(slot, RunFailure):
                assert slot.kind in FAILURE_KINDS
        quarantined = {f.index for f in executor.failures}
        assert quarantined == expected_failures
        salvaged = [r for r in results
                    if isinstance(r, SingleRun) and r.partial]
        assert len(salvaged) == sum(1 for s in specs
                                    if s.kwargs["salvage"])
        # Every grid point is resolved in the journal.
        _, entries = SweepJournal.load(path)
        assert sorted(entries) == list(range(150))
        assert {i for i, e in entries.items()
                if e["status"] == "failed"} == expected_failures


class TestGoldenResume:
    def test_kill_resume_reproduces_golden_fingerprints(self, tmp_path):
        """Interrupt a golden-config sweep after two runs; the resumed
        sweep must reproduce the uninterrupted fingerprints bit for
        bit (fingerprints compare float.hex strings, so this is exact
        equality, not tolerance)."""
        path = tmp_path / "golden.jsonl"
        specs = [golden_spec("chrome", cores, smt)
                 for cores, smt in GOLDEN_CONFIGS]
        baseline = SupervisedExecutor(journal=path).map(specs)
        expected = [fingerprint_run(run) for run in baseline]

        lines = path.read_text().splitlines()
        cache = ResultCache(str(path) + ".cache")
        for line in lines[3:]:      # header + 2 kept runs
            cache.invalidate(json.loads(line)["key"])
        path.write_text("\n".join(lines[:3]) + "\n")

        executor = SupervisedExecutor(resume=path)
        resumed = executor.map(specs)
        assert executor.resumed == 2
        assert executor.executed == len(specs) - 2
        assert [fingerprint_run(run) for run in resumed] == expected


class TestServiceChaos:
    """Execution faults through the *service*: a supervised worker
    dying mid-sweep must surface in the API response as the exact
    quarantine taxonomy — never as a hung connection."""

    @staticmethod
    def _serve(service):
        import threading

        from repro.service import ServiceServer

        server = ServiceServer(service, port=0)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.wait_ready(15)
        return server, thread

    @staticmethod
    def _http(port, method, path, body=None):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _run_fault_sweep(self, service, sweep):
        server, thread = self._serve(service)
        try:
            status, body = self._http(server.port, "POST", "/sweeps", sweep)
            assert status == 202
            job_id = json.loads(body)["id"]
            # The stream must terminate (done event) instead of
            # hanging the connection on the dead worker.
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=120)
            try:
                conn.request("GET", f"/sweeps/{job_id}/stream")
                events = [json.loads(line) for line in conn.getresponse()]
            finally:
                conn.close()
            assert events[-1]["event"] == "done"
            status, body = self._http(server.port, "GET",
                                      f"/sweeps/{job_id}")
            assert status == 200
            return json.loads(body), events[-1]
        finally:
            server.request_stop()
            thread.join(timeout=30)
            service.close()

    def test_worker_crash_quarantined_as_crash_in_api(self):
        from repro.service import SweepService

        payload, done = self._run_fault_sweep(
            SweepService(),
            {"apps": ["chrome"], "duration_s": 0.5, "iterations": 1,
             "fault": "worker-crash"})
        assert payload["state"] == "done"
        kinds = [f["kind"] for f in payload["failures"]]
        assert kinds == ["crash"]
        assert all(k in FAILURE_KINDS for k in kinds)
        assert [f["kind"] for f in done["failures"]] == ["crash"]

    def test_worker_hang_quarantined_as_deadline_in_api(self):
        from repro.service import SweepService

        payload, done = self._run_fault_sweep(
            SweepService(deadline_s=1.0),
            {"apps": ["chrome"], "duration_s": 0.5, "iterations": 1,
             "fault": "worker-hang"})
        assert payload["state"] == "done"
        assert [f["kind"] for f in payload["failures"]] == ["deadline"]
        assert [f["kind"] for f in done["failures"]] == ["deadline"]


class TestDispatcherChaos:
    """Faults in the *dispatcher* layer, one level above the executor:
    a crashed or hung dispatcher thread must fail only its own job with
    the standard quarantine taxonomy (streams terminate, never hang)
    while the watchdog respawns the worker so later jobs complete."""

    SWEEP = {"apps": ["chrome"], "duration_s": 0.4, "iterations": 1}

    @staticmethod
    def _dispatch(service, method, path, body=None):
        from repro.service.http import HttpRequest

        payload = json.dumps(body).encode() if body is not None else b""
        return service.dispatch(HttpRequest(
            method=method, target=path, path=path, query={}, headers={},
            body=payload))

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_crashed_dispatcher_fails_only_its_job_and_respawns(
            self, tmp_path):
        from repro.service import SweepService

        service = SweepService(cache=tmp_path / "cache", job_workers=1)
        crashed = []

        def chaos(job, worker):
            if not crashed:
                crashed.append(job.id)
                raise SystemExit    # kills the dispatcher thread quietly

        service.runner.chaos = chaos
        server, thread = TestServiceChaos._serve(service)
        try:
            status, body = TestServiceChaos._http(
                server.port, "POST", "/sweeps", self.SWEEP)
            assert status == 202
            job_id = json.loads(body)["id"]

            # The stream terminates with a failed event — it must not
            # hang on the dead dispatcher.
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=120)
            try:
                conn.request("GET", f"/sweeps/{job_id}/stream")
                events = [json.loads(line)
                          for line in conn.getresponse()]
            finally:
                conn.close()
            assert events[-1]["event"] == "failed"

            status, body = TestServiceChaos._http(
                server.port, "GET", f"/sweeps/{job_id}")
            payload = json.loads(body)
            assert payload["state"] == "failed"
            kinds = [f["kind"] for f in payload["failures"]]
            assert kinds == ["crash"]
            assert all(k in FAILURE_KINDS for k in kinds)
            assert "dispatcher" in payload["failures"][0]["detail"]

            # Only its own job died; the respawned worker completes a
            # subsequent sweep normally.
            status, body = TestServiceChaos._http(
                server.port, "POST", "/sweeps",
                dict(self.SWEEP, duration_s=0.45))
            next_id = json.loads(body)["id"]
            job = service.store.find(next_id)
            assert job.wait_done(60) and job.state == "done"
            assert job.failures == []

            status, body = TestServiceChaos._http(
                server.port, "GET", "/healthz")
            health = json.loads(body)
            assert health["dispatchers"]["crashed"] == 1
            assert health["dispatchers"]["respawned"] == 1
        finally:
            server.request_stop()
            thread.join(timeout=30)
            service.close()

    def test_hung_dispatcher_flagged_deadline_and_replaced(self):
        import threading

        from repro.service import SweepService

        service = SweepService(job_workers=1, hang_s=0.3)
        release = threading.Event()
        hung = []

        def chaos(job, worker):
            if not hung:
                hung.append(job.id)
                release.wait(60)    # wedge the first dispatcher

        service.runner.chaos = chaos
        try:
            response = self._dispatch(service, "POST", "/sweeps",
                                      self.SWEEP)
            assert response.status == 202
            job_id = json.loads(response.body)["id"]
            job = service.store.find(job_id)
            assert job.wait_done(30)
            assert job.state == "failed"
            assert [f.kind for f in job.failures] == ["deadline"]
            assert "heartbeat" in job.failures[0].detail

            response = self._dispatch(service, "POST", "/sweeps",
                                      dict(self.SWEEP, duration_s=0.45))
            job = service.store.find(json.loads(response.body)["id"])
            assert job.wait_done(60) and job.state == "done"

            response = self._dispatch(service, "GET", "/healthz")
            health = json.loads(response.body)
            assert health["dispatchers"]["hung"] == 1
            assert health["dispatchers"]["respawned"] == 1
        finally:
            release.set()
            service.close()
