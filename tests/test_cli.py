"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(line) for line in lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_machine_flags(self):
        args = build_parser().parse_args(
            ["run", "excel", "--cores", "4", "--no-smt",
             "--gpu", "gtx-680", "--duration", "10", "--iterations", "1"])
        assert args.app == "excel"
        assert args.cores == 4
        assert args.no_smt is True
        assert args.gpu == "gtx-680"

    def test_bad_gpu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "excel", "--gpu", "voodoo2"])

    def test_serve_parses_service_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--cache", "/tmp/c",
             "--retries", "1", "--deadline-us", "2000000",
             "--chunk", "4"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.jobs == 2
        assert args.cache == "/tmp/c"
        assert args.retries == 1
        assert args.deadline_us == 2000000
        assert args.chunk == 4

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.jobs == 0
        assert args.cache is None


class TestCommands:
    def test_list_shows_all_thirty(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert text.count("\n") >= 30
        assert "handbrake" in text and "phoenixminer" in text

    def test_system_prints_table1(self):
        code, text = run_cli(["system"])
        assert code == 0
        assert "i7-8700K" in text

    def test_run_single_app(self):
        code, text = run_cli(["run", "excel", "--duration", "10",
                              "--iterations", "1"])
        assert code == 0
        assert "TLP" in text
        assert "Microsoft Excel" in text

    def test_run_unknown_app_fails_cleanly(self):
        code, text = run_cli(["run", "minesweeper", "--duration", "5",
                              "--iterations", "1"])
        assert code == 2
        assert "unknown application" in text

    def test_run_with_machine_config(self):
        code, text = run_cli(["run", "vlc", "--duration", "10",
                              "--iterations", "1", "--cores", "4",
                              "--gpu", "gtx-680"])
        assert code == 0
        assert "4 LCPUs" in text
        assert "GTX 680" in text

    def test_suite_subset(self):
        code, text = run_cli(["suite", "--apps", "excel,vlc",
                              "--duration", "10", "--iterations", "1"])
        assert code == 0
        assert "Microsoft Excel" in text
        assert "VLC Media Player" in text
        assert "Overall average TLP" in text

    def test_suite_unknown_app(self):
        code, text = run_cli(["suite", "--apps", "excel,doom",
                              "--duration", "5", "--iterations", "1"])
        assert code == 2
        assert "doom" in text

    def test_manual_driver_flag(self):
        code, text = run_cli(["run", "word", "--duration", "10",
                              "--iterations", "1", "--manual"])
        assert code == 0

    def test_negative_jobs_fails_cleanly(self):
        code, text = run_cli(["run", "excel", "--duration", "5",
                              "--iterations", "1", "--jobs", "-1"])
        assert code == 2
        assert "--jobs" in text

    def test_empty_cache_path_fails_cleanly(self):
        code, text = run_cli(["run", "excel", "--duration", "5",
                              "--iterations", "1", "--cache", ""])
        assert code == 2
        assert "--cache" in text

    def test_cache_path_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        code, text = run_cli(["suite", "--apps", "excel", "--duration", "5",
                              "--iterations", "1", "--cache", str(not_a_dir)])
        assert code == 2
        assert "not a directory" in text

    def test_jobs_and_cache_run(self, tmp_path):
        argv = ["suite", "--apps", "excel", "--duration", "5",
                "--iterations", "1", "--jobs", "2",
                "--cache", str(tmp_path)]
        code, cold = run_cli(argv)
        assert code == 0
        code, warm = run_cli(argv)
        assert code == 0
        assert warm == cold
        assert list(tmp_path.rglob("*.pkl"))


    def test_suite_exports(self, tmp_path):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code, text = run_cli(["suite", "--apps", "excel",
                              "--duration", "8", "--iterations", "1",
                              "--json", str(json_path),
                              "--csv", str(csv_path)])
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        from repro.harness.persistence import load_suite

        loaded = load_suite(json_path)
        assert "excel" in loaded.results


    def test_compare_command(self, tmp_path):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        run_cli(["suite", "--apps", "excel", "--duration", "8",
                 "--iterations", "1", "--cores", "4",
                 "--json", str(before)])
        run_cli(["suite", "--apps", "excel", "--duration", "8",
                 "--iterations", "1", "--json", str(after)])
        code, text = run_cli(["compare", str(before), str(after)])
        assert code == 0
        assert "excel" in text
        assert "ΔTLP" in text


    def test_era_2010_run(self):
        code, text = run_cli(["run", "handbrake-09", "--era", "2010",
                              "--duration", "10", "--iterations", "1"])
        assert code == 0
        assert "HandBrake 0.9" in text

    def test_era_2010_unknown_app(self):
        code, text = run_cli(["run", "handbrake", "--era", "2010",
                              "--duration", "5", "--iterations", "1"])
        assert code == 2
