"""Tests for co-located execution and the co-scheduling analysis."""

import pytest

from repro.analysis import complementarity, coscheduling_gain, trough_headroom
from repro.apps import create_app
from repro.harness import run_app_once, run_colocated
from repro.metrics.timeseries import TimeSeries
from repro.sim import SECOND

SHORT = 15 * SECOND


class TestRunColocated:
    def test_two_apps_share_one_machine(self):
        run = run_colocated([create_app("excel"), create_app("vlc")],
                            duration_us=SHORT, seed=1)
        assert set(run.per_app_tlp) == {"excel", "vlc"}
        assert run.combined_tlp.tlp >= max(
            r.tlp for r in run.per_app_tlp.values()) - 0.5

    def test_empty_app_list_rejected(self):
        with pytest.raises(ValueError):
            run_colocated([], duration_us=SHORT)

    def test_duplicate_apps_rejected(self):
        with pytest.raises(ValueError):
            run_colocated([create_app("excel"), create_app("excel")],
                          duration_us=SHORT)

    def test_outputs_collected_per_app(self):
        run = run_colocated([create_app("handbrake"), create_app("excel")],
                            duration_us=SHORT, seed=1)
        assert run.outputs["handbrake"]["frames"] > 0

    def test_system_tlp_covers_everything(self):
        run = run_colocated([create_app("excel")], duration_us=SHORT, seed=1)
        assert run.system_tlp.idle_fraction <= \
            run.combined_tlp.idle_fraction

    def test_sharing_slows_heavy_apps_down(self):
        solo = run_app_once(create_app("handbrake"), duration_us=SHORT,
                            seed=1)
        shared = run_colocated([create_app("handbrake"),
                                create_app("winx")],
                               duration_us=SHORT, seed=1)
        assert (shared.outputs["handbrake"]["frames"]
                < solo.outputs["frames"])


class TestComplementarity:
    def _series(self, values):
        return TimeSeries(0, 1_000_000, values)

    def test_idle_partner_fits_fully(self):
        a = self._series([12.0, 12.0])
        b = self._series([0.0, 0.0])
        assert complementarity(a, b, 12) == 1.0

    def test_saturated_partner_fits_nothing(self):
        a = self._series([12.0, 12.0])
        b = self._series([4.0, 4.0])
        assert complementarity(a, b, 12) == 0.0

    def test_partial_fit(self):
        a = self._series([10.0, 6.0])
        b = self._series([4.0, 4.0])
        # Headroom 2 then 6 -> fits 2 + 4 of demand 8.
        assert complementarity(a, b, 12) == pytest.approx(0.75)

    def test_step_mismatch_rejected(self):
        a = TimeSeries(0, 1_000_000, [1.0])
        b = TimeSeries(0, 500_000, [1.0])
        with pytest.raises(ValueError):
            complementarity(a, b, 12)

    def test_empty_series_rejected(self):
        empty = self._series([])
        with pytest.raises(ValueError):
            complementarity(empty, empty, 12)


class TestCoschedulingGain:
    @pytest.fixture(scope="class")
    def reportobj(self):
        return coscheduling_gain(lambda: create_app("handbrake"),
                                 lambda: create_app("excel"),
                                 duration_us=SHORT, seed=1)

    def test_combined_busy_exceeds_best_solo(self, reportobj):
        assert reportobj.together_busy > max(reportobj.solo_busy_a,
                                             reportobj.solo_busy_b)

    def test_gain_above_one(self, reportobj):
        assert reportobj.utilization_gain > 1.0

    def test_slowdowns_in_unit_range(self, reportobj):
        assert 0.0 < reportobj.slowdown_a <= 1.05
        assert 0.0 < reportobj.slowdown_b <= 1.2


class TestTroughHeadroom:
    def test_requires_trace(self):
        run = run_app_once(create_app("handbrake"), duration_us=SHORT,
                           seed=1, keep_trace=True)
        share = trough_headroom(run.cpu_table, 12,
                                processes=run.process_names)
        assert 0.0 <= share <= 1.0

    def test_idle_app_is_all_trough(self):
        run = run_app_once(create_app("word"), duration_us=SHORT,
                           seed=1, keep_trace=True)
        share = trough_headroom(run.cpu_table, 12,
                                processes=run.process_names)
        assert share > 0.9
