"""Tests for the longitudinal suite comparison tool."""

import pytest

from repro.analysis import compare_suites, render_comparison
from repro.harness import run_suite
from repro.harness.persistence import load_suite, save_suite
from repro.hardware import paper_machine
from repro.sim import SECOND

SHORT = 12 * SECOND


@pytest.fixture(scope="module")
def suites():
    narrow = run_suite(names=("handbrake", "excel"), iterations=1,
                       machine=paper_machine().with_logical_cpus(4),
                       duration_us=SHORT)
    wide = run_suite(names=("handbrake", "excel", "vlc"), iterations=1,
                     duration_us=SHORT)
    return narrow, wide


class TestCompareSuites:
    def test_common_apps_compared(self, suites):
        narrow, wide = suites
        comparison = compare_suites(narrow, wide)
        assert {d.app_name for d in comparison.deltas} == \
            {"handbrake", "excel"}
        assert comparison.only_after == ["vlc"]
        assert comparison.only_before == []

    def test_core_scaling_shows_as_improvement(self, suites):
        narrow, wide = suites
        comparison = compare_suites(narrow, wide)
        # HandBrake gains massively from 4 -> 12 logical CPUs.
        assert "handbrake" in comparison.improved(threshold=2.0)
        delta = comparison.delta("handbrake")
        assert delta.tlp_ratio > 2.0

    def test_serial_app_unchanged(self, suites):
        narrow, wide = suites
        comparison = compare_suites(narrow, wide)
        assert abs(comparison.delta("excel").tlp_delta) < 0.8

    def test_unknown_app_delta_raises(self, suites):
        comparison = compare_suites(*suites)
        with pytest.raises(KeyError):
            comparison.delta("doom")

    def test_mean_delta(self, suites):
        comparison = compare_suites(*suites)
        deltas = [d.tlp_delta for d in comparison.deltas]
        assert comparison.mean_tlp_delta() == pytest.approx(
            sum(deltas) / len(deltas))

    def test_works_on_persisted_suites(self, suites, tmp_path):
        narrow, wide = suites
        before_path = tmp_path / "before.json"
        after_path = tmp_path / "after.json"
        save_suite(narrow, before_path)
        save_suite(wide, after_path)
        comparison = compare_suites(load_suite(before_path),
                                    load_suite(after_path))
        assert comparison.delta("handbrake").tlp_ratio > 2.0

    def test_render(self, suites):
        comparison = compare_suites(*suites)
        text = render_comparison(comparison, title="4 vs 12 LCPUs")
        assert "4 vs 12 LCPUs" in text
        assert "handbrake" in text
        assert "only in new run: vlc" in text
