"""Tests for historical datasets and the table/figure renderers."""

import pytest

from repro.data import (
    BLAKE_2010_GPU,
    BLAKE_2010_TLP,
    FIG2_LINEAGES,
    FIG3_LINEAGES,
    FLAUTNER_2000_TLP,
    PAPER_CATEGORY_AVERAGES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    historical_gpu,
    historical_tlp,
)
from repro.hardware import paper_machine
from repro.reporting import (
    bar_chart,
    fig2_series,
    fig3_series,
    format_table,
    heat_row,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig9,
    render_fig11,
    render_fig12,
    render_table1,
    sparkline,
)
from repro.metrics.timeseries import TimeSeries


class TestHistoricalData:
    def test_paper_table2_covers_thirty_apps(self):
        assert len(PAPER_TABLE2) == 30

    def test_category_averages_complete(self):
        assert len(PAPER_CATEGORY_AVERAGES) == 9

    def test_2000_values_below_two(self):
        # Flautner et al.: average TLP below 2 on the 2000 SMP.
        assert all(v < 2.0 for v in FLAUTNER_2000_TLP.values())

    def test_2010_gpu_exceeds_2018_for_shared_lineages(self):
        # Fig. 3's claim: all non-VR 2018 GPU utilizations are lower
        # than their 2010 counterparts.
        assert BLAKE_2010_GPU["Win Media Player (2010)"] > 16.1
        assert BLAKE_2010_GPU["HandBrake 0.9"] > 0.4
        assert BLAKE_2010_GPU["Firefox 3.5"] > 8.6

    def test_historical_lookup_by_year(self):
        assert historical_tlp("Word 97", 2000) == FLAUTNER_2000_TLP["Word 97"]
        assert historical_tlp("Crysis", 2010) == BLAKE_2010_TLP["Crysis"]

    def test_historical_gpu_lookup(self):
        assert historical_gpu("Crysis") == BLAKE_2010_GPU["Crysis"]

    def test_table3_matches_paper_headline(self):
        # +143% average rate improvement claim materialises as
        # 14/9, 27/19, 37/28.
        ratios = [PAPER_TABLE3[n]["rate_gpu"] / PAPER_TABLE3[n]["rate_cpu"]
                  for n in (4, 8, 12)]
        assert all(r > 1.3 for r in ratios)

    def test_fig2_lineage_sources_resolve(self):
        from repro.apps import REGISTRY

        for _category, entries in FIG2_LINEAGES:
            for _label, year, source in entries:
                if year == 2018:
                    assert source in REGISTRY
                else:
                    assert historical_tlp(source, year) > 0

    def test_fig3_lineage_sources_resolve(self):
        from repro.apps import REGISTRY

        for _category, entries in FIG3_LINEAGES:
            for _label, year, source in entries:
                if year == 2018:
                    assert source in REGISTRY
                else:
                    assert historical_gpu(source) >= 0


class TestRenderHelpers:
    def test_format_table_aligns_columns(self):
        text = format_table(("a", "bee"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_heat_row_shades_scale_with_fraction(self):
        row = heat_row([0.0, 0.05, 0.5, 1.0])
        assert row[0] == " "
        assert row[-1] == "█"
        assert len(row) == 4

    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], max_width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestFigureRenderers:
    def test_fig2_series_mixes_measured_and_historical(self):
        measured = {key: 5.0 for key in PAPER_TABLE2}
        series = fig2_series(measured)
        years = {year for _c, points in series
                 for _l, year, _v in points}
        assert years == {2000, 2010, 2018}
        for _category, points in series:
            for _label, year, value in points:
                if year == 2018:
                    assert value == 5.0

    def test_fig3_series(self):
        measured = {key: 1.0 for key in PAPER_TABLE2}
        series = fig3_series(measured)
        assert any(year == 2010 for _c, pts in series
                   for _l, year, _v in pts)

    def test_render_fig2_smoke(self):
        measured = {key: tlp for key, (tlp, _g) in PAPER_TABLE2.items()}
        text = render_fig2(measured)
        assert "Fig. 2" in text
        assert "HandBrake 1.1.0 [2018]" in text

    def test_render_fig3_smoke(self):
        measured = {key: gpu for key, (_t, gpu) in PAPER_TABLE2.items()}
        text = render_fig3(measured)
        assert "Fig. 3" in text

    def test_render_fig4(self):
        text = render_fig4({"EasyMiner": {4: 4.0, 8: 8.0, 12: 11.8}})
        assert "Ideal" in text and "EasyMiner" in text

    def test_render_fig9(self):
        text = render_fig9({("GTX 680", True): (9.1, 1.5),
                            ("GTX 680", False): (2.1, 1.6)})
        assert "CUDA" in text and "non-CUDA" in text

    def test_render_fig11(self):
        results = {(b, t): (2.0, 5.0)
                   for b in ("Chrome", "Edge")
                   for t in ("multi-tab", "wiki")}
        text = render_fig11(results)
        assert "Fig. 11a" in text and "Fig. 11b" in text

    def test_render_fig12(self):
        results = {(g, h): (3.0, 70.0)
                   for g in ("Fallout 4",)
                   for h in ("Rift", "Vive")}
        text = render_fig12(results)
        assert "Fig. 12a" in text

    def test_render_table1_matches_spec(self):
        text = render_table1(paper_machine())
        assert "i7-8700K" in text
        assert "3584 CUDA cores" in text

    def test_render_timeseries(self):
        from repro.reporting import render_timeseries_figure

        series = TimeSeries(0, 1_000_000, [1.0, 5.0, 12.0])
        text = render_timeseries_figure(
            "Fig. 5", {"12 LCPUs": series})
        assert "Fig. 5" in text
        assert "max= 12.00" in text
