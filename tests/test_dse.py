"""Design-space exploration engine: partition, scoring, Pareto, CLI.

The load-bearing claim of the DSE engine is the axis partition:
configs sharing a trace-changing signature replay one base simulation
and everything else is scored analytically.  These tests pin the
signature semantics, the analytic-vs-resimulation equivalence, the
Pareto frontier's order properties, the chunked supervisor dispatch
and the satellite fixes (auto-mode serial clamp, machine-digest cache
keys).
"""

import pytest

from repro.analysis.dse import (
    CampaignResult,
    batch_score,
    partition_configs,
    run_campaign,
    score_from_simulation,
    sim_signature,
)
from repro.analysis.dse.pareto import dominates, pareto_frontier
from repro.analysis.dse.score import ConfigScore, node_power_scale, time_scale
from repro.harness.cache import machine_digest, spec_key
from repro.harness.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute_spec,
    make_spec,
    resolve_executor,
)
from repro.harness.supervisor import SupervisedExecutor
from repro.hardware import paper_machine
from repro.hardware.catalog import (
    FREQ_SCALE,
    GENERATOR_CORES,
    GENERATOR_SMT_WAYS,
    dvfs_bounds,
    generate_machines,
    parametric_machine,
)
from repro.metrics.kernels import batch_active_energy
from repro.os.energy import EnergyCoefficients, default_coefficients
from repro.sim import SECOND
from repro.validate import fingerprint_run

SHORT = SECOND // 5


def short_spec(name="chrome", seed=0, **overrides):
    overrides.setdefault("streaming", True)
    return make_spec(name, duration_us=SHORT, seed=seed, **overrides)


class TestSignature:
    def test_frequency_and_coefficients_are_invisible(self):
        lo, hi = dvfs_bounds(8)
        a = parametric_machine(8, smt_ways=2, tech_nm=45, dvfs_ratio=1.0)
        b = parametric_machine(8, smt_ways=2, tech_nm=8, dvfs_ratio=hi,
                               coefficients=default_coefficients())
        assert sim_signature(a) == sim_signature(b)

    def test_core_count_changes_signature(self):
        a = parametric_machine(8)
        b = parametric_machine(12)
        assert sim_signature(a) != sim_signature(b)

    def test_smt_ways_change_signature(self):
        a = parametric_machine(8, smt_ways=1)
        b = parametric_machine(8, smt_ways=2)
        assert sim_signature(a) != sim_signature(b)

    def test_reference_grid_point_shares_paper_machine_trace(self):
        # The 45 nm / DVFS 1.0 / 6c2t point IS the paper machine as far
        # as the simulator can tell — one base run covers both.
        param = parametric_machine(6, smt_ways=2)
        assert sim_signature(paper_machine()) == sim_signature(param)

    def test_generated_family_collapses_to_core_smt_grid(self):
        machines = generate_machines(300, seed=11)
        groups = partition_configs(machines)
        assert len(groups) <= len(GENERATOR_CORES) * len(GENERATOR_SMT_WAYS)
        # Partition invariants: every index exactly once, in order.
        indices = sorted(i for members in groups.values() for i in members)
        assert indices == list(range(300))
        for members in groups.values():
            assert members == sorted(members)

    def test_generator_is_deterministic(self):
        assert generate_machines(20, seed=5) == generate_machines(20, seed=5)
        assert generate_machines(20, seed=5) != generate_machines(20, seed=6)


class TestBatchKernel:
    def test_vector_matches_scalar(self):
        t_us = [1000, 2500, 40, 999999]
        class_idx = [0, 2, 1, 0]
        factors = [1.0, 1.27, 1.1, 1.0054]
        power = [[10.0, 20.0, 5.0], [8.0, 16.0, 4.0]]
        exponents = [2.0, 1.8]
        vec = batch_active_energy(t_us, class_idx, factors, power,
                                  exponents, kernel="vector")
        sca = batch_active_energy(t_us, class_idx, factors, power,
                                  exponents, kernel="scalar")
        assert len(vec) == len(sca) == 2
        for a, b in zip(vec, sca):
            assert a == pytest.approx(b, rel=1e-12)

    def test_empty_histogram_scores_zero(self):
        assert batch_active_energy([], [], [], [[1.0]], [2.0]) == [0.0]


class TestScoring:
    def test_reference_point_scales_are_unity(self):
        machine = parametric_machine(6, tech_nm=45, dvfs_ratio=1.0)
        assert time_scale(machine) == pytest.approx(1.0)
        assert node_power_scale(machine) == pytest.approx(1.0)
        assert time_scale(paper_machine()) == 1.0
        assert node_power_scale(paper_machine()) == 1.0

    def test_half_frequency_doubles_wall_time(self):
        run = execute_spec(short_spec())
        fast = parametric_machine(6, tech_nm=45, dvfs_ratio=1.0)
        slow = parametric_machine(6, tech_nm=45, dvfs_ratio=0.5)
        hi, lo = batch_score("chrome", run, [fast, slow])
        assert lo.wall_s == pytest.approx(2 * hi.wall_s)
        assert lo.tlp == hi.tlp  # TLP is a ratio of times

    def test_tech_node_frequency_scaling(self):
        run = execute_spec(short_spec())
        m45 = parametric_machine(6, tech_nm=45, dvfs_ratio=1.0)
        m8 = parametric_machine(6, tech_nm=8, dvfs_ratio=1.0)
        s45, s8 = batch_score("chrome", run, [m45, m8])
        assert s8.wall_s == pytest.approx(s45.wall_s / FREQ_SCALE[8])

    def test_analytic_matches_full_resimulation(self):
        lo, hi = dvfs_bounds(16)
        machine = parametric_machine(
            4, smt_ways=2, tech_nm=16, dvfs_ratio=(lo + hi) / 2,
            coefficients=EnergyCoefficients(
                active_power_w={cls: watts * 1.17 for cls, watts in
                                default_coefficients().active_power_w
                                .items()},
                cpu_idle_w=4.5,
                clock_exponent=1.9))
        run = execute_spec(short_spec("handbrake", machine=machine))
        fast = batch_score("handbrake", run, [machine])[0]
        slow = score_from_simulation("handbrake", run, machine)
        assert fast.tlp == slow.tlp
        assert fast.wall_s == pytest.approx(slow.wall_s, rel=1e-9)
        assert fast.energy_j == pytest.approx(slow.energy_j, rel=1e-9)
        assert fast.edp_js == pytest.approx(slow.edp_js, rel=1e-9)
        assert fast.analytic and not slow.analytic


def score_point(tlp, edp, index=0):
    return ConfigScore(app="x", config_index=index, machine_name="m",
                       logical_cpus=4, tech_nm=45, dvfs_ratio=1.0,
                       tlp=tlp, wall_s=1.0, energy_j=edp, edp_js=edp,
                       analytic=True)


class TestPareto:
    def test_dominated_points_are_dropped(self):
        good = score_point(4.0, 1.0, 0)
        bad = score_point(3.0, 2.0, 1)  # worse on both axes
        assert dominates(good, bad)
        assert pareto_frontier([bad, good]) == [good]

    def test_frontier_is_sorted_and_nondominated(self):
        points = [score_point(t, e, i) for i, (t, e) in enumerate(
            [(1.0, 0.5), (2.0, 1.0), (3.0, 4.0), (2.5, 0.9),
             (3.0, 5.0), (0.5, 0.1)])]
        frontier = pareto_frontier(points)
        tlps = [p.tlp for p in frontier]
        edps = [p.edp_js for p in frontier]
        assert tlps == sorted(tlps, reverse=True)
        assert edps == sorted(edps, reverse=True)  # strictly improving
        for a in frontier:
            assert not any(dominates(b, a) for b in points)

    def test_every_input_point_is_dominated_or_on_frontier(self):
        points = [score_point(t % 7, (t * 13) % 11 + 1, t)
                  for t in range(25)]
        frontier = pareto_frontier(points)
        for p in points:
            on = p in frontier
            dominated = any(dominates(q, p) and q is not p
                            for q in points)
            duplicate = any(q.tlp == p.tlp and q.edp_js == p.edp_js
                            and q is not p for q in frontier)
            assert on or dominated or duplicate

    def test_empty_frontier(self):
        assert pareto_frontier([]) == []


class TestCampaign:
    def test_small_campaign_end_to_end(self):
        machines = generate_machines(12, seed=3)
        result = run_campaign(["chrome", "excel"], machines,
                              duration_us=SHORT, equivalence_samples=3)
        assert isinstance(result, CampaignResult)
        stats = result.stats
        assert stats.grid_points == 24
        assert stats.failed_runs == 0
        assert stats.base_runs == 2 * stats.signatures
        # Every grid point scored, frontier members drawn from them.
        for app in ("chrome", "excel"):
            scores = result.scores[app]
            assert all(s is not None for s in scores)
            assert all(s.analytic for s in scores)
            assert result.frontiers[app]
            assert set(map(id, result.frontiers[app])) <= set(
                map(id, scores))
        eq = result.equivalence
        assert eq.samples == 3
        assert eq.tlp_exact
        assert eq.max_rel_err <= eq.rtol
        assert eq.ok

    def test_analytic_fraction_accounting(self):
        machines = generate_machines(12, seed=3)
        result = run_campaign(["chrome"], machines, duration_us=SHORT,
                              equivalence_samples=0)
        stats = result.stats
        assert result.equivalence is None
        assert stats.simulated_points == stats.signatures
        assert stats.analytic_fraction == pytest.approx(
            1 - stats.signatures / 12)

    def test_payload_roundtrips_to_json(self):
        import json

        machines = generate_machines(6, seed=1)
        result = run_campaign(["excel"], machines, duration_us=SHORT,
                              equivalence_samples=2)
        payload = json.loads(json.dumps(
            result.to_payload(include_scores=True)))
        assert payload["stats"]["configs"] == 6
        assert len(payload["scores"]["excel"]) == 6
        assert payload["equivalence"]["ok"] is True


class TestChunkedDispatch:
    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(chunk=0)

    def test_chunked_results_match_singleton_dispatch(self):
        specs = [short_spec(seed=s) for s in range(5)]
        one = SupervisedExecutor(jobs=2, chunk=1).map(specs)
        many = SupervisedExecutor(jobs=2, chunk=3).map(specs)
        assert [fingerprint_run(r) for r in one] == \
            [fingerprint_run(r) for r in many]

    def test_crash_inside_chunk_quarantines_only_itself(self):
        specs = [short_spec(seed=0),
                 short_spec(seed=1, fault="worker-crash"),
                 short_spec(seed=2)]
        executor = SupervisedExecutor(jobs=2, chunk=3)
        results = executor.map(specs)
        assert hasattr(results[0], "tlp")
        assert hasattr(results[2], "tlp")
        assert not hasattr(results[1], "tlp")
        assert len(executor.failures) == 1
        assert executor.failures[0].kind == "crash"

    def test_flaky_chunk_member_heals_with_retries(self, tmp_path):
        fault = f"flaky-crash:{tmp_path / 'strike'}"
        executor = SupervisedExecutor(jobs=2, chunk=4, retries=1)
        results = executor.map([short_spec(seed=0),
                                short_spec(seed=1, fault=fault),
                                short_spec(seed=2)])
        assert all(hasattr(r, "tlp") for r in results)
        assert not executor.failures


class TestAutoModeClamp:
    def test_auto_jobs_degrade_to_serial_on_one_cpu(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.default_jobs",
                            lambda: 1)
        assert isinstance(resolve_executor(jobs=0), SerialExecutor)

    def test_auto_jobs_keep_pool_on_many_cpus(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.default_jobs",
                            lambda: 4)
        executor = resolve_executor(jobs=0)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4

    def test_explicit_jobs_still_build_a_pool(self, monkeypatch):
        monkeypatch.setattr("repro.harness.executor.default_jobs",
                            lambda: 1)
        assert isinstance(resolve_executor(jobs=2), ParallelExecutor)

    def test_supervisor_auto_degrades_to_no_pool(self, monkeypatch):
        monkeypatch.setattr("repro.harness.supervisor.default_jobs",
                            lambda: 1)
        assert SupervisedExecutor(jobs=0)._pool_size(8) == 0

    def test_transport_auto_picks_pickle_on_one_cpu(self, monkeypatch):
        from repro.harness.transport import transport_backend

        monkeypatch.setattr("repro.harness.executor.default_jobs",
                            lambda: 1)
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert transport_backend() == "pickle"

    def test_transport_explicit_shm_is_untouched(self, monkeypatch):
        from repro.harness.transport import shm_available, transport_backend

        monkeypatch.setattr("repro.harness.executor.default_jobs",
                            lambda: 1)
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        if shm_available():
            assert transport_backend() == "shm"


class TestMachineDigestCache:
    def test_digest_is_stable_and_discriminating(self):
        a = parametric_machine(8, tech_nm=45, dvfs_ratio=1.0)
        b = parametric_machine(8, tech_nm=45, dvfs_ratio=1.0)
        assert machine_digest(a) == machine_digest(b)
        assert machine_digest(a) != machine_digest(paper_machine())

    def test_coefficients_change_the_spec_key(self):
        # Same CPU name, same clocks — only the energy coefficients
        # differ.  Pre-digest cache keys collided on exactly this.
        plain = parametric_machine(8)
        tuned = parametric_machine(8, coefficients=EnergyCoefficients(
            active_power_w=default_coefficients().active_power_w,
            cpu_idle_w=1.0))
        assert machine_digest(plain) != machine_digest(tuned)
        assert spec_key(short_spec(machine=plain)) != \
            spec_key(short_spec(machine=tuned))

    def test_cached_campaign_is_identical(self, tmp_path):
        from repro.harness.cache import ResultCache

        machines = generate_machines(6, seed=2)
        cold = run_campaign(["excel"], machines, duration_us=SHORT,
                            equivalence_samples=2,
                            cache=ResultCache(tmp_path))
        warm = run_campaign(["excel"], machines, duration_us=SHORT,
                            equivalence_samples=2,
                            cache=ResultCache(tmp_path))
        assert [s.to_payload() for s in cold.scores["excel"]] == \
            [s.to_payload() for s in warm.scores["excel"]]


class TestDseCli:
    def test_dse_verb_prints_frontiers(self, capsys):
        from repro.cli import main

        lines = []
        status = main(["dse", "--configs", "8", "--apps", "excel",
                       "--duration", "0.2", "--equivalence", "2",
                       "--top", "3"], out=lines.append)
        text = "\n".join(lines)
        assert status == 0
        assert "Pareto frontier" in text
        assert "equivalence: ok" in text

    def test_dse_json_export(self, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "dse.json"
        status = main(["dse", "--configs", "6", "--apps", "excel",
                       "--duration", "0.2", "--equivalence", "0",
                       "--json", str(path)], out=lambda _line: None)
        assert status == 0
        payload = json.loads(path.read_text())
        assert payload["stats"]["configs"] == 6
        assert "excel" in payload["frontiers"]

    def test_dse_rejects_unknown_app(self):
        from repro.cli import main

        lines = []
        assert main(["dse", "--apps", "nope"], out=lines.append) == 2
        assert "unknown applications" in lines[0]
