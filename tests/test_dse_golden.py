"""Golden DSE slice: a pinned Pareto frontier regression check.

A small deterministic campaign (fixed seed, fixed grid) must keep
producing the exact committed frontiers — config indices and machine
names bit-for-bit, floats at ``%.6e``.  Any drift in the generator,
the partition, the scoring pipeline or the Pareto sweep shows up here
first, with a diff a human can read.

Regenerate after an *intended* change with::

    PYTHONPATH=src python tests/test_dse_golden.py --update
"""

import json
import os

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "golden_dse.json")

#: The pinned campaign: small enough to run in seconds, wide enough to
#: exercise every axis (trace-changing cores/SMT, tech/DVFS rescaling,
#: coefficient jitter) and produce multi-point frontiers.
CAMPAIGN = {
    "apps": ["excel", "handbrake"],
    "configs": 24,
    "seed": 0,
    "duration_us": 200_000,
}


def compute_slice():
    from repro.analysis.dse import run_campaign
    from repro.hardware.catalog import generate_machines

    machines = generate_machines(CAMPAIGN["configs"],
                                 seed=CAMPAIGN["seed"])
    result = run_campaign(CAMPAIGN["apps"], machines,
                          duration_us=CAMPAIGN["duration_us"],
                          seed=CAMPAIGN["seed"],
                          equivalence_samples=0)
    assert result.stats.failed_runs == 0
    return {
        "campaign": dict(CAMPAIGN),
        "signatures": result.stats.signatures,
        "frontiers": {
            app: [{
                "config_index": s.config_index,
                "machine": s.machine_name,
                "logical_cpus": s.logical_cpus,
                "tlp": "%.6e" % s.tlp,
                "wall_s": "%.6e" % s.wall_s,
                "energy_j": "%.6e" % s.energy_j,
                "edp_js": "%.6e" % s.edp_js,
            } for s in frontier]
            for app, frontier in result.frontiers.items()
        },
    }


def test_golden_dse_slice_is_stable():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert compute_slice() == golden


if __name__ == "__main__":
    import sys

    if "--update" not in sys.argv:
        sys.exit("refusing to overwrite the golden slice without "
                 "--update")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(compute_slice(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"recorded golden DSE slice to {GOLDEN_PATH}")
