"""Property-based proof of the DSE simulate-once guarantee.

The engine's correctness claim: for any config drawn from the
generator's axes, scoring it analytically from the *signature
representative's* base run equals fully re-simulating the config
itself — exactly on every integer-derived quantity (TLP, duration),
to float tolerance on the energy path (summation order and kernel
``**`` rounding differ).  Hypothesis draws the tech node, DVFS point
and energy coefficients; base runs are memoized per signature so each
example costs one simulation, not two.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dse.axes import sim_signature
from repro.analysis.dse.pareto import dominates, pareto_frontier
from repro.analysis.dse.score import ConfigScore, batch_score, \
    score_from_simulation
from repro.harness.executor import execute_spec, make_spec
from repro.hardware.catalog import TECH_NODES, dvfs_bounds, \
    parametric_machine
from repro.metrics.kernels import batch_active_energy
from repro.os.energy import EnergyCoefficients, default_coefficients
from repro.os.work import WorkClass
from repro.sim import SECOND

SHORT = SECOND // 10

#: Base runs per (app, cores, smt) — one simulation per signature for
#: the whole suite, exactly the economy the engine itself exploits.
_BASE_RUNS = {}


def base_run(app, cores, smt_ways):
    key = (app, cores, smt_ways)
    if key not in _BASE_RUNS:
        machine = parametric_machine(cores, smt_ways=smt_ways)
        _BASE_RUNS[key] = execute_spec(make_spec(
            app, machine=machine, duration_us=SHORT, streaming=True))
    return _BASE_RUNS[key]


def coefficients_strategy():
    base = default_coefficients()
    factor = st.floats(0.5, 1.5, allow_nan=False)
    return st.builds(
        lambda factors, idle, exponent: EnergyCoefficients(
            active_power_w={cls: watts * factors[i] for i, (cls, watts)
                            in enumerate(sorted(
                                base.active_power_w.items(),
                                key=lambda kv: kv[0].value))},
            cpu_idle_w=idle,
            clock_exponent=exponent),
        st.tuples(*[factor] * len(base.active_power_w)),
        st.floats(0.5, 20.0),
        st.floats(1.0, 3.0))


config_strategy = st.tuples(
    st.sampled_from(["excel", "handbrake", "chrome"]),
    st.sampled_from([2, 4, 8]),
    st.sampled_from([1, 2]),
    st.sampled_from(TECH_NODES),
    st.floats(0.0, 1.0, allow_nan=False),   # position in the DVFS band
    coefficients_strategy())


class TestAnalyticEqualsResimulation:
    @settings(max_examples=12, deadline=None)
    @given(config_strategy)
    def test_fast_path_matches_slow_path(self, drawn):
        app, cores, smt, tech, dvfs_pos, coefficients = drawn
        lo, hi = dvfs_bounds(tech)
        machine = parametric_machine(
            cores, smt_ways=smt, tech_nm=tech,
            dvfs_ratio=lo + (hi - lo) * dvfs_pos,
            coefficients=coefficients)
        rep = parametric_machine(cores, smt_ways=smt)
        assert sim_signature(machine) == sim_signature(rep)

        base = base_run(app, cores, smt)
        run = execute_spec(make_spec(app, machine=machine,
                                     duration_us=SHORT, streaming=True))
        fast = batch_score(app, base, [machine])[0]
        slow = score_from_simulation(app, run, machine)
        # Integer-derived quantities are bit-exact.
        assert fast.tlp == slow.tlp
        assert run.duration_us == base.duration_us
        # Float energy path agrees to far better than the engine's
        # advertised rtol.
        assert fast.wall_s == pytest.approx(slow.wall_s, rel=1e-9)
        assert fast.energy_j == pytest.approx(slow.energy_j, rel=1e-9)
        assert fast.edp_js == pytest.approx(slow.edp_js, rel=1e-9)


histogram_strategy = st.lists(
    st.tuples(st.integers(1, 10_000_000),          # microseconds
              st.integers(0, len(list(WorkClass)) - 1),
              st.floats(0.9, 1.3, allow_nan=False)),
    min_size=0, max_size=12)

power_strategy = st.lists(
    st.tuples(st.lists(st.floats(0.0, 60.0),
                       min_size=len(list(WorkClass)),
                       max_size=len(list(WorkClass))),
              st.floats(1.0, 3.0)),
    min_size=1, max_size=8)


class TestBatchKernelProperties:
    @settings(max_examples=50, deadline=None)
    @given(histogram_strategy, power_strategy)
    def test_backends_agree(self, histogram, configs):
        t_us = [t for t, _, _ in histogram]
        class_idx = [c for _, c, _ in histogram]
        factors = [f for _, _, f in histogram]
        power = [row for row, _ in configs]
        exponents = [e for _, e in configs]
        vec = batch_active_energy(t_us, class_idx, factors, power,
                                  exponents, kernel="vector")
        sca = batch_active_energy(t_us, class_idx, factors, power,
                                  exponents, kernel="scalar")
        assert len(vec) == len(sca) == len(configs)
        for a, b in zip(vec, sca):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-12)
            assert a >= 0.0


def score_point(tlp, edp, index):
    return ConfigScore(app="x", config_index=index, machine_name="m",
                       logical_cpus=4, tech_nm=45, dvfs_ratio=1.0,
                       tlp=tlp, wall_s=1.0, energy_j=edp, edp_js=edp,
                       analytic=True)


scores_strategy = st.lists(
    st.tuples(st.floats(0.1, 32.0, allow_nan=False),
              st.floats(1e-3, 1e3, allow_nan=False)),
    min_size=0, max_size=40).map(
        lambda pairs: [score_point(t, e, i)
                       for i, (t, e) in enumerate(pairs)])


class TestParetoProperties:
    @settings(max_examples=60, deadline=None)
    @given(scores_strategy)
    def test_frontier_is_sound_and_complete(self, scores):
        frontier = pareto_frontier(scores)
        # Sound: no frontier member is dominated by any input point.
        for member in frontier:
            assert not any(dominates(other, member) for other in scores)
        # Complete: every excluded point is dominated or a duplicate of
        # a frontier member.
        kept = {(m.tlp, m.edp_js) for m in frontier}
        for point in scores:
            if point in frontier:
                continue
            assert any(dominates(other, point) for other in scores) \
                or (point.tlp, point.edp_js) in kept
        # Ordered: TLP descending, EDP strictly improving.
        tlps = [m.tlp for m in frontier]
        edps = [m.edp_js for m in frontier]
        assert tlps == sorted(tlps, reverse=True)
        assert all(a > b for a, b in zip(edps, edps[1:]))

    @settings(max_examples=30, deadline=None)
    @given(scores_strategy)
    def test_frontier_is_idempotent(self, scores):
        frontier = pareto_frontier(scores)
        assert pareto_frontier(frontier) == frontier
