"""Tests for the activity-based energy model."""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.os import EnergyModel, WorkClass
from repro.sim import MS, SECOND

SHORT = 15 * SECOND


class TestEnergyModelUnit:
    def test_no_activity_no_active_energy(self):
        model = EnergyModel(paper_machine())
        report = model.report(SECOND)
        assert report.cpu_active_j == 0.0
        assert report.cpu_idle_j > 0.0

    def test_active_energy_accumulates_per_process(self):
        model = EnergyModel(paper_machine())
        model.record_slice("a.exe", WorkClass.BALANCED, 100 * MS, 1.0)
        model.record_slice("b.exe", WorkClass.BALANCED, 100 * MS, 1.0)
        assert model.process_active_j("a.exe") > 0
        assert model.process_active_j("a.exe") == pytest.approx(
            model.process_active_j("b.exe"))

    def test_fu_bound_work_costs_more_than_ui(self):
        model = EnergyModel(paper_machine())
        model.record_slice("fu.exe", WorkClass.FU_BOUND, 100 * MS, 1.0)
        model.record_slice("ui.exe", WorkClass.UI, 100 * MS, 1.0)
        assert (model.process_active_j("fu.exe")
                > model.process_active_j("ui.exe"))

    def test_turbo_clock_raises_power_superlinearly(self):
        model = EnergyModel(paper_machine())
        model.record_slice("base.exe", WorkClass.BALANCED, 100 * MS, 1.0)
        model.record_slice("turbo.exe", WorkClass.BALANCED, 100 * MS, 1.27)
        ratio = (model.process_active_j("turbo.exe")
                 / model.process_active_j("base.exe"))
        assert ratio == pytest.approx(1.27 ** 2, rel=0.01)

    def test_report_filters_by_process(self):
        model = EnergyModel(paper_machine())
        model.record_slice("a.exe", WorkClass.BALANCED, 100 * MS, 1.0)
        model.record_slice("b.exe", WorkClass.BALANCED, 300 * MS, 1.0)
        only_a = model.report(SECOND, processes={"a.exe"})
        both = model.report(SECOND)
        assert only_a.cpu_active_j < both.cpu_active_j

    def test_average_power(self):
        model = EnergyModel(paper_machine())
        report = model.report(2 * SECOND)
        assert report.average_power_w == pytest.approx(
            report.total_j / 2.0)


class TestEnergyIntegration:
    def test_busy_app_uses_more_cpu_energy_than_idle_app(self):
        handbrake = run_app_once(create_app("handbrake"),
                                 duration_us=SHORT, seed=1)
        word = run_app_once(create_app("word"), duration_us=SHORT, seed=1)
        assert handbrake.energy.cpu_active_j > 5 * word.energy.cpu_active_j

    def test_gpu_heavy_app_draws_gpu_energy(self):
        miner = run_app_once(create_app("wineth"), duration_us=SHORT, seed=1)
        assert miner.energy.gpu_active_j > miner.energy.cpu_active_j

    def test_energy_report_window_matches_run(self):
        run = run_app_once(create_app("excel"), duration_us=SHORT, seed=1)
        assert run.energy.window_us == SHORT

    def test_more_cores_spend_more_energy_for_parallel_work(self):
        four = run_app_once(create_app("handbrake"),
                            machine=paper_machine().with_logical_cpus(4),
                            duration_us=SHORT, seed=1)
        twelve = run_app_once(create_app("handbrake"),
                              duration_us=SHORT, seed=1)
        # Twelve cores transcode more frames and burn more joules.
        assert twelve.energy.cpu_active_j > four.energy.cpu_active_j
