"""Tests for the era-2010 application models (Blake et al. testbed)."""

import pytest

from repro.apps.era2010 import ERA2010_REFERENCE, ERA2010_REGISTRY, Firefox35
from repro.harness import run_app_once
from repro.hardware import machine_2010
from repro.sim import SECOND

DURATION = 30 * SECOND

_cache = {}


def run_2010(name, **config):
    key = (name, tuple(sorted(config.items())))
    if key not in _cache:
        _cache[key] = run_app_once(ERA2010_REGISTRY[name](**config),
                                   machine=machine_2010(),
                                   duration_us=DURATION, seed=3)
    return _cache[key]


class TestRegistry:
    def test_fifteen_era_models(self):
        assert len(ERA2010_REGISTRY) == 15
        assert set(ERA2010_REGISTRY) == set(ERA2010_REFERENCE)

    def test_era_marker(self):
        assert all(cls.era == 2010 for cls in ERA2010_REGISTRY.values())

    def test_no_overlap_with_2018_registry(self):
        from repro.apps import REGISTRY

        assert not set(ERA2010_REGISTRY) & set(REGISTRY)


@pytest.mark.parametrize("name", sorted(ERA2010_REGISTRY))
def test_matches_blake_measurements(name):
    ref_tlp, ref_gpu = ERA2010_REFERENCE[name]
    run = run_2010(name)
    assert run.tlp.tlp == pytest.approx(ref_tlp,
                                        abs=max(0.4, ref_tlp * 0.2)), name
    assert run.gpu_util.utilization_pct == pytest.approx(
        ref_gpu, abs=max(2.0, ref_gpu * 0.3)), name


class TestEraCharacteristics:
    def test_3d_games_stay_under_tlp_2_and_change_gpu_hard(self):
        for game in ("crysis", "cod4", "bioshock"):
            run = run_2010(game)
            assert run.tlp.tlp < 2.3
            assert run.gpu_util.utilization_pct > 60

    def test_handbrake09_uses_at_most_8_wide(self):
        run = run_2010("handbrake-09")
        # 16 logical CPUs available, but the era's x264 caps out.
        assert run.tlp.max_instantaneous <= 10

    def test_single_tab_browsing_beats_multi_tab_in_2010(self):
        multi = run_2010("firefox-35")
        single = run_app_once(Firefox35(test="single-tab"),
                              machine=machine_2010(),
                              duration_us=DURATION, seed=3)
        assert single.tlp.tlp > multi.tlp.tlp

    def test_firefox35_is_single_process(self):
        run = run_2010("firefox-35")
        assert run.process_names == {"firefox.exe"}

    def test_invalid_browser_test_rejected(self):
        with pytest.raises(ValueError):
            Firefox35(test="espn")

    def test_era_average_near_two(self):
        values = [run_2010(name).tlp.tlp for name in ERA2010_REGISTRY]
        average = sum(values) / len(values)
        assert 1.4 < average < 2.6  # "2-3 cores were still sufficient"
