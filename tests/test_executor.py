"""Tests for the execution engine: backends, fan-out, determinism.

The headline guarantee: every grid point owns its environment and is
fully seed-determined, so a process-pool run must be **bit-identical**
to a serial run — same TLP fractions, same GPU utilization, float for
float.
"""

import pytest

from repro.apps.transcoding import HandBrake
from repro.harness import (
    ParallelExecutor,
    SerialExecutor,
    make_spec,
    resolve_executor,
    run_suite,
    smt_sweep,
)
from repro.harness.executor import default_jobs, execute_spec
from repro.hardware import GTX_1080_TI, paper_machine
from repro.sim import SECOND

SHORT = 3 * SECOND


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(jobs=1), SerialExecutor)

    def test_jobs_n_is_parallel(self):
        executor = resolve_executor(jobs=4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4

    def test_jobs_zero_autosizes(self):
        assert resolve_executor(jobs=0).jobs == default_jobs() >= 1

    def test_explicit_executor_wins(self):
        executor = SerialExecutor()
        assert resolve_executor(executor=executor) is executor

    def test_jobs_and_executor_conflict(self):
        with pytest.raises(ValueError):
            resolve_executor(jobs=2, executor=SerialExecutor())

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=-1)


class TestSpecs:
    def test_make_spec_normalizes_machine(self):
        spec = make_spec("excel", seed=3)
        assert spec.kwargs["machine"] == paper_machine()
        assert spec.kwargs["seed"] == 3
        assert spec.kwargs["duration_us"] == 60 * SECOND

    def test_make_spec_rejects_unknown_knob(self):
        with pytest.raises(TypeError):
            make_spec("excel", quantums=1)

    def test_execute_spec_by_name_and_config(self):
        run = execute_spec(make_spec("winx", config={"use_gpu": False},
                                     duration_us=SHORT, seed=2))
        assert run.outputs["gpu_path"] is False

    def test_execute_spec_rejects_config_on_instance(self):
        with pytest.raises(ValueError):
            execute_spec(make_spec(HandBrake(), config={"use_gpu": True},
                                   duration_us=SHORT))


class TestDeterminism:
    """Parallel fan-out must be bit-identical to serial execution."""

    NAMES = ("excel", "handbrake")

    @pytest.fixture(scope="class")
    def suites(self):
        serial = run_suite(names=self.NAMES, duration_us=SHORT,
                           iterations=2, jobs=1)
        parallel = run_suite(names=self.NAMES, duration_us=SHORT,
                             iterations=2, jobs=4)
        return serial, parallel

    def test_fractions_bit_identical(self, suites):
        serial, parallel = suites
        for name in self.NAMES:
            assert serial.results[name].fractions == \
                parallel.results[name].fractions
            for a, b in zip(serial.results[name].runs,
                            parallel.results[name].runs):
                assert a.tlp.fractions == b.tlp.fractions
                assert a.tlp.tlp == b.tlp.tlp

    def test_gpu_util_bit_identical(self, suites):
        serial, parallel = suites
        for name in self.NAMES:
            assert serial.results[name].gpu_util == \
                parallel.results[name].gpu_util
            for a, b in zip(serial.results[name].runs,
                            parallel.results[name].runs):
                assert a.gpu_util.utilization_pct == b.gpu_util.utilization_pct

    def test_summaries_bit_identical(self, suites):
        serial, parallel = suites
        for name in self.NAMES:
            assert serial.results[name].tlp == parallel.results[name].tlp
            assert serial.results[name].max_instantaneous == \
                parallel.results[name].max_instantaneous


class TestParallelBackend:
    def test_executed_counts_simulations(self):
        executor = SerialExecutor()
        run_suite(names=("excel",), duration_us=SHORT, iterations=2,
                  executor=executor)
        assert executor.executed == 2

    def test_unpicklable_spec_falls_back_in_process(self):
        app = HandBrake()
        app.on_done = lambda: None   # lambdas cannot cross a process pool
        executor = ParallelExecutor(jobs=2)
        (run,) = executor.map([make_spec(app, duration_us=SHORT, seed=4)])
        assert run.tlp.tlp > 0
        assert executor.executed == 1

    def test_sweep_accepts_jobs(self):
        grid = lambda **kw: smt_sweep(lambda: HandBrake(),
                                      physical_cores=(2,),
                                      gpus=(GTX_1080_TI,),
                                      duration_us=SHORT, **kw)
        serial, parallel = grid(), grid(jobs=2)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].tlp.fractions == parallel[key].tlp.fractions
