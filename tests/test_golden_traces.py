"""Golden-trace regression suite.

Every registered app is fingerprinted on the golden machine grid
(4/8/12 logical CPUs with SMT, 4/6 with SMT off) and the result is
diffed against the committed goldens in ``tests/golden/``.  Equality
is bit-identity: fingerprints hash ``float.hex`` serializations, so a
single ULP of drift anywhere in the scheduler -> trace -> metrics
pipeline fails the suite.

The serial backend covers the full 150-point grid; the process-pool
and streaming backends are cross-checked on a subset — the point is
backend *equivalence*, which a few apps establish as well as thirty.
"""

import pytest

from repro.apps import SUITE
from repro.harness.executor import ParallelExecutor
from repro.validate import (
    GOLDEN_CONFIGS,
    compare_fingerprints,
    compute_fingerprints,
    config_id,
    fingerprint_run,
    golden_machine,
    load_goldens,
)

#: Apps re-run under the alternative backends.  A GPU-heavy VR title,
#: a browser, and an office app cover the distinct trace shapes.
CROSS_CHECK_APPS = ("word", "chrome", "arizona-sunshine")


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


@pytest.fixture(scope="module")
def serial_fingerprints():
    """One serial pass over the full grid, shared by every test."""
    return compute_fingerprints(sorted(SUITE))


def test_golden_file_covers_the_full_grid(goldens):
    expected_configs = {config_id(c, s) for c, s in GOLDEN_CONFIGS}
    assert set(goldens) == set(SUITE)
    for app, per_config in goldens.items():
        assert set(per_config) == expected_configs, app


@pytest.mark.parametrize("app", sorted(SUITE))
def test_serial_backend_matches_goldens(app, goldens, serial_fingerprints):
    for cores, smt in GOLDEN_CONFIGS:
        cid = config_id(cores, smt)
        mismatches = compare_fingerprints(
            goldens[app][cid], serial_fingerprints[app][cid])
        assert not mismatches, f"{app}/{cid}: {mismatches}"


def test_process_pool_backend_matches_goldens(goldens):
    fingerprints = compute_fingerprints(
        CROSS_CHECK_APPS, executor=ParallelExecutor(jobs=2))
    for app in CROSS_CHECK_APPS:
        for cores, smt in GOLDEN_CONFIGS:
            cid = config_id(cores, smt)
            mismatches = compare_fingerprints(
                goldens[app][cid], fingerprints[app][cid])
            assert not mismatches, f"{app}/{cid}: {mismatches}"


def test_streaming_backend_matches_goldens(goldens):
    fingerprints = compute_fingerprints(CROSS_CHECK_APPS, streaming=True)
    for app in CROSS_CHECK_APPS:
        for cores, smt in GOLDEN_CONFIGS:
            cid = config_id(cores, smt)
            mismatches = compare_fingerprints(
                goldens[app][cid], fingerprints[app][cid])
            assert not mismatches, f"{app}/{cid}: {mismatches}"


def test_validated_run_is_fingerprint_neutral(goldens):
    """``--validate`` observes; it must never perturb the metrics."""
    from repro.harness import run_app_once
    from repro.validate.golden import GOLDEN_DURATION_US, GOLDEN_SEED

    machine = golden_machine(8, True)
    run = run_app_once("word", machine=machine,
                       duration_us=GOLDEN_DURATION_US, seed=GOLDEN_SEED,
                       validate=True)
    mismatches = compare_fingerprints(
        goldens["word"][config_id(8, True)], fingerprint_run(run))
    assert not mismatches, mismatches


def test_golden_machine_grid_is_constructible():
    for cores, smt in GOLDEN_CONFIGS:
        machine = golden_machine(cores, smt)
        assert machine.logical_cpus == cores
        assert machine.smt_enabled == smt
